"""Tests for the developer-tools CLI."""

from __future__ import annotations

import pytest

from repro.tools.cli import build_parser, main


class TestToolsCli:
    def test_disasm(self, capsys):
        assert main(["disasm", "count", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "ldg" in out and "reconv" in out

    def test_disasm_interleaved_traversal(self, capsys):
        assert main(["disasm", "count", "--threads", "16",
                     "--traversal", "interleaved"]) == 0
        out = capsys.readouterr().out
        # interleaved init loads the base then adds tid (chunked scales tid)
        assert "mov r10, r4" in out

    def test_layout(self, capsys):
        assert main(["layout", "nbayes", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "word addr" in out

    def test_arches(self, capsys):
        assert main(["arches"]) == 0
        out = capsys.readouterr().out
        assert "millipede" in out and "gpgpu" in out

    def test_inspect_runs_simulation(self, capsys):
        assert main(["inspect", "millipede", "count", "--records", "1024"]) == 0
        out = capsys.readouterr().out
        assert "bus utilization" in out
        assert "roofline" in out

    def test_inspect_stats_dump(self, capsys):
        assert main(["inspect", "ssmc", "count", "--records", "1024", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "dram.requests" in out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            main(["disasm", "nope"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestInspectStore:
    def test_inspect_store_records_then_hits_no_manifest(self, tmp_path,
                                                         capsys):
        """`inspect --store` is not a campaign: it records/serves through
        the store but must not write any manifest (a fixed manifest name
        would clobber the previous inspection's checkpoint)."""
        store_dir = tmp_path / "store"
        argv = ["inspect", "ssmc", "count", "--records", "512",
                "--store", str(store_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "store: miss" in out and "roofline" in out
        assert list((store_dir / "manifests").glob("*")) == []

        # the repeat is a store hit, not a re-simulation
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "store: hit" in out
        assert list((store_dir / "manifests").glob("*")) == []

    def test_inspect_store_ignored_for_traced_runs(self, tmp_path, capsys):
        assert main(["inspect", "ssmc", "count", "--records", "512",
                     "--store", str(tmp_path / "s"),
                     "--trace", str(tmp_path / "traces")]) == 0
        out = capsys.readouterr().out
        assert "store:" not in out and "trace:" in out


class TestStoreCommand:
    def test_store_info_compact_gc(self, tmp_path, capsys):
        from repro.sim.spec import RunSpec
        from repro.sim.store import FingerprintStore, canonical_result_blob

        from tests.test_store import make_result

        store_dir = tmp_path / "store"
        specs = [RunSpec(a, "count", n_records=512)
                 for a in ("ssmc", "millipede")]
        for spec in specs:  # one writer instance each -> two segments
            with FingerprintStore(store_dir) as writer:
                writer.put_spec(spec, make_result(spec))

        assert main(["store", str(store_dir), "info"]) == 0
        out = capsys.readouterr().out
        assert "records:       2" in out and "segments:      2" in out

        assert main(["store", str(store_dir), "compact"]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 records: 2 -> 1 segments" in out
        reader = FingerprintStore(store_dir)
        assert len(reader.segments()) == 1
        for spec in specs:
            assert canonical_result_blob(reader.get_spec(spec)) == \
                canonical_result_blob(make_result(spec))

        # a second compact is a no-op; gc reports a clean store
        assert main(["store", str(store_dir), "compact"]) == 0
        assert "nothing to compact" in capsys.readouterr().out
        assert main(["store", str(store_dir), "gc"]) == 0
        out = capsys.readouterr().out
        assert "removed 0 temp files, 0 stale claims" in out
