"""Tests for the developer-tools CLI."""

from __future__ import annotations

import pytest

from repro.tools.cli import build_parser, main


class TestToolsCli:
    def test_disasm(self, capsys):
        assert main(["disasm", "count", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "ldg" in out and "reconv" in out

    def test_disasm_interleaved_traversal(self, capsys):
        assert main(["disasm", "count", "--threads", "16",
                     "--traversal", "interleaved"]) == 0
        out = capsys.readouterr().out
        # interleaved init loads the base then adds tid (chunked scales tid)
        assert "mov r10, r4" in out

    def test_layout(self, capsys):
        assert main(["layout", "nbayes", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "word addr" in out

    def test_arches(self, capsys):
        assert main(["arches"]) == 0
        out = capsys.readouterr().out
        assert "millipede" in out and "gpgpu" in out

    def test_inspect_runs_simulation(self, capsys):
        assert main(["inspect", "millipede", "count", "--records", "1024"]) == 0
        out = capsys.readouterr().out
        assert "bus utilization" in out
        assert "roofline" in out

    def test_inspect_stats_dump(self, capsys):
        assert main(["inspect", "ssmc", "count", "--records", "1024", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "dram.requests" in out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            main(["disasm", "nope"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
