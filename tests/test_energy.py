"""Unit tests for the energy model."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.energy.model import EnergyBreakdown, compute_energy
from repro.engine.stats import Stats


def _stats(prefix="dram", words=1000, activations=10) -> Stats:
    s = Stats()
    s.inc(f"{prefix}.requests", 5)
    s.inc(f"{prefix}.words_transferred", words)
    s.inc(f"{prefix}.activations", activations)
    return s


BASE_COLLECTED = {
    "instructions": 10_000,
    "idle_cycles": 2_000,
    "icache_fetches": 10_000,
    "finish_ps": 1_000_000,
}


class TestBreakdown:
    def test_total_is_sum(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert b.total_j == 10.0
        assert b.core_j == 3.0

    def test_as_dict_roundtrip(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        d = b.as_dict()
        assert d["total_j"] == 10.0 and d["dram_j"] == 3.0


class TestComputeEnergy:
    def setup_method(self):
        self.cfg = SystemConfig()

    def test_millipede_path(self):
        collected = dict(BASE_COLLECTED, local_accesses=500)
        e = compute_energy("millipede", self.cfg, _stats(), collected)
        assert e.total_j > 0
        assert e.core_dynamic_j > 0 and e.dram_j > 0 and e.leakage_j > 0

    def test_gpgpu_pays_crossbar(self):
        base = dict(BASE_COLLECTED, shared_mem_accesses=0, l1d_accesses=0)
        loaded = dict(BASE_COLLECTED, shared_mem_accesses=1000, l1d_accesses=0)
        e0 = compute_energy("gpgpu", self.cfg, _stats(), base)
        e1 = compute_energy("gpgpu", self.cfg, _stats(), loaded)
        expected = 1000 * (self.cfg.energy.shared_mem_pj
                           + self.cfg.energy.shared_mem_crossbar_pj) / 1e12
        assert e1.core_dynamic_j - e0.core_dynamic_j == pytest.approx(expected)

    def test_dram_energy_scales_with_bits_and_activations(self):
        collected = dict(BASE_COLLECTED, local_accesses=0)
        small = compute_energy("millipede", self.cfg, _stats(words=100), collected)
        big = compute_energy("millipede", self.cfg, _stats(words=10_000), collected)
        assert big.dram_j > small.dram_j
        noact = compute_energy(
            "millipede", self.cfg, _stats(words=100, activations=0), collected
        )
        assert small.dram_j > noact.dram_j

    def test_offchip_uses_70pj_per_bit(self):
        collected = dict(BASE_COLLECTED, l1d_accesses=0)
        on = compute_energy("millipede", self.cfg, _stats("dram"), dict(collected, local_accesses=0))
        off = compute_energy("multicore", self.cfg, _stats("offchip"), collected)
        # same traffic, ~70/6 the per-bit energy (plus activation parity)
        assert off.dram_j > on.dram_j * 5

    def test_idle_energy_proportional_to_idle_cycles(self):
        c1 = dict(BASE_COLLECTED, local_accesses=0, idle_cycles=1_000)
        c2 = dict(BASE_COLLECTED, local_accesses=0, idle_cycles=4_000)
        e1 = compute_energy("millipede", self.cfg, _stats(), c1)
        e2 = compute_energy("millipede", self.cfg, _stats(), c2)
        assert e2.idle_j == pytest.approx(4 * e1.idle_j)

    def test_leakage_proportional_to_runtime(self):
        c1 = dict(BASE_COLLECTED, local_accesses=0)
        c2 = dict(c1, finish_ps=2_000_000)
        e1 = compute_energy("millipede", self.cfg, _stats(), c1)
        e2 = compute_energy("millipede", self.cfg, _stats(), c2)
        assert e2.leakage_j == pytest.approx(2 * e1.leakage_j)

    def test_multicore_core_multiplier(self):
        collected = dict(BASE_COLLECTED, l1d_accesses=0)
        mc = compute_energy("multicore", self.cfg, _stats("offchip"), collected)
        ss = compute_energy("ssmc", self.cfg, _stats(), collected)
        assert mc.core_dynamic_j > ss.core_dynamic_j
