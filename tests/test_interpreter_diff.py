"""Differential property tests: the ISA interpreter against a direct
Python evaluation of the same operation sequence.

Hypothesis generates random straight-line ALU programs; both executors
must agree on every register, for any inputs.  This is the deepest
correctness net under every simulated result (all kernels reduce to these
semantics plus memory moves, which the golden-model validation covers
end-to-end).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.executor import ThreadContext, step_one

# ops closed over positive ints (keep idiv/rem/shift well-defined)
_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "slt": lambda a, b: int(a < b),
    "sle": lambda a, b: int(a <= b),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
}

_FLOAT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
}

_UNOPS = {
    "abs": abs,
    "neg": lambda a: -a,
    "mov": lambda a: a,
}


def interpret(source: str, init: dict[int, float]) -> list[float]:
    prog = assemble(source)
    ctx = ThreadContext(0)
    ctx.set_args(init)
    steps = 0
    while not ctx.halted:
        acc = step_one(ctx, prog[ctx.pc])
        assert acc is None, "ALU-only programs must not touch memory"
        steps += 1
        assert steps < 10_000
    return ctx.regs


@st.composite
def alu_program(draw, ops_dict, value_strategy):
    """A random straight-line program over registers r1..r7 with model."""
    n_init = draw(st.integers(min_value=1, max_value=7))
    init = {r: draw(value_strategy) for r in range(1, n_init + 1)}
    regs = list(range(1, n_init + 1))
    model = {0: 0, **init}
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(st.sampled_from(["bin", "un"]))
        rd = draw(st.integers(min_value=1, max_value=7))
        if kind == "bin":
            op = draw(st.sampled_from(sorted(ops_dict)))
            rs, rt = draw(st.sampled_from(regs)), draw(st.sampled_from(regs))
            lines.append(f"{op} r{rd}, r{rs}, r{rt}")
            model[rd] = ops_dict[op](model.get(rs, 0), model.get(rt, 0))
        else:
            op = draw(st.sampled_from(sorted(_UNOPS)))
            rs = draw(st.sampled_from(regs))
            lines.append(f"{op} r{rd}, r{rs}")
            model[rd] = _UNOPS[op](model.get(rs, 0))
        if rd not in regs:
            regs.append(rd)
    lines.append("halt")
    return "\n".join(lines), init, model


class TestDifferential:
    @given(alu_program(_INT_BINOPS, st.integers(min_value=0, max_value=1 << 20)))
    @settings(max_examples=200, deadline=None)
    def test_integer_programs_agree(self, case):
        source, init, model = case
        regs = interpret(source, init)
        for r, want in model.items():
            assert regs[r] == want, f"r{r} after:\n{source}"

    @given(alu_program(_FLOAT_BINOPS,
                       st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False, allow_infinity=False)))
    @settings(max_examples=200, deadline=None)
    def test_float_programs_agree(self, case):
        source, init, model = case
        regs = interpret(source, init)
        for r, want in model.items():
            got = regs[r]
            assert got == want or math.isclose(got, want, rel_tol=0, abs_tol=0), (
                f"r{r}: {got} != {want} after:\n{source}"
            )

    @given(st.integers(min_value=1, max_value=1 << 16),
           st.integers(min_value=1, max_value=1 << 10))
    @settings(max_examples=100, deadline=None)
    def test_idiv_rem_identity(self, a, b):
        regs = interpret("idiv r3, r1, r2\nrem r4, r1, r2\nhalt", {1: a, 2: b})
        assert regs[3] * b + regs[4] == a

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_sqrt_matches_math(self, x):
        regs = interpret("sqrt r2, r1\nhalt", {1: x} if x else {2: 0, 1: 0})
        assert regs[2] == math.sqrt(x)

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_branch_agrees_with_comparison(self, a, b):
        """A branch on (a < b) and the slt comparison must agree."""
        src = """
            blt r1, r2, took
            li r3, 0
            j out
        took:
            li r3, 1
        out:
            slt r4, r1, r2
            halt
        """
        regs = interpret(src, {1: a, 2: b})
        assert regs[3] == regs[4] == int(a < b)


# ----------------------------------------------------------------------
# end-to-end differential sweep under the sanitizer: every architecture
# runs every workload with runtime invariant checking attached, and every
# simulated reduction must match the golden NumPy model (validate=True
# raises inside run_batch on any mismatch; the sanitizer raises
# InvariantViolation on any broken mechanism invariant)
# ----------------------------------------------------------------------
class TestSanitizedDifferentialSweep:
    def test_every_arch_every_workload_sanitized(self):
        from repro import ARCHITECTURES
        from repro.sim.campaign import cross, run_batch
        from repro.workloads.registry import workload_names

        specs = cross(list(ARCHITECTURES), workload_names(),
                      n_records=256, validate=True, sanitize=True)
        results = run_batch(specs, workers=1)
        assert len(results) == len(specs)
        assert all(r.validated for r in results)
        assert all(r.finish_ps > 0 for r in results)
