"""Tests for the experiment harness plumbing (fast paths only; the full
figure regenerations are exercised by benchmarks/)."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.experiments import EXPERIMENTS, table3
from repro.experiments.common import (
    ExperimentResult,
    ascii_bars,
    cached_run,
    format_table,
    geomean,
    markdown_table,
)
from repro.experiments.report import write_markdown
from repro.sim.cache import ResultCache


class TestFormatting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yy", 22.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "22.25" in lines[-1]

    def test_markdown_table(self):
        out = markdown_table(["a"], [[1.0]])
        assert out.splitlines()[1] == "|---|"

    def test_ascii_bars_scale_to_max(self):
        out = ascii_bars(["x", "y"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2.0]) == 2.0


class TestExperimentResult:
    def test_text_and_markdown_render(self):
        res = ExperimentResult(
            name="x", title="T", headers=["h"], rows=[[1.0]],
            notes=["n"], extra_sections=["sec"],
        )
        assert "T" in res.text() and "sec" in res.text()
        md = res.markdown()
        assert md.startswith("### T")
        assert "*n*" in md


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "fig3", "fig4", "fig5", "fig6", "fig7"
        }

    def test_table3_needs_no_simulation(self):
        res = table3.run_experiment(SystemConfig())
        assert any("700 MHz" in str(c) for row in res.rows for c in row)


class TestCachedRun:
    def test_cache_hit_skips_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cached_run("millipede", "count", n_records=1024, cache=cache)
        second = cached_run("millipede", "count", n_records=1024, cache=cache)
        assert second.finish_ps == first.finish_ps
        # cached results are deserialized: host time is the original's
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestReport:
    def test_write_markdown(self, tmp_path):
        res = ExperimentResult("x", "Title", ["h"], [[1.0]])
        path = write_markdown([res], tmp_path / "out.md")
        text = path.read_text()
        assert "### Title" in text
        assert "Calibration record" in text


class TestRunnerCli:
    def test_parser_accepts_all(self):
        from repro.experiments.runner import build_parser

        p = build_parser()
        args = p.parse_args(["table3", "--records", "512"])
        assert args.which == "table3" and args.records == 512

    def test_cli_table3_runs(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "hardware parameters" in out
