"""The execution-backend contract: options API, calendar queue, and the
vector backend's bit-identity guarantee.

``docs/backends.md`` states the guarantee these tests enforce: for every
registered architecture and workload, the ``calendar`` and ``vector``
backends produce **byte-identical** results to the reference
interpreter — same finish time, same statistics, same energy, same
reduced output, same validation verdict — not merely close ones.  The
differential sweep here is the acceptance gate; if a change breaks
identity, the fix goes in the backend, never in the tolerance.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.engine.calendar import CalendarQueue
from repro.engine.events import Engine
from repro.sim.driver import ARCHITECTURES, run
from repro.sim.options import BACKENDS, ExecOptions
from repro.sim.spec import RunSpec
from repro.workloads.registry import workload_names

#: small enough to keep the full differential matrix fast, large enough
#: that every thread context runs real records (128 global threads on
#: the MIMD arches, 2 records each)
N_RECORDS = 256


def fingerprint(r):
    """Everything a backend must reproduce byte-for-byte (host_seconds
    is wall-clock and legitimately differs).  Pickled so nested NumPy
    arrays in ``reduced`` compare as bytes, which is exactly the
    guarantee: identical serialized results."""
    return pickle.dumps((
        r.finish_ps,
        r.collected,
        r.stats,
        r.reduced,
        r.energy.total_j,
        r.validated,
    ))


# ----------------------------------------------------------------------
# ExecOptions / RunSpec API
# ----------------------------------------------------------------------
class TestExecOptions:
    def test_defaults(self):
        o = ExecOptions()
        assert (o.validate, o.sanitize, o.trace, o.backend) == (
            True, False, False, "reference")
        assert o.scheduler == "heap"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecOptions().backend = "vector"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecOptions(backend="jit")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scheduler_follows_backend(self, backend):
        expected = "heap" if backend == "reference" else "calendar"
        assert ExecOptions(backend=backend).scheduler == expected

    def test_replace(self):
        o = ExecOptions(sanitize=True)
        o2 = o.replace(backend="vector")
        assert o2.sanitize and o2.backend == "vector"
        assert o.backend == "reference"  # original untouched

    def test_dict_round_trip(self):
        o = ExecOptions(validate=False, trace=True, backend="vector")
        assert ExecOptions.from_dict(o.to_dict()) == o

    def test_to_dict_omits_default_backend(self):
        # pre-redesign dicts had no "backend" key; emitting one only when
        # non-default keeps old content hashes stable
        assert "backend" not in ExecOptions().to_dict()
        assert ExecOptions(backend="vector").to_dict()["backend"] == "vector"


class TestRunSpecOptions:
    def test_flat_flags_build_options(self):
        # the flat-flag shim is this class's subject; see docs/linting.md
        s = RunSpec("millipede", "count",  # repro-lint: disable=API001
                    sanitize=True, backend="vector")
        assert s.options == ExecOptions(sanitize=True, backend="vector")
        assert s.sanitize and s.backend == "vector"  # delegating properties

    def test_mixing_options_and_flags_rejected(self):
        with pytest.raises(TypeError):
            RunSpec("millipede", "count",  # repro-lint: disable=API001
                    options=ExecOptions(), sanitize=True)

    def test_replace_routes_option_flags(self):
        s = RunSpec("millipede", "count")
        assert s.replace(backend="vector").options.backend == "vector"
        assert s.replace(n_records=64).n_records == 64

    def test_from_dict_accepts_pre_redesign_flat_dicts(self):
        old = {"arch": "millipede", "workload": "count",
               "validate": True, "sanitize": True, "trace": False,
               "seed": 2}
        s = RunSpec.from_dict(old)
        assert s.options == ExecOptions(sanitize=True)
        assert s.seed == 2

    def test_from_dict_round_trip(self):
        for s in (RunSpec("ssmc", "kmeans", n_records=512),
                  RunSpec("millipede", "pca",  # repro-lint: disable=API001
                          backend="vector", seed=7)):
            assert RunSpec.from_dict(s.to_dict()) == s

    def test_content_hash_pinned(self):
        # regression pins: redesigns must not silently re-key the result
        # cache / dedup machinery for pre-existing (reference) specs
        assert RunSpec("millipede", "count").content_hash() == "7a593d633e49baf2"
        assert (RunSpec("ssmc", "kmeans", n_records=4096, seed=3).content_hash()
                == "8d6011450f6c9471")

    def test_backend_changes_hash(self):
        # different backend => different cache entry (results are
        # identical, but the cache must not conflate what was run)
        ref = RunSpec("millipede", "count")
        vec = RunSpec("millipede", "count",  # repro-lint: disable=API001
                      backend="vector")
        assert ref.content_hash() != vec.content_hash()


# ----------------------------------------------------------------------
# repro.api facade
# ----------------------------------------------------------------------
class TestApiFacade:
    def test_run_spec_with_options_rejected(self):
        from repro import api
        with pytest.raises(TypeError):
            api.run(RunSpec("millipede", "count"), options=ExecOptions())

    def test_cache_bool_rejected(self):
        # cache takes a ResultCache or None; a stray bool must fail at
        # the facade, not as an AttributeError inside the campaign loop
        from repro import api
        with pytest.raises(TypeError, match="ResultCache"):
            api.run_batch([RunSpec("millipede", "count", n_records=N_RECORDS)],
                          cache=False)
        with pytest.raises(TypeError, match="ResultCache"):
            api.sweep(["millipede"], ["count"], n_records=N_RECORDS,
                      cache=True)

    def test_run_and_sweep_match_driver(self):
        from repro import api
        fast = ExecOptions(backend="vector")
        ref = run("millipede", "kmeans", n_records=N_RECORDS)
        assert fingerprint(api.run("millipede", "kmeans",
                                   n_records=N_RECORDS,
                                   options=fast)) == fingerprint(ref)
        grid = api.sweep(["millipede"], ["kmeans"], n_records=N_RECORDS,
                         options=fast)
        assert list(grid) == [("millipede", "kmeans")]
        assert fingerprint(grid[("millipede", "kmeans")]) == fingerprint(ref)

    def test_sweep_defaults_to_all_workloads(self):
        from repro import api
        from unittest import mock
        with mock.patch("repro.api.run_batch") as rb:
            rb.return_value = [None] * len(workload_names())
            grid = api.sweep(["millipede"])
        assert sorted(wl for _, wl in grid) == sorted(workload_names())


# ----------------------------------------------------------------------
# calendar queue vs. binary heap
# ----------------------------------------------------------------------
class TestCalendarQueue:
    def test_differential_delivery_order(self):
        # mixed deltas spanning far less / far more than a bucket width,
        # plus cancellations: both schedulers must agree event-for-event
        rng = random.Random(1234)
        deltas = [0, 1, 3, 700, 1429, 100_000, 5_000_000]
        for _ in range(20):
            heap_eng, cal_eng = Engine(), Engine(scheduler="calendar")
            out_h, out_c = [], []
            cancel_h, cancel_c = [], []
            plan = [(rng.choice(deltas), i) for i in range(300)]
            for d, tag in plan:
                cancel_h.append(heap_eng.schedule(d, out_h.append, tag))
                cancel_c.append(cal_eng.schedule(d, out_c.append, tag))
            for k in rng.sample(range(300), 60):
                heap_eng.cancel(cancel_h[k])
                cal_eng.cancel(cancel_c[k])
            n_h = heap_eng.run()
            n_c = cal_eng.run()
            assert out_h == out_c
            assert heap_eng.now == cal_eng.now
            assert n_h == n_c == 240

    def test_recursive_scheduling_matches_heap(self):
        rng = random.Random(99)
        script = [rng.choice([0, 1, 511, 1024, 4096, 1_000_000])
                  for _ in range(200)]

        def drive(eng):
            out = []

            def cb(i):
                out.append((eng.now, i))
                if i < len(script):
                    eng.schedule(script[i - 1], cb, i + 1)

            eng.schedule(0, cb, 1)
            eng.run()
            return out

        assert drive(Engine()) == drive(Engine(scheduler="calendar"))

    def test_equal_timestamps_fifo(self):
        eng = Engine(scheduler="calendar")
        out = []
        for i in range(10):
            eng.schedule(50, out.append, i)
        eng.run()
        assert out == list(range(10))

    def test_run_until_and_max_events_contract(self):
        eng = Engine(scheduler="calendar")
        out = []
        for t in (100, 200, 300):
            eng.schedule(t, out.append, t)
        eng.run(max_events=2)
        assert out == [100, 200] and eng.now == 200
        eng.run(until=250)
        assert eng.now == 250  # advances idle time, holds the 300 event
        eng.run()
        assert out == [100, 200, 300] and eng.now == 300

    def test_grow_preserves_order(self):
        # push far more events than the initial bucket count to force
        # resizes mid-stream
        q = CalendarQueue()
        rng = random.Random(7)

        class Ev:
            __slots__ = ("time", "seq", "cancelled")

            def __init__(self, time, seq):
                self.time, self.seq, self.cancelled = time, seq, False

            def __lt__(self, other):
                return (self.time, self.seq) < (other.time, other.seq)

        evs = [Ev(rng.randrange(0, 10_000_000), i) for i in range(3000)]
        for e in evs:
            q.push(e)
        popped = []
        while q.peek_min() is not None:
            popped.append(q.pop_min())
        assert popped == sorted(evs, key=lambda e: (e.time, e.seq))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            Engine(scheduler="wheel")


# ----------------------------------------------------------------------
# the bit-identity guarantee (ISSUE 6 acceptance gate)
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("wl", workload_names())
    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    def test_vector_bit_identical(self, arch, wl):
        """All 8 workloads x every registry arch: vector == reference.

        This includes the SIMT arches (gpgpu/vws/vws-row), which run the
        lockstep PDOM divergence engine and per-warp trace replay — there
        is no fallback path (test_simt_arches_actually_vectorized pins
        that).
        """
        ref = run(RunSpec(arch, wl, n_records=N_RECORDS))
        vec = run(RunSpec(arch, wl, n_records=N_RECORDS,
                          options=ExecOptions(backend="vector")))
        assert fingerprint(ref) == fingerprint(vec)
        assert ref.validated and vec.validated

    @pytest.mark.parametrize("arch", ["gpgpu", "vws", "vws-row"])
    def test_simt_arches_actually_vectorized(self, arch):
        """The SIMT arches must run the per-warp trace replay, not quietly
        fall back to the reference interpreter (the pre-PDOM behaviour):
        under backend="vector" the SM carries a SimtReplay, and under the
        explicit backend="reference" escape hatch it does not."""
        procs = {}

        def grab(proc, engine, sanitizer):
            procs[proc.__class__.__name__] = proc

        vec = run(RunSpec(arch, "count", n_records=N_RECORDS,
                          options=ExecOptions(backend="vector")), probe=grab)
        (proc,) = procs.values()
        assert proc._replay is not None, (
            f"{arch} fell back to the reference interpreter under "
            "backend='vector'")
        procs.clear()
        ref = run(RunSpec(arch, "count", n_records=N_RECORDS), probe=grab)
        (proc,) = procs.values()
        assert proc._replay is None
        assert fingerprint(ref) == fingerprint(vec)

    @pytest.mark.parametrize("wl", ["count", "kmeans", "variance"])
    @pytest.mark.parametrize("arch", ["millipede", "ssmc"])
    def test_calendar_bit_identical(self, arch, wl):
        """Calendar scheduler alone (reference interpreter) is also exact."""
        ref = run(RunSpec(arch, wl, n_records=N_RECORDS))
        cal = run(RunSpec(arch, wl, n_records=N_RECORDS,
                          options=ExecOptions(backend="calendar")))
        assert fingerprint(ref) == fingerprint(cal)

    @pytest.mark.parametrize("arch", ["millipede", "millipede-bar",
                                      "millipede-rm", "ssmc", "multicore",
                                      "gpgpu", "vws", "vws-row"])
    def test_sanitized_vector_bit_identical(self, arch):
        """The sanitizer's invariant checks hold under trace replay, and
        sanitized runs stay identical across backends.  For the SIMT
        arches this exercises the observed replay path: the _SimtChecker
        watches live warp reconvergence stacks, so the replay must evolve
        them issue-by-issue exactly as the reference did."""
        opts = ExecOptions(sanitize=True)
        ref = run(RunSpec(arch, "kmeans", n_records=N_RECORDS, options=opts))
        vec = run(RunSpec(arch, "kmeans", n_records=N_RECORDS,
                          options=opts.replace(backend="vector")))
        assert fingerprint(ref) == fingerprint(vec)

    @pytest.mark.parametrize("arch", ["millipede", "ssmc", "gpgpu"])
    def test_traced_vector_bit_identical(self, arch):
        """The timeline tracer samples mid-run state (instruction counts,
        queue depths); replay must reproduce every sample, not just the
        end-of-run totals."""
        opts = ExecOptions(trace=True)
        ref = run(RunSpec(arch, "kmeans", n_records=N_RECORDS, options=opts))
        vec = run(RunSpec(arch, "kmeans", n_records=N_RECORDS,
                          options=opts.replace(backend="vector")))
        assert fingerprint(ref) == fingerprint(vec)
        assert ref.trace.samples == vec.trace.samples
        assert ref.trace.freq_changes == vec.trace.freq_changes

    def test_seed_sensitivity(self):
        """Different seeds produce different data; identity must hold for
        each, and the two seeds must not be conflated."""
        a0 = fingerprint(run(RunSpec("millipede", "gda",
                                     n_records=N_RECORDS, seed=0)))
        a1 = fingerprint(run(RunSpec("millipede", "gda",
                                     n_records=N_RECORDS, seed=1)))
        v0 = fingerprint(run(RunSpec("millipede", "gda",
                                     n_records=N_RECORDS, seed=0,
                                     options=ExecOptions(backend="vector"))))
        v1 = fingerprint(run(RunSpec("millipede", "gda",
                                     n_records=N_RECORDS, seed=1,
                                     options=ExecOptions(backend="vector"))))
        assert a0 == v0 and a1 == v1 and a0 != a1
