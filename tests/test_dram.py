"""Unit tests for the die-stacked DRAM model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.config import DramConfig, SystemConfig
from repro.dram.address import AddressMapper
from repro.dram.controller import MemoryController
from repro.dram.dram import GlobalMemory
from repro.dram.timing import DramTiming
from repro.engine.events import Engine
from repro.engine.stats import Stats

import numpy as np


class TestAddressMapper:
    def setup_method(self):
        self.m = AddressMapper(DramConfig())

    def test_first_row(self):
        loc = self.m.locate(0)
        assert (loc.bank, loc.row, loc.col) == (0, 0, 0)

    def test_rows_round_robin_banks(self):
        rw = self.m.row_words
        banks = [self.m.locate(r * rw).bank for r in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_column_within_row(self):
        assert self.m.locate(5).col == 5
        assert self.m.locate(self.m.row_words + 5).col == 5

    def test_row_base_roundtrip(self):
        assert self.m.row_base_addr(self.m.global_row_index(1234)) <= 1234

    @given(st.integers(min_value=0, max_value=10**7))
    def test_locate_is_consistent(self, addr):
        loc = self.m.locate(addr)
        rw, nb = self.m.row_words, self.m.n_banks
        reconstructed = ((loc.row * nb) + loc.bank) * rw + loc.col
        assert reconstructed == addr

    def test_same_row(self):
        rw = self.m.row_words
        assert self.m.same_row(0, rw - 1)
        assert not self.m.same_row(0, rw)


class TestTiming:
    def test_transfer_scales_with_bytes(self):
        t = DramTiming(DramConfig())
        assert t.transfer_ps(2048) > t.transfer_ps(64)

    def test_transfer_rounds_up_to_cycles(self):
        cfg = DramConfig()
        t = DramTiming(cfg)
        one = t.transfer_ps(1)
        assert one == t.transfer_ps(cfg.channel_bytes_per_cycle)

    def test_miss_overhead(self):
        t = DramTiming(DramConfig())
        assert t.row_miss_overhead_ps == t.t_rp_ps + t.t_rcd_ps


class TestGlobalMemory:
    def test_roundtrip(self):
        m = GlobalMemory(16)
        m.write_word(7, 3.25)
        assert m.read_word(7) == 3.25

    def test_from_array(self):
        m = GlobalMemory.from_array(np.arange(10))
        assert m.read_word(9) == 9.0

    def test_bounds(self):
        m = GlobalMemory(4)
        with pytest.raises(IndexError):
            m.read_word(4)
        with pytest.raises(IndexError):
            m.write_word(-1, 0)
        with pytest.raises(IndexError):
            m.read_block(2, 4)

    def test_block_is_view(self):
        m = GlobalMemory.from_array(np.arange(8))
        v = m.read_block(2, 3)
        assert list(v) == [2, 3, 4]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)


def _mc(queue_depth: int = 16) -> tuple[Engine, MemoryController, Stats]:
    eng = Engine()
    st_ = Stats()
    cfg = SystemConfig().dram
    import dataclasses
    cfg = dataclasses.replace(cfg, controller_queue_depth=queue_depth)
    return eng, MemoryController(eng, cfg, st_), st_


class TestController:
    def test_single_request_completes(self):
        eng, mc, st_ = _mc()
        done = []
        mc.access(0, 32, callback=lambda r: done.append(eng.now))
        eng.run()
        assert len(done) == 1
        assert done[0] > 0
        assert st_["dram.row_misses"] == 1  # cold row

    def test_sequential_same_row_hits(self):
        eng, mc, st_ = _mc()
        for i in range(8):
            mc.access(i * 32, 32)
        eng.run()
        assert st_["dram.row_misses"] == 1
        assert st_["dram.row_hits"] == 7

    def test_fr_fcfs_groups_same_row_requests(self):
        eng, mc, st_ = _mc()
        rw = mc.mapper.row_words
        nb = mc.mapper.n_banks
        # alternate two rows of the SAME bank, all queued at once: FR-FCFS
        # serves each row's requests together, so only 2 activations happen
        for i in range(6):
            base = (i % 2) * rw * nb
            mc.access(base, 32)
        eng.run()
        assert st_["dram.row_misses"] == 2
        assert st_["dram.row_hits"] == 4

    def test_fr_fcfs_prefers_row_hit(self):
        eng, mc, st_ = _mc()
        rw, nb = mc.mapper.row_words, mc.mapper.n_banks
        order = []
        # first request opens row 0 of bank 0; then queue a conflicting
        # row and another row-0 hit - the hit should be served first
        mc.access(0, 32, callback=lambda r: order.append("warm"))
        mc.access(rw * nb, 32, callback=lambda r: order.append("miss"))
        mc.access(64, 32, callback=lambda r: order.append("hit"))
        eng.run()
        assert order[0] == "warm"
        assert order.index("hit") < order.index("miss")

    def test_full_row_burst_single_activation(self):
        eng, mc, st_ = _mc()
        mc.access(0, mc.mapper.row_words)
        eng.run()
        assert st_["dram.activations"] == 1
        assert st_["dram.words_transferred"] == mc.mapper.row_words

    def test_row_straddle_rejected(self):
        eng, mc, st_ = _mc()
        with pytest.raises(ValueError, match="straddles"):
            mc.access(mc.mapper.row_words - 4, 8)

    def test_bank_parallelism_overlaps_activation(self):
        """Two rows in different banks finish faster than two rows in the
        same bank (the second same-bank row must wait out tRAS/tRP)."""
        def run_pair(second_addr):
            eng, mc, _ = _mc()
            times = []
            mc.access(0, 512, callback=lambda r: times.append(eng.now))
            mc.access(second_addr, 512, callback=lambda r: times.append(eng.now))
            eng.run()
            return times[-1]

        rw, nb = 512, 4
        diff_bank = run_pair(rw)            # row 1 -> bank 1
        same_bank = run_pair(rw * nb)       # row 4 -> bank 0 again
        assert diff_bank <= same_bank

    def test_throughput_accounting(self):
        eng, mc, st_ = _mc()
        for i in range(4):
            mc.access(i * 512, 512)
        eng.run()
        assert st_["dram.words_transferred"] == 2048
        assert st_["dram.bus_busy_ps"] > 0

    def test_anti_starvation_eventually_serves_old_request(self):
        eng, mc, st_ = _mc(queue_depth=4)
        done = []
        rw, nb = mc.mapper.row_words, mc.mapper.n_banks
        mc.access(rw * nb, 32, callback=lambda r: done.append("old"))
        for i in range(20):
            mc.access(i * 32, 32, callback=lambda r: done.append("hit"))
        eng.run()
        assert "old" in done

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=40))
    def test_every_request_completes_once(self, blocks):
        eng, mc, st_ = _mc()
        done = []
        for b in blocks:
            mc.access(b * 32, 32, callback=lambda r: done.append(r.addr))
        eng.run()
        assert sorted(done) == sorted(b * 32 for b in blocks)
        assert st_["dram.completed"] == len(blocks)

    def test_miss_rate_helper(self):
        eng, mc, st_ = _mc()
        mc.access(0, 32)
        mc.access(32, 32)
        eng.run()
        assert mc.row_miss_rate() == pytest.approx(0.5)


class TestAddressMapperBijectivity:
    """locate() and word_addr() are mutually inverse over random
    geometries (the sanitizer and the prefetchers both rely on it)."""

    geometries = st.tuples(
        st.sampled_from([64, 128, 256, 512, 1024, 2048, 4096, 8192]),  # row bytes
        st.integers(min_value=1, max_value=16),                        # banks
    )

    @given(geometry=geometries, addr=st.integers(0, 10**9))
    def test_word_addr_inverts_locate(self, geometry, addr):
        row_bytes, banks = geometry
        m = AddressMapper(DramConfig(row_bytes=row_bytes, banks_per_channel=banks))
        assert m.word_addr(m.locate(addr)) == addr

    @given(geometry=geometries, bank=st.integers(0, 15),
           row=st.integers(0, 10**6), col=st.integers(0, 2047))
    def test_locate_inverts_word_addr(self, geometry, bank, row, col):
        from repro.dram.address import DramLocation

        row_bytes, banks = geometry
        m = AddressMapper(DramConfig(row_bytes=row_bytes, banks_per_channel=banks))
        loc = DramLocation(bank=bank % banks, row=row, col=col % m.row_words)
        assert m.locate(m.word_addr(loc)) == loc

    def test_word_addr_rejects_out_of_range(self):
        m = AddressMapper(DramConfig())
        from repro.dram.address import DramLocation

        with pytest.raises(ValueError):
            m.word_addr(DramLocation(bank=m.n_banks, row=0, col=0))
        with pytest.raises(ValueError):
            m.word_addr(DramLocation(bank=0, row=0, col=m.row_words))
        with pytest.raises(ValueError):
            m.word_addr(DramLocation(bank=0, row=-1, col=0))
