"""repro.lint: every rule fires on a minimal bad fixture, stays silent on
the matching good fixture, suppressions work, and the self-run on the
repro package itself is clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.lint import all_rule_classes, lint_paths
from repro.lint.cli import main as lint_main
from repro.tools.cli import main as tools_main


def lint_source(tmp_path: Path, *sources: str, select=None):
    """Write each source as its own module and lint the set."""
    paths = []
    for i, src in enumerate(sources):
        p = tmp_path / f"fixture_{i}.py"
        p.write_text(src)
        paths.append(p)
    return lint_paths(paths, select=select)


def rule_ids(report) -> list[str]:
    return [f.rule for f in report.unsuppressed]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_all_families():
    ids = set(all_rule_classes())
    assert {"DET001", "DET002", "DET003", "HOOK001", "HOOK002",
            "STAT001", "STAT002", "PICK001", "PICK002", "PURE001",
            "API001"} <= ids
    for rule_id, cls in all_rule_classes().items():
        assert cls.id == rule_id
        assert cls.name and cls.rationale


def test_unknown_rule_id_rejected(tmp_path):
    with pytest.raises(KeyError):
        lint_source(tmp_path, "x = 1", select=["NOPE999"])


# ----------------------------------------------------------------------
# DET: determinism
# ----------------------------------------------------------------------
def test_det001_unseeded_random_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "a = random.randint(0, 9)\n"
        "b = np.random.rand(4)\n"
        "rng = np.random.default_rng()\n"
        "r = random.Random()\n"
    ))
    assert rule_ids(report).count("DET001") == 4


def test_det001_seeded_random_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "rng = np.random.default_rng(1234)\n"
        "r = random.Random(42)\n"
        "x = rng.integers(0, 9)\n"
        "y = r.randint(0, 9)\n"
    ))
    assert "DET001" not in rule_ids(report)


def test_det001_resolves_import_aliases(tmp_path):
    report = lint_source(tmp_path, (
        "from random import shuffle\n"
        "import numpy.random as npr\n"
        "shuffle([1, 2])\n"
        "npr.seed(0)\n"
    ))
    assert rule_ids(report).count("DET001") == 2


def test_det002_wall_clock_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "from datetime import datetime\n"
        "t = time.time()\n"
        "d = datetime.now()\n"
    ))
    assert rule_ids(report).count("DET002") == 2


def test_det002_monotonic_clocks_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "t0 = time.perf_counter()\n"
        "t1 = time.perf_counter_ns()\n"
        "t2 = time.monotonic()\n"
    ))
    assert "DET002" not in rule_ids(report)


def test_det003_set_iteration_fires(tmp_path):
    report = lint_source(tmp_path, (
        "s = {3, 1, 2}\n"
        "for x in set([1, 2]):\n"
        "    print(x)\n"
        "order = list({'a', 'b'})\n"
        "pairs = [v for v in frozenset((1, 2))]\n"
    ))
    assert rule_ids(report).count("DET003") == 3


def test_det003_sorted_iteration_silent(tmp_path):
    report = lint_source(tmp_path, (
        "for x in sorted(set([1, 2])):\n"
        "    print(x)\n"
        "order = sorted({'a', 'b'})\n"
        "ok = 3 in {1, 2, 3}\n"  # membership tests are order-free
    ))
    assert "DET003" not in rule_ids(report)


# ----------------------------------------------------------------------
# HOOK: observer conformance
# ----------------------------------------------------------------------
_DISPATCH = (
    "class Component:\n"
    "    def __init__(self):\n"
    "        self.observer = None\n"
    "    def work(self, entry):\n"
    "        if self.observer is not None:\n"
    "            self.observer.on_fill(entry)\n"
    "    def drain(self, ev):\n"
    "        obs = self.observer\n"
    "        if obs is not None:\n"
    "            obs.on_deliver(ev)\n"
    "            hook = getattr(obs, 'on_return', None)\n"
    "            if hook is not None:\n"
    "                hook(ev)\n"
)


def test_hook001_misspelled_hook_fires(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fil(self, entry):\n"  # typo: silently never fires
        "        pass\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "HOOK001"]
    assert len(findings) == 1
    assert "on_fil" in findings[0].message


def test_hook001_matching_hooks_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        pass\n"
        "    def on_return(self, ev):\n"  # getattr-dispatched
        "        pass\n"
    ))
    assert "HOOK001" not in rule_ids(report)


def test_hook001_self_callback_slots_exempt(tmp_path):
    # on_finished-style callback slots invoked on self are not observer hooks
    report = lint_source(tmp_path, _DISPATCH, (
        "class Proc:\n"
        "    def on_finished(self):\n"
        "        pass\n"
        "    def run(self):\n"
        "        self.on_finished()\n"
    ))
    assert "HOOK001" not in rule_ids(report)


def test_hook001_silent_without_any_dispatch_sites(tmp_path):
    # linting a lone observer module: the vocabulary is unknowable
    report = lint_source(tmp_path, (
        "class Watcher:\n"
        "    def on_anything(self, x):\n"
        "        pass\n"
    ))
    assert "HOOK001" not in rule_ids(report)


def test_hook002_arity_mismatch_fires(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fill(self, entry, extra):\n"  # sites pass 1 arg
        "        pass\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "HOOK002"]
    assert len(findings) == 1
    assert "passes 1" in findings[0].message


def test_hook002_compatible_signatures_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class A:\n"
        "    def on_fill(self, entry):\n"
        "        pass\n"
        "class B:\n"
        "    def on_fill(self, *args):\n"  # varargs accept anything
        "        pass\n"
        "class C:\n"
        "    def on_fill(self, entry, extra=None):\n"  # default absorbs
        "        pass\n"
    ))
    assert "HOOK002" not in rule_ids(report)


def test_hook_rules_know_real_dispatch_vocabulary(tmp_path):
    """Observer classes against the real src/repro dispatch sites."""
    bad = tmp_path / "bad_observer.py"
    bad.write_text(
        "class MyObserver:\n"
        "    def on_warp_instr(self, warp):\n"      # real hook, 1 arg: ok
        "        pass\n"
        "    def on_warp_instrs(self, warp):\n"     # typo
        "        pass\n"
        "    def on_consume(self, a, b, c):\n"      # real sites pass 2
        "        pass\n"
    )
    pkg = Path(repro.__file__).parent
    report = lint_paths([pkg, bad])
    mine = [f for f in report.unsuppressed if f.path == str(bad)]
    assert sorted(f.rule for f in mine) == ["HOOK001", "HOOK002"]


# ----------------------------------------------------------------------
# STAT: stats discipline
# ----------------------------------------------------------------------
def test_stat001_mixed_inc_set_fires(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self):\n"
        "        self.stats.inc('dram.rows')\n"
    ), (
        "class B:\n"
        "    def g(self):\n"
        "        self.stats.set('dram.rows', 5)\n"  # gauge vs counter
    ))
    findings = [f for f in report.unsuppressed if f.rule == "STAT001"]
    assert len(findings) == 1
    assert "dram.rows" in findings[0].message


def test_stat001_consistent_verbs_silent(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self):\n"
        "        self.stats.inc('hits')\n"
        "        self.stats.inc('hits', 2)\n"
        "        self.stats.set('final_hz', 7e8)\n"
        "        self.stats.set('final_hz', 6e8)\n"
    ))
    assert "STAT001" not in rule_ids(report)


def test_stat002_dynamic_key_fires(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self, name):\n"
        "        self.stats.inc(f'dram.{name}')\n"
        "        self.stats.set('prefix' + name, 1)\n"
    ))
    assert rule_ids(report).count("STAT002") == 2


def test_stat002_literal_keys_and_non_stats_receivers_silent(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self, key):\n"
        "        self.stats.inc('hits')\n"
        "        self.config.set(key, 1)\n"  # not a stats registry
    ))
    assert "STAT002" not in rule_ids(report)


# ----------------------------------------------------------------------
# PICK: pickle/multiprocess safety
# ----------------------------------------------------------------------
def test_pick001_lambda_into_run_batch_fires(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "def sweep(specs):\n"
        "    return run_batch(specs, key=lambda s: s.arch)\n"
    ))
    assert "PICK001" in rule_ids(report)


def test_pick001_local_function_into_pool_fires(tmp_path):
    report = lint_source(tmp_path, (
        "def sweep(pool, items):\n"
        "    def worker(item):\n"
        "        return item * 2\n"
        "    return list(pool.imap_unordered(worker, items))\n"
    ))
    assert "PICK001" in rule_ids(report)


def test_pick001_parent_side_progress_callback_exempt(tmp_path):
    # progress= and cache= are documented parent-side-only
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "def sweep(specs):\n"
        "    return run_batch(specs, workers=2, progress=lambda ev: print(ev))\n"
    ))
    assert "PICK001" not in rule_ids(report)


def test_pick001_module_level_worker_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def worker(item):\n"
        "    return item * 2\n"
        "def sweep(pool, items):\n"
        "    return list(pool.imap_unordered(worker, items))\n"
    ))
    assert "PICK001" not in rule_ids(report)


def test_pick002_global_rebinding_fires(tmp_path):
    report = lint_source(tmp_path, (
        "COUNT = 0\n"
        "def worker(item):\n"
        "    global COUNT\n"
        "    COUNT += 1\n"
        "    return item\n"
    ))
    assert "PICK002" in rule_ids(report)


def test_pick002_parameter_passing_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def worker(item, memo):\n"
        "    memo[item] = item * 2\n"
        "    return memo[item]\n"
    ))
    assert "PICK002" not in rule_ids(report)


# ----------------------------------------------------------------------
# PURE: event-handler purity
# ----------------------------------------------------------------------
def test_pure001_hook_mutating_component_fires(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        entry.filled = True\n"          # direct write
        "    def on_deliver(self, ev):\n"
        "        args = ev.args\n"
        "        args[0] = None\n"               # write through alias
    ))
    assert rule_ids(report).count("PURE001") == 2


def test_pure001_shadow_state_on_self_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def __init__(self):\n"
        "        self.shadow = {}\n"
        "        self.count = 0\n"
        "    def on_fill(self, entry):\n"
        "        self.count += 1\n"
        "        self.shadow[entry.row] = list(entry.consumed)\n"
        "        sh = self.shadow[entry.row]\n"
        "        sh[0] += 1\n"                   # copy, not the component
    ))
    assert "PURE001" not in rule_ids(report)


# ----------------------------------------------------------------------
# API: execution-options discipline
# ----------------------------------------------------------------------
def test_api001_flat_exec_flags_fire(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.spec import RunSpec\n"
        "a = RunSpec('millipede', 'count', sanitize=True)\n"
        "b = RunSpec('ssmc', 'kmeans', n_records=512,\n"
        "            trace=True, backend='vector')\n"
        "import repro.sim.spec as spec_mod\n"
        "c = spec_mod.RunSpec('gpgpu', 'pca', validate=False)\n"
    ))
    assert rule_ids(report).count("API001") == 3


def test_api001_options_construction_silent(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.options import ExecOptions\n"
        "from repro.sim.spec import RunSpec\n"
        "a = RunSpec('millipede', 'count',\n"
        "            options=ExecOptions(sanitize=True, backend='vector'))\n"
        "b = RunSpec('ssmc', 'kmeans', n_records=512, seed=3)\n"
    ))
    assert "API001" not in rule_ids(report)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_same_line_suppression(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "t = time.time()  # repro-lint: disable=DET002\n"
    ))
    assert report.ok
    assert len(report.findings) == 1 and report.findings[0].suppressed


def test_standalone_comment_suppresses_next_line(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "# repro-lint: disable=DET002\n"
        "t = time.time()\n"
    ))
    assert report.ok and report.findings[0].suppressed


def test_disable_all_and_wrong_rule(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "a = time.time()  # repro-lint: disable=all\n"
        "b = time.time()  # repro-lint: disable=DET001\n"  # wrong id
    ))
    assert [f.suppressed for f in report.findings] == [True, False]
    assert not report.ok


# ----------------------------------------------------------------------
# the self-run: the package must hold itself to these rules
# ----------------------------------------------------------------------
def test_self_run_on_repro_package_is_clean():
    pkg = Path(repro.__file__).parent
    report = lint_paths([pkg])
    assert report.errors == []
    assert report.unsuppressed == [], "\n".join(
        f.text() for f in report.unsuppressed)
    # the suppressions that do exist are deliberate and documented
    assert all(f.suppressed for f in report.findings)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")

    assert lint_main([str(good)]) == 0
    assert lint_main([str(bad)]) == 1
    assert lint_main([str(tmp_path / "missing.py")]) == 2
    assert lint_main(["--select", "NOPE1", str(good)]) == 2
    capsys.readouterr()

    assert lint_main(["--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1 and not payload["ok"]
    assert payload["summary"] == {"DET002": 1}
    assert payload["findings"][0]["rule"] == "DET002"


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rule_classes():
        assert rule_id in out


def test_cli_select_and_ignore(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert lint_main(["--select", "DET001", str(bad)]) == 0
    assert lint_main(["--ignore", "DET002", str(bad)]) == 0
    assert lint_main(["--select", "DET002", str(bad)]) == 1


def test_cli_reports_syntax_errors(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert lint_main([str(broken)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_tools_cli_lint_subcommand(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert tools_main(["lint", str(good)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert tools_main(["lint", "--json", str(bad)]) == 1
    assert json.loads(capsys.readouterr().out)["summary"] == {"DET002": 1}
