"""repro.lint: every rule fires on a minimal bad fixture, stays silent on
the matching good fixture, the project layer resolves aliases and one-hop
helper calls, suppressions and baselines work, and the self-run on the
whole project tree is clean."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.lint import all_rule_classes, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.core import ModuleInfo, Project
from repro.tools.cli import main as tools_main

_REPO = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, *sources: str, select=None):
    """Write each source as its own module and lint the set."""
    paths = []
    for i, src in enumerate(sources):
        p = tmp_path / f"fixture_{i}.py"
        p.write_text(src)
        paths.append(p)
    return lint_paths(paths, select=select)


def rule_ids(report) -> list[str]:
    return [f.rule for f in report.unsuppressed]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_all_families():
    ids = set(all_rule_classes())
    assert {"DET001", "DET002", "DET003", "HOOK001", "HOOK002",
            "STAT001", "STAT002", "PICK001", "PICK002", "PURE001",
            "API001"} <= ids
    for rule_id, cls in all_rule_classes().items():
        assert cls.id == rule_id
        assert cls.name and cls.rationale


def test_unknown_rule_id_rejected(tmp_path):
    with pytest.raises(KeyError):
        lint_source(tmp_path, "x = 1", select=["NOPE999"])


# ----------------------------------------------------------------------
# DET: determinism
# ----------------------------------------------------------------------
def test_det001_unseeded_random_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "a = random.randint(0, 9)\n"
        "b = np.random.rand(4)\n"
        "rng = np.random.default_rng()\n"
        "r = random.Random()\n"
    ))
    assert rule_ids(report).count("DET001") == 4


def test_det001_seeded_random_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "rng = np.random.default_rng(1234)\n"
        "r = random.Random(42)\n"
        "x = rng.integers(0, 9)\n"
        "y = r.randint(0, 9)\n"
    ))
    assert "DET001" not in rule_ids(report)


def test_det001_resolves_import_aliases(tmp_path):
    report = lint_source(tmp_path, (
        "from random import shuffle\n"
        "import numpy.random as npr\n"
        "shuffle([1, 2])\n"
        "npr.seed(0)\n"
    ))
    assert rule_ids(report).count("DET001") == 2


def test_det002_wall_clock_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "from datetime import datetime\n"
        "t = time.time()\n"
        "d = datetime.now()\n"
    ))
    assert rule_ids(report).count("DET002") == 2


def test_det002_monotonic_clocks_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "t0 = time.perf_counter()\n"
        "t1 = time.perf_counter_ns()\n"
        "t2 = time.monotonic()\n"
    ))
    assert "DET002" not in rule_ids(report)


def test_det003_set_iteration_fires(tmp_path):
    report = lint_source(tmp_path, (
        "s = {3, 1, 2}\n"
        "for x in set([1, 2]):\n"
        "    print(x)\n"
        "order = list({'a', 'b'})\n"
        "pairs = [v for v in frozenset((1, 2))]\n"
    ))
    assert rule_ids(report).count("DET003") == 3


def test_det002_value_aliased_clock_fires(tmp_path):
    # regression: ``clock = time.time; clock()`` used to be invisible
    report = lint_source(tmp_path, (
        "import time\n"
        "clock = time.time\n"
        "t = clock()\n"
    ))
    assert rule_ids(report) == ["DET002"]


def test_det001_value_aliased_factory_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "factory = np.random.default_rng\n"
        "rng = factory()\n"
    ))
    assert rule_ids(report) == ["DET001"]


def test_det002_value_aliased_monotonic_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "clock = time.perf_counter\n"
        "t0 = clock()\n"
    ))
    assert "DET002" not in rule_ids(report)


def test_det_alias_shadowed_by_parameter_silent(tmp_path):
    # a parameter named like the alias has caller-side provenance
    report = lint_source(tmp_path, (
        "import time\n"
        "clock = time.time\n"
        "def elapsed(clock):\n"
        "    return clock()\n"
    ))
    assert "DET002" not in rule_ids(report)


def test_det003_sorted_iteration_silent(tmp_path):
    report = lint_source(tmp_path, (
        "for x in sorted(set([1, 2])):\n"
        "    print(x)\n"
        "order = sorted({'a', 'b'})\n"
        "ok = 3 in {1, 2, 3}\n"  # membership tests are order-free
    ))
    assert "DET003" not in rule_ids(report)


# ----------------------------------------------------------------------
# HOOK: observer conformance
# ----------------------------------------------------------------------
_DISPATCH = (
    "class Component:\n"
    "    def __init__(self):\n"
    "        self.observer = None\n"
    "    def work(self, entry):\n"
    "        if self.observer is not None:\n"
    "            self.observer.on_fill(entry)\n"
    "    def drain(self, ev):\n"
    "        obs = self.observer\n"
    "        if obs is not None:\n"
    "            obs.on_deliver(ev)\n"
    "            hook = getattr(obs, 'on_return', None)\n"
    "            if hook is not None:\n"
    "                hook(ev)\n"
)


def test_hook001_misspelled_hook_fires(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fil(self, entry):\n"  # typo: silently never fires
        "        pass\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "HOOK001"]
    assert len(findings) == 1
    assert "on_fil" in findings[0].message


def test_hook001_matching_hooks_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        pass\n"
        "    def on_return(self, ev):\n"  # getattr-dispatched
        "        pass\n"
    ))
    assert "HOOK001" not in rule_ids(report)


def test_hook001_self_callback_slots_exempt(tmp_path):
    # on_finished-style callback slots invoked on self are not observer hooks
    report = lint_source(tmp_path, _DISPATCH, (
        "class Proc:\n"
        "    def on_finished(self):\n"
        "        pass\n"
        "    def run(self):\n"
        "        self.on_finished()\n"
    ))
    assert "HOOK001" not in rule_ids(report)


def test_hook001_silent_without_any_dispatch_sites(tmp_path):
    # linting a lone observer module: the vocabulary is unknowable
    report = lint_source(tmp_path, (
        "class Watcher:\n"
        "    def on_anything(self, x):\n"
        "        pass\n"
    ))
    assert "HOOK001" not in rule_ids(report)


def test_hook002_arity_mismatch_fires(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fill(self, entry, extra):\n"  # sites pass 1 arg
        "        pass\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "HOOK002"]
    assert len(findings) == 1
    assert "passes 1" in findings[0].message


def test_hook002_compatible_signatures_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class A:\n"
        "    def on_fill(self, entry):\n"
        "        pass\n"
        "class B:\n"
        "    def on_fill(self, *args):\n"  # varargs accept anything
        "        pass\n"
        "class C:\n"
        "    def on_fill(self, entry, extra=None):\n"  # default absorbs
        "        pass\n"
    ))
    assert "HOOK002" not in rule_ids(report)


def test_hook_rules_know_real_dispatch_vocabulary(tmp_path):
    """Observer classes against the real src/repro dispatch sites."""
    bad = tmp_path / "bad_observer.py"
    bad.write_text(
        "class MyObserver:\n"
        "    def on_warp_instr(self, warp):\n"      # real hook, 1 arg: ok
        "        pass\n"
        "    def on_warp_instrs(self, warp):\n"     # typo
        "        pass\n"
        "    def on_consume(self, a, b, c):\n"      # real sites pass 2
        "        pass\n"
    )
    pkg = Path(repro.__file__).parent
    report = lint_paths([pkg, bad])
    mine = [f for f in report.unsuppressed if f.path == str(bad)]
    assert sorted(f.rule for f in mine) == ["HOOK001", "HOOK002"]


# ----------------------------------------------------------------------
# STAT: stats discipline
# ----------------------------------------------------------------------
def test_stat001_mixed_inc_set_fires(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self):\n"
        "        self.stats.inc('dram.rows')\n"
    ), (
        "class B:\n"
        "    def g(self):\n"
        "        self.stats.set('dram.rows', 5)\n"  # gauge vs counter
    ))
    findings = [f for f in report.unsuppressed if f.rule == "STAT001"]
    assert len(findings) == 1
    assert "dram.rows" in findings[0].message


def test_stat001_consistent_verbs_silent(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self):\n"
        "        self.stats.inc('hits')\n"
        "        self.stats.inc('hits', 2)\n"
        "        self.stats.set('final_hz', 7e8)\n"
        "        self.stats.set('final_hz', 6e8)\n"
    ))
    assert "STAT001" not in rule_ids(report)


def test_stat002_dynamic_key_fires(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self, name):\n"
        "        self.stats.inc(f'dram.{name}')\n"
        "        self.stats.set('prefix' + name, 1)\n"
    ))
    assert rule_ids(report).count("STAT002") == 2


def test_stat002_literal_keys_and_non_stats_receivers_silent(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self, key):\n"
        "        self.stats.inc('hits')\n"
        "        self.config.set(key, 1)\n"  # not a stats registry
    ))
    assert "STAT002" not in rule_ids(report)


# ----------------------------------------------------------------------
# PICK: pickle/multiprocess safety
# ----------------------------------------------------------------------
def test_pick001_lambda_into_run_batch_fires(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "def sweep(specs):\n"
        "    return run_batch(specs, key=lambda s: s.arch)\n"
    ))
    assert "PICK001" in rule_ids(report)


def test_pick001_local_function_into_pool_fires(tmp_path):
    report = lint_source(tmp_path, (
        "def sweep(pool, items):\n"
        "    def worker(item):\n"
        "        return item * 2\n"
        "    return list(pool.imap_unordered(worker, items))\n"
    ))
    assert "PICK001" in rule_ids(report)


def test_pick001_parent_side_progress_callback_exempt(tmp_path):
    # progress= and cache= are documented parent-side-only
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "def sweep(specs):\n"
        "    return run_batch(specs, workers=2, progress=lambda ev: print(ev))\n"
    ))
    assert "PICK001" not in rule_ids(report)


def test_pick001_module_level_worker_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def worker(item):\n"
        "    return item * 2\n"
        "def sweep(pool, items):\n"
        "    return list(pool.imap_unordered(worker, items))\n"
    ))
    assert "PICK001" not in rule_ids(report)


def test_pick002_global_rebinding_fires(tmp_path):
    report = lint_source(tmp_path, (
        "COUNT = 0\n"
        "def worker(item):\n"
        "    global COUNT\n"
        "    COUNT += 1\n"
        "    return item\n"
    ))
    assert "PICK002" in rule_ids(report)


def test_pick002_parameter_passing_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def worker(item, memo):\n"
        "    memo[item] = item * 2\n"
        "    return memo[item]\n"
    ))
    assert "PICK002" not in rule_ids(report)


# ----------------------------------------------------------------------
# PURE: event-handler purity
# ----------------------------------------------------------------------
def test_pure001_hook_mutating_component_fires(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        entry.filled = True\n"          # direct write
        "    def on_deliver(self, ev):\n"
        "        args = ev.args\n"
        "        args[0] = None\n"               # write through alias
    ))
    assert rule_ids(report).count("PURE001") == 2


def test_pure001_shadow_state_on_self_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "class Watcher:\n"
        "    def __init__(self):\n"
        "        self.shadow = {}\n"
        "        self.count = 0\n"
        "    def on_fill(self, entry):\n"
        "        self.count += 1\n"
        "        self.shadow[entry.row] = list(entry.consumed)\n"
        "        sh = self.shadow[entry.row]\n"
        "        sh[0] += 1\n"                   # copy, not the component
    ))
    assert "PURE001" not in rule_ids(report)


# ----------------------------------------------------------------------
# API: execution-options discipline
# ----------------------------------------------------------------------
def test_api001_flat_exec_flags_fire(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.spec import RunSpec\n"
        "a = RunSpec('millipede', 'count', sanitize=True)\n"
        "b = RunSpec('ssmc', 'kmeans', n_records=512,\n"
        "            trace=True, backend='vector')\n"
        "import repro.sim.spec as spec_mod\n"
        "c = spec_mod.RunSpec('gpgpu', 'pca', validate=False)\n"
    ))
    assert rule_ids(report).count("API001") == 3


def test_api001_options_construction_silent(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.options import ExecOptions\n"
        "from repro.sim.spec import RunSpec\n"
        "a = RunSpec('millipede', 'count',\n"
        "            options=ExecOptions(sanitize=True, backend='vector'))\n"
        "b = RunSpec('ssmc', 'kmeans', n_records=512, seed=3)\n"
    ))
    assert "API001" not in rule_ids(report)


def test_api001_resolves_aliased_runspec(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.spec import RunSpec as RS\n"
        "a = RS('millipede', 'count', sanitize=True)\n"
    ))
    assert rule_ids(report) == ["API001"]


# ----------------------------------------------------------------------
# project layer: ModuleFlow provenance + cross-module resolution
# ----------------------------------------------------------------------
def _module(tmp_path: Path, source: str, name: str = "mod_a.py") -> ModuleInfo:
    p = tmp_path / name
    p.write_text(source)
    return ModuleInfo(p, str(p), source)


def test_flow_call_target_through_value_alias(tmp_path):
    m = _module(tmp_path, (
        "import time\n"
        "clock = time.time\n"
        "t = clock()\n"
    ))
    call = next(n for n in ast.walk(m.tree) if isinstance(n, ast.Call))
    assert m.flow.call_target(call) == "time.time"


def test_flow_parameter_shadows_module_alias(tmp_path):
    m = _module(tmp_path, (
        "import time\n"
        "clock = time.time\n"
        "def f(clock):\n"
        "    return clock()\n"
    ))
    call = next(n for n in ast.walk(m.tree) if isinstance(n, ast.Call))
    assert m.flow.call_target(call) is None


def test_flow_origin_kinds(tmp_path):
    m = _module(tmp_path, (
        "from repro.sim.store import FingerprintStore\n"
        "store = FingerprintStore('runs')\n"
        "copy = store\n"
        "out = copy\n"
        "n = 3\n"
    ))
    names = {n.id: n for n in ast.walk(m.tree)
             if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}
    origin = m.flow.origin(names["copy"])
    assert origin.kind == "call"
    assert origin.path == "repro.sim.store.FingerprintStore"
    assert origin.is_call_to("repro.sim.store.FingerprintStore")
    # rebuild a Load use of ``n`` via the binding table instead
    binding = m.flow.binding_of("n", m.tree.body[-1])
    assert m.flow.origin(binding.value).kind == "const"


def test_project_resolves_calls_across_modules(tmp_path):
    helper = _module(tmp_path, (
        "def scrub(entry):\n"
        "    entry.filled = False\n"
    ), name="helpers_mod.py")
    user = _module(tmp_path, (
        "from helpers_mod import scrub as clean\n"
        "def go(entry):\n"
        "    clean(entry)\n"
    ), name="user_mod.py")
    project = Project([helper, user])
    assert "helpers_mod.scrub" in project.functions
    call = next(n for n in ast.walk(user.tree) if isinstance(n, ast.Call))
    sym = project.called_function(user, call)
    assert sym is not None and sym.canonical == "helpers_mod.scrub"
    assert sym.params == ["entry"]


def test_pure001_sees_through_module_level_helper(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "def scrub(entry):\n"
        "    entry.filled = False\n"
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        scrub(entry)\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "PURE001"]
    assert len(findings) == 1
    assert "scrub" in findings[0].message


def test_pure001_sees_through_cross_module_helper(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "def scrub(entry):\n"
        "    entry.filled = False\n"
    ), (
        "from fixture_1 import scrub\n"
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        scrub(entry)\n"
    ))
    assert rule_ids(report).count("PURE001") == 1


def test_pure001_read_only_helper_silent(tmp_path):
    report = lint_source(tmp_path, _DISPATCH, (
        "def peek(entry):\n"
        "    return entry.row\n"
        "class Watcher:\n"
        "    def on_fill(self, entry):\n"
        "        peek(entry)\n"
    ))
    assert "PURE001" not in rule_ids(report)


def test_pick001_sees_through_wrapper_forwarding(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "def sweep(specs, key=None):\n"
        "    return run_batch(specs, key=key)\n"
        "def main(specs):\n"
        "    return sweep(specs, key=lambda s: s.arch)\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "PICK001"]
    assert len(findings) == 1
    assert "through" in findings[0].message


def test_pick001_wrapper_parent_side_kwarg_silent(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "def sweep(specs, progress=None):\n"
        "    return run_batch(specs, progress=progress)\n"
        "def main(specs):\n"
        "    return sweep(specs, progress=lambda ev: None)\n"
    ))
    assert "PICK001" not in rule_ids(report)


def test_pick001_aliased_run_batch_import(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch as rb\n"
        "def sweep(specs):\n"
        "    return rb(specs, key=lambda s: s.arch)\n"
    ))
    assert "PICK001" in rule_ids(report)


def test_stat002_resolves_stats_alias(tmp_path):
    report = lint_source(tmp_path, (
        "class A:\n"
        "    def f(self, name):\n"
        "        st = self.stats\n"
        "        st.inc(f'dram.{name}')\n"
    ))
    assert rule_ids(report) == ["STAT002"]


# ----------------------------------------------------------------------
# FS: filesystem crash-safety
# ----------------------------------------------------------------------
def test_fs001_direct_shared_write_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import json\n"
        "def publish(index_path, payload):\n"
        "    index_path.write_text(json.dumps(payload))\n"
    ))
    assert rule_ids(report) == ["FS001"]


def test_fs001_json_dump_into_shared_handle_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import json\n"
        "def publish(manifest_path, payload):\n"
        "    with manifest_path.open('w') as fh:\n"
        "        json.dump(payload, fh)\n"
    ))
    assert rule_ids(report) == ["FS001"]


def test_fs_rules_silent_on_atomic_publish_idiom(tmp_path):
    # the sanctioned discipline: unique temp, flush+fsync, os.replace
    report = lint_source(tmp_path, (
        "import os\n"
        "import uuid\n"
        "def publish(index_path, text):\n"
        "    tmp = index_path.with_name(\n"
        "        f'{index_path.name}.tmp-{uuid.uuid4().hex}')\n"
        "    with tmp.open('w') as fh:\n"
        "        fh.write(text)\n"
        "        fh.flush()\n"
        "        os.fsync(fh.fileno())\n"
        "    os.replace(tmp, index_path)\n"
    ))
    assert not [r for r in rule_ids(report) if r.startswith("FS")]


def test_fs001_private_path_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def save(report_path, text):\n"
        "    report_path.write_text(text)\n"
    ))
    assert "FS001" not in rule_ids(report)


def test_fs002_replace_without_fsync_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import os\n"
        "def publish(tmp, live_path, text):\n"
        "    tmp.write_text(text)\n"
        "    os.replace(tmp, live_path)\n"
    ))
    assert rule_ids(report) == ["FS002"]


def test_fs003_constant_temp_name_fires(tmp_path):
    report = lint_source(tmp_path, (
        "def stage(store_dir, text):\n"
        "    staged = store_dir / 'index.json.tmp'\n"
        "    staged.write_text(text)\n"
    ), select=["FS003"])
    assert rule_ids(report) == ["FS003"]


def test_fs003_unique_temp_name_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import os\n"
        "def stage(store_dir, text):\n"
        "    staged = store_dir / f'index.json.tmp-{os.getpid()}'\n"
        "    staged.write_text(text)\n"
    ), select=["FS003"])
    assert rule_ids(report) == []


def test_fs004_exists_then_write_fires(tmp_path):
    report = lint_source(tmp_path, (
        "def ensure(manifest_path, text):\n"
        "    if not manifest_path.exists():\n"
        "        manifest_path.write_text(text)\n"
    ), select=["FS004"])
    assert rule_ids(report) == ["FS004"]


def test_fs004_private_path_and_other_target_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def ensure(cache_path, text):\n"
        "    if not cache_path.exists():\n"
        "        cache_path.write_text(text)\n"
    ), (
        "def rotate(manifest_path, backup_path, text):\n"
        "    if manifest_path.exists():\n"
        "        backup_path.write_text(text)\n"  # different path: no race
    ), select=["FS004"])
    assert rule_ids(report) == []


# ----------------------------------------------------------------------
# IPC: cross-process discipline
# ----------------------------------------------------------------------
def test_ipc001_store_into_worker_args_fires(tmp_path):
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "from repro.sim.store import FingerprintStore\n"
        "def sweep(specs, root):\n"
        "    store = FingerprintStore(root)\n"
        "    return run_batch(specs, workers=2, store=store)\n"
    ))
    findings = [f for f in report.unsuppressed if f.rule == "IPC001"]
    assert len(findings) == 1
    assert "FingerprintStore" in findings[0].message


def test_ipc001_open_handle_into_pool_fires(tmp_path):
    report = lint_source(tmp_path, (
        "def fanout(pool, path):\n"
        "    fh = open(path, 'w')\n"
        "    return pool.apply_async(process, (fh,))\n"
    ))
    assert "IPC001" in rule_ids(report)


def test_ipc001_parent_side_cache_kwarg_silent(tmp_path):
    # cache= is documented parent-side-only: the store stays home
    report = lint_source(tmp_path, (
        "from repro.sim.campaign import run_batch\n"
        "from repro.sim.store import FingerprintStore\n"
        "def sweep(specs, root):\n"
        "    store = FingerprintStore(root)\n"
        "    return run_batch(specs, workers=2, cache=store)\n"
    ))
    assert "IPC001" not in rule_ids(report)


def test_ipc002_monotonic_in_lease_function_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "def claim_expiry(secs):\n"
        "    return time.monotonic() + secs\n"
    ))
    assert rule_ids(report) == ["IPC002"]


def test_ipc002_monotonic_into_lease_statement_fires(tmp_path):
    # lease vocabulary on the assignment target, not the function name
    report = lint_source(tmp_path, (
        "import time\n"
        "def renew(secs):\n"
        "    expires = time.monotonic() + secs\n"
        "    return expires\n"
    ))
    assert rule_ids(report) == ["IPC002"]


def test_ipc002_polling_deadline_silent(tmp_path):
    # the correct single-process timeout idiom must not be flagged
    report = lint_source(tmp_path, (
        "import time\n"
        "def wait_for(path):\n"
        "    deadline = time.monotonic() + 5.0\n"
        "    while time.monotonic() < deadline:\n"
        "        if path.exists():\n"
        "            return True\n"
        "    return False\n"
    ))
    assert "IPC002" not in rule_ids(report)


def test_ipc003_claim_publish_without_readback_fires(tmp_path):
    report = lint_source(tmp_path, (
        "def try_claim(claim_path, payload):\n"
        "    claim_path.write_text(payload)\n"
        "    return True\n"
    ), select=["IPC003"])
    assert rule_ids(report) == ["IPC003"]


def test_ipc003_publish_then_readback_silent(tmp_path):
    report = lint_source(tmp_path, (
        "def try_claim(claim_path, payload, me):\n"
        "    claim_path.write_text(payload)\n"
        "    return read_claim(claim_path) == me\n"
        "def read_claim(claim_path):\n"
        "    return claim_path.read_text()\n"
    ), select=["IPC003"])
    assert rule_ids(report) == []


# ----------------------------------------------------------------------
# NUM: NumPy determinism
# ----------------------------------------------------------------------
def test_num001_unpinned_int_reduction_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "data = np.array([1, 2, 3])\n"
        "total = np.sum(data)\n"
        "big = np.sum(np.arange(10))\n"
    ))
    assert rule_ids(report).count("NUM001") == 2


def test_num001_pinned_or_float_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "data = np.array([1, 2, 3], dtype=np.int64)\n"
        "total = np.sum(data)\n"
        "floats = np.array([1.0, 2.0])\n"
        "t2 = np.sum(floats)\n"
        "t3 = np.sum(np.arange(10), dtype=np.int64)\n"
    ))
    assert "NUM001" not in rule_ids(report)


def test_num002_sum_over_set_fires(tmp_path):
    report = lint_source(tmp_path, (
        "vals = {0.5, 1.5}\n"
        "total = sum(vals)\n"
        "t2 = sum({1.0, 2.0})\n"
    ))
    assert rule_ids(report).count("NUM002") == 2


def test_num002_ordered_operands_silent(tmp_path):
    report = lint_source(tmp_path, (
        "vals = {0.5, 1.5}\n"
        "total = sum(sorted(vals))\n"
        "t2 = sum([1.0, 2.0])\n"
        "d = {'a': 1.0, 'b': 2.0}\n"
        "t3 = sum(d.values())\n"  # dicts iterate in insertion order
    ))
    assert "NUM002" not in rule_ids(report)


def test_num003_empty_read_before_write_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "def f(n):\n"
        "    acc = np.empty(n)\n"
        "    s = float(acc[0])\n"
        "    acc[0] = 1.0\n"
        "    return s\n"
    ))
    assert rule_ids(report) == ["NUM003"]


def test_num003_write_before_read_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "def g(n):\n"
        "    acc = np.empty(n)\n"
        "    acc.fill(0.0)\n"
        "    return acc[0]\n"
        "def h(n):\n"
        "    out = np.empty(n)\n"
        "    for i in range(n):\n"
        "        out[i] = i\n"
        "    return out.sum()\n"
    ))
    assert "NUM003" not in rule_ids(report)


def test_num004_default_argsort_fires(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "def rank(keys):\n"
        "    a = np.argsort(keys)\n"
        "    b = keys.argsort()\n"
        "    return a, b\n"
    ))
    assert rule_ids(report).count("NUM004") == 2


def test_num004_stable_kinds_and_lexsort_silent(tmp_path):
    report = lint_source(tmp_path, (
        "import numpy as np\n"
        "def rank(keys, a, b):\n"
        "    x = np.argsort(keys, kind='stable')\n"
        "    y = keys.argsort(kind='mergesort')\n"
        "    z = np.lexsort((a, b))\n"
        "    return x, y, z\n"
    ))
    assert "NUM004" not in rule_ids(report)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_same_line_suppression(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "t = time.time()  # repro-lint: disable=DET002\n"
    ))
    assert report.ok
    assert len(report.findings) == 1 and report.findings[0].suppressed


def test_standalone_comment_suppresses_next_line(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "# repro-lint: disable=DET002\n"
        "t = time.time()\n"
    ))
    assert report.ok and report.findings[0].suppressed


def test_disable_all_and_wrong_rule(tmp_path):
    report = lint_source(tmp_path, (
        "import time\n"
        "a = time.time()  # repro-lint: disable=all\n"
        "b = time.time()  # repro-lint: disable=DET001\n"  # wrong id
    ))
    assert [f.suppressed for f in report.findings] == [True, False]
    assert not report.ok


# ----------------------------------------------------------------------
# the self-run: the package must hold itself to these rules
# ----------------------------------------------------------------------
def test_self_run_on_repro_package_is_clean():
    pkg = Path(repro.__file__).parent
    report = lint_paths([pkg])
    assert report.errors == []
    assert report.unsuppressed == [], "\n".join(
        f.text() for f in report.unsuppressed)
    # the suppressions that do exist are deliberate and documented
    assert all(f.suppressed for f in report.findings)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")

    assert lint_main([str(good)]) == 0
    assert lint_main([str(bad)]) == 1
    assert lint_main([str(tmp_path / "missing.py")]) == 2
    assert lint_main(["--select", "NOPE1", str(good)]) == 2
    capsys.readouterr()

    assert lint_main(["--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1 and not payload["ok"]
    assert payload["summary"] == {"DET002": 1}
    assert payload["findings"][0]["rule"] == "DET002"


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rule_classes():
        assert rule_id in out


def test_cli_select_and_ignore(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert lint_main(["--select", "DET001", str(bad)]) == 0
    assert lint_main(["--ignore", "DET002", str(bad)]) == 0
    assert lint_main(["--select", "DET002", str(bad)]) == 1


def test_cli_reports_syntax_errors(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert lint_main([str(broken)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_tools_cli_lint_subcommand(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert tools_main(["lint", str(good)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert tools_main(["lint", "--json", str(bad)]) == 1
    assert json.loads(capsys.readouterr().out)["summary"] == {"DET002": 1}


# ----------------------------------------------------------------------
# baselines: record once, fail only on NEW findings, ratchet down
# ----------------------------------------------------------------------
def test_cli_baseline_demotes_known_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    baseline = tmp_path / "baseline.json"

    assert lint_main(["--baseline", str(baseline), "--update-baseline",
                      str(bad)]) == 0
    recorded = json.loads(baseline.read_text())
    assert recorded["schema"] == 1
    assert recorded["counts"] == {f"DET002:{bad}": 1}
    capsys.readouterr()

    # the recorded finding no longer fails the run
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # a NEW finding in the same file still fails, and is the one shown
    bad.write_text("import time\nt = time.time()\nu = time.time_ns()\n")
    assert lint_main(["--baseline", str(baseline), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "time_ns" in out and "1 baselined" in out


def test_cli_baseline_json_counts(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert lint_main(["--baseline", str(baseline), "--update-baseline",
                      str(bad)]) == 0
    capsys.readouterr()
    assert lint_main(["--json", "--baseline", str(baseline), str(bad)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] and payload["baselined"] == 1
    assert payload["findings"][0]["baselined"] is True


def test_cli_baseline_error_paths(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    # --update-baseline without --baseline is a usage error
    assert lint_main(["--update-baseline", str(good)]) == 2
    # unreadable baseline files are reported, not silently ignored
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert lint_main(["--baseline", str(broken), str(good)]) == 2
    wrong_schema = tmp_path / "wrong.json"
    wrong_schema.write_text(json.dumps({"schema": 99, "counts": {}}))
    assert lint_main(["--baseline", str(wrong_schema), str(good)]) == 2
    # a missing baseline file is an empty baseline (everything is new)
    capsys.readouterr()
    missing = tmp_path / "missing.json"
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert lint_main(["--baseline", str(missing), str(bad)]) == 1


def test_tools_cli_forwards_baseline_flags(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert tools_main(["lint", "--baseline", str(baseline),
                       "--update-baseline", str(bad)]) == 0
    capsys.readouterr()
    assert tools_main(["lint", "--baseline", str(baseline), str(bad)]) == 0


# ----------------------------------------------------------------------
# docs coupling: the catalog and the suppression register stay honest
# ----------------------------------------------------------------------
_TREE_DIRS = [_REPO / "src" / "repro", _REPO / "tests",
              _REPO / "benchmarks", _REPO / "examples"]


@pytest.fixture(scope="module")
def tree_report():
    """One lint run over the whole project tree, shared by the
    self-run and register tests."""
    return lint_paths([d for d in _TREE_DIRS if d.exists()])


def test_every_rule_documented_in_linting_md():
    doc = (_REPO / "docs" / "linting.md").read_text()
    for rule_id in all_rule_classes():
        assert rule_id in doc, (
            f"{rule_id} is registered but missing from docs/linting.md")


def test_every_suppression_registered_in_linting_md(tree_report):
    """The suppression ratchet: each inline suppression must have a
    justification line (file + rule id) in the docs register, so adding
    one silently is a test failure, not a shrug."""
    doc_lines = (_REPO / "docs" / "linting.md").read_text().splitlines()
    suppressed = [f for f in tree_report.findings if f.suppressed]
    assert suppressed, "expected the documented suppressions to exist"
    for f in suppressed:
        rel = Path(f.path).resolve().relative_to(_REPO).as_posix()
        assert any(rel in line and f.rule in line for line in doc_lines), (
            f"suppressed {f.rule} at {rel}:{f.line} has no justification "
            "entry in the docs/linting.md suppression register")


def test_self_run_on_project_tree_is_clean(tree_report):
    """src/repro, tests/, benchmarks/, and examples/ all hold themselves
    to the full rule set (modulo registered suppressions)."""
    assert tree_report.errors == []
    assert tree_report.unsuppressed == [], "\n".join(
        f.text() for f in tree_report.unsuppressed)
