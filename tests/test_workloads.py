"""Unit tests for the workload framework and all nine kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.workloads import WORKLOADS, get_workload, record_loop, workload_names
from repro.workloads.base import compare_results, thread_record_indices

ALL_NAMES = list(WORKLOADS)


class TestRegistry:
    def test_eight_paper_benchmarks(self):
        assert workload_names() == [
            "count", "sample", "variance", "nbayes",
            "classify", "kmeans", "pca", "gda",
        ]

    def test_varwork_registered_but_not_in_paper_suite(self):
        assert "varwork" in WORKLOADS
        assert "varwork" not in workload_names()

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")


class TestStateBudget:
    """Every workload's per-thread state must fit all architectures'
    per-thread partitions (4 KB local / 4 contexts = 256 words; 128 KB
    shared / 128 threads = 256 words)."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_state_fits_256_words(self, name):
        wl = get_workload(name)
        assert wl.state_words <= 256, f"{name} state {wl.state_words} words"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_initial_state_matches_declaration(self, name):
        wl = get_workload(name)
        init = wl.initial_state()
        if init is not None:
            assert len(init) == wl.state_words


class TestKernels:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_kernel_assembles(self, name):
        wl = get_workload(name)
        built = wl.build(n_threads=16, n_records=512)
        assert isinstance(built.program, Program)
        assert built.program.code_bytes <= 4096, "kernel exceeds the 4 KB I-cache"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_kernel_reads_every_field_exactly_once(self, name):
        """Row-density invariant: per record, the kernel must issue exactly
        one LDG per field (static check: LDG count == n_fields... the
        varwork loop body has none inside the loop)."""
        wl = get_workload(name)
        built = wl.build(n_threads=16, n_records=512)
        ldg = sum(1 for i in built.program.instrs if i.op == Op.LDG)
        assert ldg == wl.n_fields

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_kernel_has_no_global_stores(self, name):
        wl = get_workload(name)
        built = wl.build(n_threads=16, n_records=512)
        assert all(i.op != Op.STG for i in built.program.instrs)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_local_addresses_within_declared_state(self, name):
        """Static bound: immediate offsets of local accesses never exceed
        the declared state size (register parts are checked at runtime)."""
        wl = get_workload(name)
        built = wl.build(n_threads=16, n_records=512)
        for ins in built.program.instrs:
            if ins.op in (Op.LDL, Op.STL):
                assert ins.imm < wl.state_words


class TestBuild:
    def test_pads_to_whole_blocks(self):
        built = get_workload("count").build(n_threads=16, n_records=700)
        assert built.n_records == 1024  # padded to 512-record blocks

    def test_block_must_divide_by_threads(self):
        with pytest.raises(ValueError, match="divisible"):
            get_workload("count").build(n_threads=96, n_records=512)

    def test_thread_args_complete(self):
        built = get_workload("nbayes").build(n_threads=16, n_records=512)
        assert len(built.thread_args) == 16
        for tid, args in enumerate(built.thread_args):
            assert args[1] == tid
            assert args[2] == 16

    def test_deterministic_given_seed(self):
        a = get_workload("kmeans").build(16, 512, seed=7)
        b = get_workload("kmeans").build(16, 512, seed=7)
        assert np.array_equal(a.memory_image, b.memory_image)

    def test_different_seeds_differ(self):
        a = get_workload("count").build(16, 512, seed=1)
        b = get_workload("count").build(16, 512, seed=2)
        assert not np.array_equal(a.memory_image, b.memory_image)

    def test_layout_roundtrip_through_image(self):
        wl = get_workload("nbayes")
        built = wl.build(16, 512, seed=3)
        rng = np.random.default_rng(3)
        fields = wl.make_fields(built.n_records, rng)
        unpacked = built.layout.unpack(built.memory_image)
        for f, arr in enumerate(fields):
            assert np.array_equal(unpacked[f], arr)


class TestRecordLoop:
    def test_chunked_and_interleaved_partition_records(self):
        n, B, T = 2048, 512, 16
        for traversal in ("chunked", "interleaved"):
            seen = np.zeros(n, dtype=int)
            for t in range(T):
                idx = thread_record_indices(t, T, n, B, traversal)
                seen[idx] += 1
            assert np.all(seen == 1), f"{traversal} does not partition records"

    @given(st.sampled_from(["chunked", "interleaved"]),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_indices_sorted_in_processing_order(self, traversal, tid):
        idx = thread_record_indices(tid, 16, 1024, 512, traversal)
        assert np.all(np.diff(idx) > 0)

    def test_barrier_emitted_when_requested(self):
        src = record_loop("    nop", 1, 512, 16, record_barrier=True)
        assert "bar" in src
        src2 = record_loop("    nop", 1, 512, 16, record_barrier=False)
        assert "\n    bar\n" not in src2

    def test_unknown_traversal_rejected(self):
        with pytest.raises(ValueError, match="traversal"):
            record_loop("    nop", 1, 512, 16, traversal="zigzag")


class TestCompareResults:
    def test_integer_mismatch_raises(self):
        with pytest.raises(AssertionError, match="integer mismatch"):
            compare_results(
                {"a": np.array([1, 2])}, {"a": np.array([1, 3])}
            )

    def test_float_tolerance(self):
        compare_results(
            {"a": np.array([1.0 + 1e-12])}, {"a": np.array([1.0])}
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(AssertionError, match="shape"):
            compare_results({"a": np.zeros(2)}, {"a": np.zeros(3)})

    def test_key_mismatch_raises(self):
        with pytest.raises(AssertionError, match="keys"):
            compare_results({"a": np.zeros(2)}, {"b": np.zeros(2)})


class TestGoldenModels:
    """Spot-check golden models against straightforward recomputation."""

    def test_count_golden(self):
        wl = get_workload("count")
        rng = np.random.default_rng(0)
        fields = wl.make_fields(1024, rng)
        g = wl.golden_result(fields, 16)
        assert g["counts"].sum() + g["invalid"] == 1024

    def test_variance_finalize(self):
        from repro.workloads.variance import VarianceWorkload

        counts = np.array([4])
        sums = np.array([10.0])
        sumsqs = np.array([30.0])
        var = VarianceWorkload.finalize(counts, sums, sumsqs)
        assert var[0] == pytest.approx(30 / 4 - 2.5**2)

    def test_kmeans_finalize(self):
        from repro.workloads.kmeans import KmeansWorkload

        counts = np.array([2, 0])
        sums = np.array([[4.0, 6.0], [0.0, 0.0]])
        cents = KmeansWorkload.finalize(counts, sums)
        assert np.allclose(cents[0], [2.0, 3.0])
        assert np.allclose(cents[1], [0.0, 0.0])

    def test_pca_finalize_matches_numpy_cov(self):
        from repro.workloads.pca import PcaWorkload

        rng = np.random.default_rng(1)
        pts = rng.normal(size=(200, 4))
        sums = pts.sum(axis=0)
        tri = (pts.T @ pts)[np.triu_indices(4)]
        cov = PcaWorkload.finalize(sums, tri, len(pts), 4)
        expected = np.cov(pts.T, bias=True)
        assert np.allclose(cov, expected)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_gda_class_counts_partition(self, seed):
        wl = get_workload("gda")
        rng = np.random.default_rng(seed)
        fields = wl.make_fields(512, rng)
        g = wl.golden_result(fields, 16)
        assert g["class_count"].sum() == 512
