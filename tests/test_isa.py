"""Unit tests for the ISA: assembler, CFG analysis, interpreter."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AssemblyError,
    MemAccess,
    Op,
    Program,
    ThreadContext,
    assemble,
    branch_taken,
    step_one,
)
from repro.isa.cfg import immediate_postdominators, leader_pcs


def run_to_halt(source: str, args: dict[int, float] | None = None,
                memory: dict[int, float] | None = None, max_steps: int = 100_000):
    """Interpret a program to completion, servicing memory inline.

    Returns (ctx, local_store) where local_store maps addr -> value."""
    prog = Program.from_source(source)
    ctx = ThreadContext(0)
    if args:
        ctx.set_args(args)
    local: dict[int, float] = {}
    memory = memory or {}
    for _ in range(max_steps):
        if ctx.halted:
            return ctx, local
        acc = step_one(ctx, prog.instrs[ctx.pc])
        if acc is None:
            continue
        if acc.is_store:
            local[acc.addr] = acc.value
        elif acc.is_global:
            ctx.commit_load(acc.rd, memory.get(acc.addr, 0.0))
        else:
            ctx.commit_load(acc.rd, local.get(acc.addr, 0.0))
    raise AssertionError("program did not halt")


class TestAssembler:
    def test_labels_and_branches_resolve(self):
        prog = assemble("top:\n  j bottom\nbottom:\n  halt")
        assert prog[0].target == 1

    def test_forward_and_backward_labels(self):
        src = "j fwd\nfwd:\n beqz r1, back\nback: halt"
        prog = assemble(src)
        assert prog[0].target == 1
        assert prog[1].target == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a:\nnop\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("j nowhere\nhalt")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblyError, match="register"):
            assemble("add r1, r2, r99")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError, match="empty"):
            assemble("# nothing\n")

    def test_immediates(self):
        prog = assemble("li r1, -42\nli r2, 2.5\nli r3, 0x10\nhalt")
        assert prog[0].imm == -42
        assert prog[1].imm == 2.5
        assert prog[2].imm == 16

    def test_semicolon_statements(self):
        prog = assemble("li r1, 1; li r2, 2; halt")
        assert len(prog) == 3

    def test_comments_stripped(self):
        prog = assemble("li r1, 1  # set r1\nhalt")
        assert len(prog) == 2


class TestCfg:
    def test_leaders(self):
        prog = assemble("""
            li r1, 0
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        assert leader_pcs(prog) == [0, 1, 3]

    def test_if_else_reconvergence(self):
        src = """
            beqz r1, else_part
            li r2, 1
            j join
        else_part:
            li r2, 2
        join:
            halt
        """
        prog = Program.from_source(src)
        # the branch reconverges at `join` (pc 4)
        assert prog[0].reconv == 4

    def test_loop_branch_reconverges_after_loop(self):
        src = """
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """
        prog = Program.from_source(src)
        assert prog[1].reconv == 2  # the halt

    def test_nested_if_reconvergence(self):
        src = """
            beqz r1, outer_else
            beqz r2, inner_else
            li r3, 1
            j inner_join
        inner_else:
            li r3, 2
        inner_join:
            j outer_join
        outer_else:
            li r3, 3
        outer_join:
            halt
        """
        prog = Program.from_source(src)
        assert prog[0].reconv == 7  # outer_join
        assert prog[1].reconv == 5  # inner_join

    def test_postdominators_include_exit_sentinel(self):
        prog = assemble("nop\nhalt")
        ipdom = immediate_postdominators(prog)
        assert ipdom[0] in (1, 2)


class TestInterpreter:
    def test_arithmetic(self):
        ctx, _ = run_to_halt("""
            li r1, 7
            li r2, 3
            add r3, r1, r2
            sub r4, r1, r2
            mul r5, r1, r2
            idiv r6, r1, r2
            rem r7, r1, r2
            halt
        """)
        assert ctx.regs[3:8] == [10, 4, 21, 2, 1]

    def test_float_ops(self):
        ctx, _ = run_to_halt("""
            li r1, 2.0
            sqrt r2, r1
            li r3, 7
            li r4, 2
            div r5, r3, r4
            trunc r6, r5
            halt
        """)
        assert ctx.regs[2] == pytest.approx(math.sqrt(2))
        assert ctx.regs[5] == pytest.approx(3.5)
        assert ctx.regs[6] == 3

    def test_r0_hardwired_zero(self):
        ctx, _ = run_to_halt("li r0, 99\nadd r1, r0, r0\nhalt")
        assert ctx.regs[0] == 0
        assert ctx.regs[1] == 0

    def test_comparisons(self):
        ctx, _ = run_to_halt("""
            li r1, 3
            li r2, 5
            slt r3, r1, r2
            sle r4, r2, r2
            seq r5, r1, r2
            sne r6, r1, r2
            slti r7, r1, 2
            halt
        """)
        assert ctx.regs[3:8] == [1, 1, 0, 1, 0]

    def test_bitwise(self):
        ctx, _ = run_to_halt("""
            li r1, 12
            li r2, 10
            and r3, r1, r2
            or r4, r1, r2
            xor r5, r1, r2
            li r6, 2
            sll r7, r1, r6
            srl r8, r1, r6
            andi r9, r1, 4
            halt
        """)
        assert ctx.regs[3:6] == [8, 14, 6]
        assert ctx.regs[7] == 48
        assert ctx.regs[8] == 3
        assert ctx.regs[9] == 4

    def test_min_max_abs_neg(self):
        ctx, _ = run_to_halt("""
            li r1, -3
            li r2, 5
            min r3, r1, r2
            max r4, r1, r2
            abs r5, r1
            neg r6, r2
            halt
        """)
        assert ctx.regs[3:7] == [-3, 5, 3, -5]

    def test_loop_counts(self):
        ctx, _ = run_to_halt("""
            li r1, 0
            li r2, 10
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        assert ctx.regs[1] == 10
        assert ctx.branches == 10
        assert ctx.taken_branches == 9

    def test_memory_access_descriptors(self):
        prog = Program.from_source("li r1, 100\nldg r2, r1, 5\nstl r1, r1, -4\nhalt")
        ctx = ThreadContext(0)
        assert step_one(ctx, prog.instrs[0]) is None
        acc = step_one(ctx, prog.instrs[1])
        assert isinstance(acc, MemAccess)
        assert (acc.addr, acc.rd, acc.is_global, acc.is_store) == (105, 2, True, False)
        ctx.commit_load(acc.rd, 7.5)
        assert ctx.regs[2] == 7.5
        acc = step_one(ctx, prog.instrs[2])
        assert (acc.addr, acc.value, acc.is_store, acc.is_global) == (96, 100, True, False)

    def test_bar_surfaces_to_core(self):
        prog = Program.from_source("bar\nhalt")
        ctx = ThreadContext(0)
        acc = step_one(ctx, prog.instrs[0])
        assert acc is not None and acc.op == int(Op.BAR)

    def test_branch_taken_requires_branch(self):
        prog = Program.from_source("nop\nhalt")
        with pytest.raises(ValueError):
            branch_taken(ThreadContext(0), prog.instrs[0])

    def test_instruction_count(self):
        ctx, _ = run_to_halt("li r1, 1\nnop\nhalt")
        assert ctx.instr_count == 3

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    def test_add_matches_python(self, a, b):
        ctx, _ = run_to_halt("add r3, r1, r2\nhalt", args={1: a, 2: b})
        assert ctx.regs[3] == a + b

    @given(st.integers(min_value=0, max_value=50))
    def test_loop_trip_count_property(self, n):
        ctx, _ = run_to_halt("""
            li r3, 0
        loop:
            bge r3, r1, done
            addi r3, r3, 1
            j loop
        done:
            halt
        """, args={1: n})
        assert ctx.regs[3] == n
