"""Sanitizer tests: clean runs stay clean and identical, and every
invariant class fires under its paired fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ARCHITECTURES, run
from repro.config import SystemConfig
from repro.dram.controller import MemoryController
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.sanitize import InvariantViolation, SimSanitizer
from repro.sanitize.inject import FaultInjector
from repro.sim.spec import RunSpec

N = 256


def same_result(a, b) -> bool:
    """Full result equality: timing, counters, and golden reductions."""
    return (
        a.finish_ps == b.finish_ps
        and a.stats == b.stats
        and a.collected.keys() == b.collected.keys()
        and sorted(a.reduced) == sorted(b.reduced)
        and all(np.array_equal(a.reduced[k], b.reduced[k]) for k in a.reduced)
    )


# ----------------------------------------------------------------------
# clean runs: zero violations, bit-identical results
# ----------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("arch", list(ARCHITECTURES))
    def test_sanitized_equals_unsanitized(self, arch):
        a = run(arch, "variance", n_records=N, sanitize=True)
        b = run(arch, "variance", n_records=N, sanitize=False)
        assert same_result(a, b)

    def test_clean_run_exercises_invariants(self):
        captured = {}

        def probe(proc, engine, sanitizer):
            captured["san"] = sanitizer

        run("millipede", "count", n_records=N, sanitize=True, probe=probe)
        checks = captured["san"].report()["checks"]
        for inv in ("time-monotonicity", "dram-timing", "dram-window",
                    "df-consistency", "pft-retrigger", "pb-capacity"):
            assert checks.get(inv, 0) > 0, f"{inv} never evaluated"

    def test_simt_and_barrier_and_dfs_paths_covered(self):
        caps = {}

        def grab(name):
            def probe(proc, engine, sanitizer):
                caps[name] = sanitizer
            return probe

        run("gpgpu", "count", n_records=N, sanitize=True, probe=grab("simt"))
        run("millipede-bar", "count", n_records=N, sanitize=True,
            probe=grab("bar"))
        run("millipede-rm", "count", n_records=N, sanitize=True,
            probe=grab("rm"))
        assert caps["simt"].report()["checks"].get("simt-dropped-pop", 0) > 0
        assert caps["bar"].report()["checks"].get(
            "barrier-incomplete-generation", 0) > 0
        # the rm clock checker is attached even if no adjustment happened
        assert "clock.millipede" in caps["rm"].report()["components"]

    def test_spec_roundtrip_carries_sanitize(self):
        # flat-flag shim round-trip is the subject; see docs/linting.md
        spec = RunSpec("millipede", "count",  # repro-lint: disable=API001
                       n_records=N, sanitize=True)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        # sanitize is part of identity: cached results are kept separate
        assert spec.content_hash() != spec.replace(sanitize=False).content_hash()
        # old serialized specs (no sanitize key) still deserialize
        legacy = spec.to_dict()
        del legacy["sanitize"]
        assert RunSpec.from_dict(legacy).sanitize is False


# ----------------------------------------------------------------------
# fault injection: every invariant class fires
# ----------------------------------------------------------------------
def expect_violation(arch, workload, invariants, arm, n_records=N):
    """Run with a fault armed by ``arm(inj, proc, engine)``; the paired
    invariant must fire and the fault must actually have been injected."""
    inj = FaultInjector()

    def probe(proc, engine, sanitizer):
        arm(inj, proc, engine)

    with pytest.raises(InvariantViolation) as exc:
        run(arch, workload, n_records=n_records, sanitize=True, probe=probe)
    assert exc.value.invariant in invariants
    assert inj.injected, "fault never armed/injected"
    return exc.value


class TestFaultInjection:
    def test_skip_df_caught(self):
        v = expect_violation(
            "millipede", "count", {"df-consistency", "df-head-evict"},
            lambda inj, proc, eng: inj.skip_df(proc.prefetch_buffer))
        assert v.component.startswith("mem.")

    def test_reordered_dram_command_caught(self):
        expect_violation(
            "millipede", "count", {"dram-timing"},
            lambda inj, proc, eng: inj.reorder_dram_command(proc.mc))

    def test_dropped_reconvergence_pop_caught(self):
        expect_violation(
            "gpgpu", "count", {"simt-dropped-pop"},
            lambda inj, proc, eng: inj.drop_reconv_pop(proc))

    def test_stuck_clock_caught_with_rate_matching(self):
        v = expect_violation(
            "millipede-rm", "count", {"dfs-range"},
            lambda inj, proc, eng: inj.stuck_clock(eng, proc.clock))
        assert "MHz" in str(v)

    def test_clock_change_without_controller_caught(self):
        expect_violation(
            "millipede", "count", {"dfs-unexpected-change"},
            lambda inj, proc, eng: inj.stuck_clock(eng, proc.clock,
                                                   freq_hz=650e6))

    def test_missed_barrier_caught(self):
        v = expect_violation(
            "millipede-bar", "count", {"barrier-incomplete-generation"},
            lambda inj, proc, eng: inj.drop_barrier_arrival(proc.barrier))
        assert "deadlock" in str(v)

    def test_pft_retrigger_caught(self):
        expect_violation(
            "millipede", "count", {"pft-retrigger"},
            lambda inj, proc, eng: inj.rearm_pft(proc.prefetch_buffer))

    def test_violation_carries_snapshot(self):
        v = expect_violation(
            "millipede", "count", {"df-consistency", "df-head-evict"},
            lambda inj, proc, eng: inj.skip_df(proc.prefetch_buffer))
        assert v.time_ps > 0
        assert v.snapshot["time_ps"] == v.time_ps
        assert "recent_events" in v.snapshot
        assert v.snapshot["checks"].get("time-monotonicity", 0) > 0
        assert "occupancy" in v.snapshot[v.component]


# ----------------------------------------------------------------------
# experiment-level acceptance: sanitized figures are the same figures
# ----------------------------------------------------------------------
class TestExperimentEquality:
    def test_fig3_rows_unchanged_under_sanitizer(self):
        from repro.experiments import fig3

        a = fig3.run_experiment(n_records=N, cache=None, sanitize=True)
        b = fig3.run_experiment(n_records=N, cache=None, sanitize=False)
        assert a.rows == b.rows

    def test_table4_rows_unchanged_under_sanitizer(self):
        from repro.experiments import table4

        a = table4.run_experiment(n_records=N, cache=None, sanitize=True)
        b = table4.run_experiment(n_records=N, cache=None, sanitize=False)
        assert a.rows == b.rows


# ----------------------------------------------------------------------
# engine-level checks (micro harnesses)
# ----------------------------------------------------------------------
class TestEngineChecks:
    def test_monotonicity_violation(self):
        eng = Engine()
        san = SimSanitizer()
        san.attach_engine(eng)
        eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        FaultInjector().corrupt_event_time(eng)
        with pytest.raises(InvariantViolation) as exc:
            eng.run()
        assert exc.value.invariant == "time-monotonicity"

    def test_livelock_watchdog(self):
        eng = Engine()
        san = SimSanitizer(watchdog_events=500)
        san.attach_engine(eng)
        FaultInjector().spin_livelock(eng)
        with pytest.raises(InvariantViolation) as exc:
            eng.run()
        assert exc.value.invariant == "livelock"
        assert exc.value.snapshot["recent_events"]  # diagnostic trace

    def test_watchdog_tolerates_bursts_below_horizon(self):
        eng = Engine()
        san = SimSanitizer(watchdog_events=500)
        san.attach_engine(eng)
        for _ in range(400):
            eng.schedule(100, lambda: None)
        eng.run()  # 400 same-time events < horizon: fine

    def test_two_sanitizers_compose(self):
        # the observer slot is a fan-out chain now (repro.engine.observer),
        # so a second sanitizer attaches alongside instead of being refused
        eng = Engine()
        a, b = SimSanitizer(), SimSanitizer()
        a.attach_engine(eng)
        b.attach_engine(eng)
        eng.schedule(10, lambda: None)
        eng.run()
        assert a.checks["time-monotonicity"] == 1
        assert b.checks["time-monotonicity"] == 1

    def test_sanitizer_composes_with_tracer(self):
        from repro.trace import SimTracer

        eng = Engine()
        san = SimSanitizer()
        tr = SimTracer()
        san.attach_engine(eng)
        tr.attach_engine(eng)
        eng.schedule(10, lambda: None)
        eng.run()
        assert san.checks["time-monotonicity"] == 1
        assert tr.result().host_profile  # both observed the same event


# ----------------------------------------------------------------------
# DRAM micro harness: deterministic timing-invariant coverage
# ----------------------------------------------------------------------
class TestDramChecker:
    def make(self):
        eng = Engine()
        san = SimSanitizer()
        san.attach_engine(eng)
        mc = MemoryController(eng, SystemConfig().dram, Stats())
        san.attach_controller(mc)
        return eng, mc, san

    def test_clean_traffic_passes(self):
        eng, mc, san = self.make()
        done = []
        for i in range(16):
            mc.access(i * 64, 16, callback=lambda r: done.append(r))
        eng.run()
        san.finalize()
        assert len(done) == 16
        assert san.checks["dram-timing"] > 0

    def test_early_cas_caught(self):
        eng, mc, san = self.make()
        inj = FaultInjector()
        mc.access(0, 16)
        mc.access(4096, 16)
        inj.reorder_dram_command(mc)
        with pytest.raises(InvariantViolation) as exc:
            eng.run()
        assert exc.value.invariant == "dram-timing"
        assert inj.injected

    def test_unfinished_transfer_caught_at_finalize(self):
        eng, mc, san = self.make()
        mc.access(0, 16)
        # run only until the grant, not the completion
        while eng.step():
            if san._checkers[1].in_flight:
                break
        with pytest.raises(InvariantViolation) as exc:
            san.finalize()
        assert exc.value.invariant == "dram-phantom-completion"
