"""Unit tests for Millipede's flow-controlled row prefetch buffer -
the paper's central mechanism (section IV-C, Fig. 2)."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.dram.controller import MemoryController
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.mem.prefetch_buffer import PBAccessResult, PrefetchBuffer

ROW_WORDS = 512
N_CORELETS = 8
SLAB = ROW_WORDS // N_CORELETS  # 64 words per corelet per row


def make_pb(flow_control=True, n_entries=4, prefetch_ahead=2, init_depth=2):
    eng = Engine()
    stats = Stats()
    mc = MemoryController(eng, SystemConfig().dram, stats)
    pb = PrefetchBuffer(
        eng, mc, stats,
        n_corelets=N_CORELETS,
        n_entries=n_entries,
        row_words=ROW_WORDS,
        flow_control=flow_control,
        init_depth=init_depth,
        prefetch_ahead=prefetch_ahead,
    )
    return eng, pb, stats


def consume_row(eng, pb, corelet, row, collector):
    """Schedule the corelet's full slab consumption of ``row`` at now."""
    base = row * ROW_WORDS + corelet * SLAB
    for w in range(SLAB):
        eng.schedule(0, pb.demand_access, corelet, base + w, collector)


class TestBasicOperation:
    def test_start_prefetches_initial_rows(self):
        eng, pb, stats = make_pb()
        pb.start(0, 7)
        assert pb.occupancy == 2
        eng.run()
        assert stats["pb.rows_prefetched"] == 2

    def test_hit_after_fill(self):
        eng, pb, stats = make_pb()
        pb.start(0, 7)
        eng.run()  # fills complete
        results = []
        eng.schedule(0, pb.demand_access, 0, 0, lambda t, c: results.append(c))
        eng.run()
        assert results == [PBAccessResult.HIT]

    def test_wait_on_inflight_fill(self):
        eng, pb, stats = make_pb()
        pb.start(0, 7)
        results = []
        # access immediately, before the DRAM fill can have completed
        eng.schedule(0, pb.demand_access, 0, 0, lambda t, c: results.append(c))
        eng.run()
        assert results == [PBAccessResult.FILL_WAIT]
        assert stats["pb.fill_waits"] == 1

    def test_first_touch_triggers_ahead(self):
        eng, pb, stats = make_pb(prefetch_ahead=2)
        pb.start(0, 7)
        eng.run()
        got = []
        eng.schedule(0, pb.demand_access, 0, 0, lambda t, c: got.append(c))
        eng.run()
        # first touch of row 0 pulled the tail to row 0+ahead
        assert pb.tail_row == 2

    def test_df_counter_saturates_on_full_consumption(self):
        eng, pb, stats = make_pb()
        pb.start(0, 7)
        eng.run()
        got = []
        for c in range(N_CORELETS):
            consume_row(eng, pb, c, 0, lambda t, code: got.append(code))
        eng.run()
        assert pb.entries[0].row != 0 or pb.entries[0].df_count == N_CORELETS

    def test_overconsumption_detected(self):
        """Reading a word twice violates the consume-exactly-once slab
        invariant and must be caught loudly."""
        eng, pb, stats = make_pb()
        pb.start(0, 7)
        eng.run()
        for _ in range(SLAB + 1):
            eng.schedule(0, pb.demand_access, 0, 0, lambda t, c: None)
        with pytest.raises(AssertionError, match="exactly once"):
            eng.run()

    def test_out_of_range_rejected(self):
        eng, pb, stats = make_pb()
        pb.start(0, 3)
        with pytest.raises(IndexError):
            eng.schedule(0, pb.demand_access, 0, 10 * ROW_WORDS, lambda t, c: None)
            eng.run()


class TestFlowControl:
    def _fill_and_consume_rows(self, eng, pb, corelets, rows, collector):
        for row in rows:
            for c in corelets:
                consume_row(eng, pb, c, row, collector)
            eng.run()

    def test_leader_defers_when_head_unconsumed(self):
        """A leading corelet that outruns the queue must wait (alloc_wait /
        flow_defer), not evict the head - Fig. 2's timeline."""
        eng, pb, stats = make_pb(flow_control=True, n_entries=4, prefetch_ahead=3)
        pb.start(0, 15)
        eng.run()
        results = []
        # corelet 0 storms ahead through many rows; corelets 1..7 never run
        for row in range(5):
            consume_row(eng, pb, 0, row, lambda t, c: results.append(c))
            eng.run()
        assert stats["pb.flow_defers"] + stats["pb.alloc_waits"] > 0
        assert stats["pb.premature_evictions"] == 0
        # the head entry is still the unconsumed row 0
        assert pb.head_row == 0

    def test_laggard_unblocks_leader(self):
        eng, pb, stats = make_pb(flow_control=True, n_entries=4, prefetch_ahead=3)
        pb.start(0, 15)
        eng.run()
        done = []
        # leader consumes rows 0..4 (will stall needing allocation)
        for row in range(5):
            consume_row(eng, pb, 0, row, lambda t, c: done.append(("lead", c)))
        eng.run()
        stalled = len([d for d in done])
        # now every laggard consumes rows 0..4: head drains, leader resumes
        for row in range(5):
            for c in range(1, N_CORELETS):
                consume_row(eng, pb, c, row, lambda t, c_: done.append(("lag", c_)))
            eng.run()
        eng.run()
        total = len(done)
        assert total == 5 * N_CORELETS * SLAB  # every access completed
        assert stats["pb.premature_evictions"] == 0

    def test_no_flow_control_evicts_prematurely(self):
        eng, pb, stats = make_pb(flow_control=False, n_entries=4, prefetch_ahead=3)
        pb.start(0, 15)
        eng.run()
        results = []
        for row in range(6):
            consume_row(eng, pb, 0, row, lambda t, c: results.append(c))
            eng.run()
        assert stats["pb.premature_evictions"] > 0
        # laggard now misses on the evicted rows and goes to DRAM
        lag = []
        consume_row(eng, pb, 1, 0, lambda t, c: lag.append(c))
        eng.run()
        assert PBAccessResult.EVICTED_MISS in lag
        assert stats["pb.evicted_misses"] > 0

    def test_flow_control_never_loses_accesses(self):
        """End-to-end drain: all corelets consume all rows in a staggered
        order; every access must complete exactly once."""
        eng, pb, stats = make_pb(flow_control=True, n_entries=4, prefetch_ahead=2)
        n_rows = 10
        pb.start(0, n_rows - 1)
        count = [0]
        for row in range(n_rows):
            for c in range(N_CORELETS):
                consume_row(eng, pb, c, row, lambda t, c_: count.__setitem__(0, count[0] + 1))
            eng.run()
        assert count[0] == n_rows * N_CORELETS * SLAB


class TestRateMatchSignals:
    def test_empty_signal_on_fill_wait(self):
        eng, pb, stats = make_pb()
        empty = []
        pb.on_empty_wait = lambda: empty.append(1)
        pb.start(0, 7)
        eng.schedule(0, pb.demand_access, 0, 0, lambda t, c: None)
        eng.run()
        assert empty

    def test_full_signal_when_memory_ahead(self):
        eng, pb, stats = make_pb()
        full = []
        pb.on_full_defer = lambda: full.append(1)
        pb.start(0, 7)
        eng.run()  # all fills complete: memory comfortably ahead
        eng.schedule(0, pb.demand_access, 0, 0, lambda t, c: None)
        eng.run()
        assert full


# ----------------------------------------------------------------------
# property-based verification: random interleavings never violate the
# buffer's invariants (sanitizer attached throughout)
# ----------------------------------------------------------------------
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sanitize import SimSanitizer  # noqa: E402

N_ROWS = 6
_WORDS_PER_CORELET = N_ROWS * SLAB


def drive_random(flow_control: bool, delays: list[int], lag_corelet: int,
                 lag_extra: int):
    """Every corelet streams its slabs of rows ``0..N_ROWS-1`` in order
    (the paper's premise); the cross-corelet interleaving is induced by
    the hypothesis-drawn per-demand delays, with one designated laggard.
    Returns the shared Stats after a fully sanitized drain."""
    eng, pb, stats = make_pb(flow_control=flow_control, n_entries=3,
                             prefetch_ahead=2, init_depth=2)
    san = SimSanitizer()
    san.attach_engine(eng)
    san.attach_controller(pb.mc)
    san.attach_prefetch_buffer(pb, private_slabs=True)
    pb.start(0, N_ROWS - 1)

    done = [0] * N_CORELETS

    def make_corelet(c: int):
        def issue():
            row, off = divmod(done[c], SLAB)
            addr = row * ROW_WORDS + c * SLAB + off
            pb.demand_access(c, addr, on_ready)

        def on_ready(t, code):
            done[c] += 1
            if done[c] < _WORDS_PER_CORELET:
                d = delays[(c + done[c]) % len(delays)]
                if c == lag_corelet:
                    d += lag_extra
                eng.schedule(d, issue)

        return issue

    for c in range(N_CORELETS):
        eng.schedule(delays[c % len(delays)], make_corelet(c))
    eng.run()
    san.finalize()
    assert done == [_WORDS_PER_CORELET] * N_CORELETS, "accesses lost"
    return stats


_DELAYS = st.lists(st.integers(min_value=0, max_value=2000), min_size=1,
                   max_size=16)


class TestPropertyRandomInterleavings:
    @settings(max_examples=20, deadline=None)
    @given(delays=_DELAYS,
           lag_corelet=st.integers(0, N_CORELETS - 1),
           lag_extra=st.integers(0, 20_000))
    def test_flow_control_invariants_hold(self, delays, lag_corelet, lag_extra):
        stats = drive_random(True, delays, lag_corelet, lag_extra)
        # flow control's guarantee: the head is never evicted unsaturated
        assert stats["pb.premature_evictions"] == 0
        assert stats["pb.evicted_misses"] == 0

    @settings(max_examples=20, deadline=None)
    @given(delays=_DELAYS,
           lag_corelet=st.integers(0, N_CORELETS - 1),
           lag_extra=st.integers(0, 20_000))
    def test_no_flow_control_invariants_hold(self, delays, lag_corelet, lag_extra):
        # without flow control laggards may miss to DRAM, but the DF/PFT
        # bookkeeping and queue sanity must still hold (sanitizer raises
        # otherwise) and no access may be lost
        drive_random(False, delays, lag_corelet, lag_extra)
