"""Cross-architecture integration tests.

The strongest check in the suite: every architecture model must produce
the *bit-identical reduced result* for every workload (the simulator moves
real data through real structures), while their timing/energy differ in
the directions the paper establishes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.sim.driver import ARCHITECTURES, run, run_many
from repro.workloads.registry import workload_names

SMALL = 2048
FAST_ARCHES = ["gpgpu", "vws", "vws-row", "ssmc", "millipede",
               "millipede-nofc", "millipede-rm", "millipede-bar", "multicore"]


class TestEveryArchValidates:
    @pytest.mark.parametrize("arch", FAST_ARCHES)
    def test_count_validates(self, arch):
        r = run(arch, "count", n_records=SMALL)
        assert r.validated
        assert r.finish_ps > 0

    @pytest.mark.parametrize("workload", workload_names())
    def test_millipede_validates_all_workloads(self, workload):
        assert run("millipede", workload, n_records=SMALL).validated

    @pytest.mark.parametrize("workload", ["count", "nbayes", "gda"])
    def test_gpgpu_validates(self, workload):
        assert run("gpgpu", workload, n_records=SMALL).validated

    @pytest.mark.parametrize("workload", ["count", "nbayes", "gda"])
    def test_ssmc_validates(self, workload):
        assert run("ssmc", workload, n_records=SMALL).validated

    @pytest.mark.parametrize("workload", ["sample", "kmeans"])
    def test_vws_row_validates(self, workload):
        assert run("vws-row", workload, n_records=SMALL).validated

    @pytest.mark.parametrize("workload", ["variance", "pca"])
    def test_multicore_validates(self, workload):
        assert run("multicore", workload, n_records=SMALL).validated


class TestCrossArchEquivalence:
    def test_identical_reductions_across_architectures(self):
        """Same dataset, same kernel semantics -> same integer counters,
        whatever the memory system."""
        results = run_many(["gpgpu", "ssmc", "millipede"], "nbayes", n_records=SMALL)
        base = results["millipede"].reduced
        for arch in ("gpgpu", "ssmc"):
            got = results[arch].reduced
            assert np.array_equal(got["cprob"], base["cprob"])
            assert np.array_equal(got["class_count"], base["class_count"])

    def test_instruction_counts_agree_across_mimd_archs(self):
        """MIMD models run the identical kernel on the identical data, so
        dynamic instruction counts must match exactly."""
        results = run_many(["ssmc", "millipede"], "count", n_records=SMALL)
        assert (results["ssmc"].collected["instructions"]
                == results["millipede"].collected["instructions"])


class TestArchRegistry:
    def test_all_keys_construct(self):
        assert set(FAST_ARCHES) == set(ARCHITECTURES)

    def test_unknown_arch_raises(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            run("tpu", "count", n_records=SMALL)

    def test_prebuilt_mismatch_rejected(self):
        from repro.workloads.registry import get_workload

        built = get_workload("count").build(n_threads=8, n_records=512)
        with pytest.raises(ValueError, match="prebuilt"):
            run("millipede", "count", built=built)


class TestPaperDirections:
    """Direction checks at test scale (full-size shape checks live in
    benchmarks/)."""

    def test_millipede_beats_gpgpu_on_branchy_benchmark(self):
        results = run_many(["gpgpu", "millipede"], "count", n_records=8192)
        assert (results["millipede"].throughput_words_per_s
                > results["gpgpu"].throughput_words_per_s)

    def test_flow_control_beats_none_under_work_variance(self):
        # tightened buffer so straying spans the queue at test scale
        cfg = SystemConfig().with_millipede(prefetch_entries=4, prefetch_ahead=3)
        results = run_many(["millipede", "millipede-nofc"], "varwork",
                           config=cfg, n_records=8192)
        assert (results["millipede"].throughput_words_per_s
                > results["millipede-nofc"].throughput_words_per_s)

    def test_vws_narrow_width_selected_for_bmla(self):
        from repro.arch.vws import VwsSM
        from repro.config import VwsConfig

        r = run("gpgpu", "count", n_records=SMALL)
        div = r.collected["divergent_branches"] / max(
            r.collected["divergent_branches"] + r.collected["uniform_branches"], 1
        )
        assert VwsSM.select_width(div, VwsConfig()) == 4

    def test_millipede_single_row_activation_per_row(self):
        r = run("millipede", "count", n_records=4096)
        rows = r.input_words / 512
        assert r.stats["dram.activations"] == rows

    def test_multicore_uses_offchip_channel(self):
        r = run("multicore", "count", n_records=SMALL)
        assert r.stats.get("offchip.requests", 0) > 0
        assert r.stats.get("dram.requests", 0) == 0


class TestConfigSweepSafety:
    def test_scaled_system_size_keeps_divisibility(self):
        for n in (16, 32, 64, 128):
            cfg = SystemConfig().scaled_system_size(n)
            assert cfg.core.n_cores == n
            assert 512 % (n * cfg.core.n_threads) == 0 or n * cfg.core.n_threads > 512

    def test_small_config_runs(self, small_config):
        r = run("millipede", "count", config=small_config, n_records=1024)
        assert r.validated
