"""Tests for the analysis module (roofline, bottleneck, convergence)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    RooflineModel,
    analyze_history,
    attribute_bottleneck,
)
from repro.config import SystemConfig
from repro.sim.driver import run


@pytest.fixture(scope="module")
def light_run():
    return run("millipede", "count", n_records=8192)


@pytest.fixture(scope="module")
def heavy_run():
    return run("millipede", "gda", n_records=2048)


class TestRoofline:
    def setup_method(self):
        self.model = RooflineModel(SystemConfig())

    def test_ridge_near_light_benchmarks(self, light_run, heavy_run):
        """The calibration puts the ridge at the light end of the suite:
        count sits at the ridge (borderline), gda far into compute-bound."""
        light = self.model.place(light_run)
        heavy = self.model.place(heavy_run)
        assert light.intensity_insts_per_byte < heavy.intensity_insts_per_byte
        assert light.intensity_insts_per_byte == pytest.approx(
            self.model.ridge_intensity, rel=0.25
        )
        assert heavy.compute_bound
        assert heavy.intensity_insts_per_byte > 3 * self.model.ridge_intensity

    def test_measured_never_exceeds_roof(self, light_run, heavy_run):
        """Accounting sanity: the simulator cannot beat first principles
        by more than rounding."""
        for r in (light_run, heavy_run):
            p = self.model.place(r)
            assert p.efficiency <= 1.05, f"{r.workload} at {p.efficiency:.2f} of roof"

    def test_attainable_min_of_roofs(self):
        m = self.model
        assert m.attainable(1e9) == m.peak_compute
        assert m.attainable(m.ridge_intensity / 2) == pytest.approx(m.peak_compute / 2)
        assert m.attainable(0) == 0.0

    def test_predict_bound(self):
        m = self.model
        assert m.predict_bound(m.ridge_intensity * 2) == "compute"
        assert m.predict_bound(m.ridge_intensity / 2) == "bandwidth"

    def test_multicore_roofline_smaller(self):
        mc = RooflineModel(SystemConfig(), arch="multicore")
        mil = RooflineModel(SystemConfig())
        assert mc.peak_bandwidth < mil.peak_bandwidth

    def test_render(self, light_run):
        out = self.model.render([self.model.place(light_run)])
        assert "count" in out and "ridge" in out


class TestBottleneck:
    def test_light_benchmark_is_bandwidth_bound(self, light_run):
        rep = attribute_bottleneck(light_run)
        assert rep.verdict == "memory-bandwidth-bound"
        assert rep.bus_utilization > 0.75

    def test_heavy_benchmark_is_compute_bound(self, heavy_run):
        rep = attribute_bottleneck(heavy_run)
        assert "compute" in rep.verdict

    def test_millipede_row_streaming_optimal_activations(self, light_run):
        rep = attribute_bottleneck(light_run)
        # one activation per 512-word row = 1.95/kword
        assert rep.activations_per_kword == pytest.approx(1000 / 512, rel=0.05)

    def test_no_traffic_amplification_for_millipede(self, light_run):
        assert attribute_bottleneck(light_run).traffic_amplification == pytest.approx(1.0)

    def test_ssmc_gda_amplification_flagged(self):
        rep = attribute_bottleneck(run("ssmc", "gda", n_records=2048))
        assert rep.traffic_amplification > 1.5
        assert any("traffic" in n for n in rep.notes)

    def test_render(self, light_run):
        out = attribute_bottleneck(light_run).render()
        assert "bus utilization" in out


class TestConvergence:
    def test_synthetic_trajectory(self):
        # 700 -> steps down to ~600 by 10us, then oscillates +/- one step
        hist = [(0, 700e6)]
        f = 700e6
        t = 0
        while f > 600e6:
            t += 1_000_000
            f *= 0.95
            hist.append((t, f))
        for k in range(10):
            t += 1_000_000
            f = f * (1.05 if k % 2 == 0 else 1 / 1.05)
            hist.append((t, f))
        rep = analyze_history(hist, end_ps=t + 50_000_000)
        assert rep.converged_fraction < 0.5
        assert rep.band_steps < 0.10
        assert 550e6 < rep.settled_hz < 700e6

    def test_real_run_history(self):
        r = run("millipede-rm", "count", n_records=8192)
        hist = r.collected["rate_match_history"]
        rep = analyze_history(hist, end_ps=r.finish_ps)
        assert rep.n_adjustments >= 0
        assert rep.settled_hz <= 700e6
        assert "rate-match convergence" in rep.render()

    def test_end_ps_validation(self):
        with pytest.raises(ValueError):
            analyze_history([(0, 700e6)], end_ps=0)
