"""Unit tests for caches, scratchpads, shared memory, and prefetchers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.config import SystemConfig
from repro.dram.controller import MemoryController
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.mem.dcache import SetAssocCache
from repro.mem.local_memory import LocalMemory
from repro.mem.prefetcher import BlockStream, SequentialPrefetcher, core_block_schedule
from repro.mem.shared_memory import BankedSharedMemory


class TestLocalMemory:
    def test_roundtrip_and_counters(self):
        lm = LocalMemory(32)
        lm.write(5, 1.5)
        assert lm.read(5) == 1.5
        assert (lm.reads, lm.writes, lm.accesses) == (1, 1, 2)

    def test_bounds(self):
        lm = LocalMemory(8)
        with pytest.raises(IndexError):
            lm.read(8)
        with pytest.raises(IndexError):
            lm.write(-1, 0)

    def test_snapshot_is_copy(self):
        lm = LocalMemory(4)
        snap = lm.snapshot()
        lm.write(0, 9)
        assert snap[0] == 0


class TestSetAssocCache:
    def test_miss_then_hit(self):
        c = SetAssocCache(1024, 128, 2)
        assert not c.access(0)
        c.insert(0)
        assert c.access(0)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction(self):
        c = SetAssocCache(256, 128, 2)  # 1 set, 2 ways
        c.insert(0)
        c.insert(32)       # second line (block 1)
        c.access(0)        # touch block 0 -> block 1 becomes LRU
        victim = c.insert(64)
        assert victim == 1  # block 1 evicted
        assert c.access(0)
        assert not c.access(32)

    def test_sets_isolate(self):
        c = SetAssocCache(512, 128, 1)  # 4 sets, direct-mapped
        c.insert(0)       # set 0
        c.insert(32)      # set 1
        assert c.contains(0) and c.contains(32)
        c.insert(128)     # block 4 -> set 0, evicts block 0
        assert not c.contains(0)
        assert c.contains(32)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(1000, 128, 3)

    def test_contains_does_not_perturb(self):
        c = SetAssocCache(256, 128, 2)
        c.insert(0)
        before = (c.hits, c.misses)
        c.contains(0)
        assert (c.hits, c.misses) == before

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, blocks):
        c = SetAssocCache(512, 64, 2)
        for b in blocks:
            c.insert(b * 16)
        total = sum(len(s) for s in c._sets)
        assert total <= c.n_sets * c.assoc


class TestBankedSharedMemory:
    def test_conflict_free_distinct_banks(self):
        sm = BankedSharedMemory(128, 32)
        assert sm.conflict_cycles(list(range(32))) == 1

    def test_full_conflict(self):
        sm = BankedSharedMemory(128, 32)
        assert sm.conflict_cycles([0, 32, 64]) == 3

    def test_striped_translation_is_conflict_free(self):
        """The paper's striping: any per-lane addresses are conflict-free
        because lane l's state lives entirely in bank l."""
        sm = BankedSharedMemory(32 * 32, 32)
        for addrs in ([0] * 32, list(range(32)), [(l * 7) % 32 for l in range(32)]):
            phys = [sm.translate(a, lane) for lane, a in enumerate(addrs)]
            assert sm.conflict_cycles(phys) == 1

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=32))
    def test_striping_property(self, addrs):
        """Conflict-freedom holds for *arbitrary* (irregular, data-
        dependent) per-lane state addresses - the paper's section III-E."""
        sm = BankedSharedMemory(31 * 32, 32)
        phys = [sm.translate(a, lane) for lane, a in enumerate(addrs)]
        banks = [p % 32 for p in phys]
        assert len(set(banks)) == len(banks)

    def test_data_roundtrip(self):
        sm = BankedSharedMemory(64, 4)
        sm.write(10, 2.5)
        assert sm.read(10) == 2.5

    def test_bounds(self):
        sm = BankedSharedMemory(64, 4)
        with pytest.raises(IndexError):
            sm.read(64)


def _prefetcher(degree=2, schedule=None, line_bytes=64, cache_bytes=512):
    eng = Engine()
    stats = Stats()
    mc = MemoryController(eng, SystemConfig().dram, stats)
    cache = SetAssocCache(cache_bytes, line_bytes, cache_bytes // line_bytes)
    pf = SequentialPrefetcher(
        eng, mc, cache, BlockStream(0, 1 << 16), stats, "pf",
        degree=degree, schedule=schedule,
    )
    return eng, pf, stats


class TestSequentialPrefetcher:
    def test_demand_miss_then_fill(self):
        eng, pf, stats = _prefetcher()
        ready = []
        eng.schedule(0, pf.demand_access, 0, ready.append)
        eng.run()
        assert len(ready) == 1 and ready[0] > 0
        assert stats["pf.demand_misses"] == 1

    def test_prefetch_makes_next_block_hit(self):
        eng, pf, stats = _prefetcher()
        times = []
        eng.schedule(0, pf.demand_access, 0, times.append)
        eng.run()
        # by now block 1 and 2 were prefetched; a later access hits
        hit = []
        eng.schedule(0, pf.demand_access, 16, hit.append)
        eng.run()
        assert stats["pf.demand_hits"] == 1

    def test_mshr_merges_concurrent_misses(self):
        eng, pf, stats = _prefetcher()
        ready = []
        eng.schedule(0, pf.demand_access, 0, ready.append)
        eng.schedule(0, pf.demand_access, 4, ready.append)  # same block
        eng.run()
        assert len(ready) == 2
        assert stats["pf.mshr_merges"] == 1
        assert stats["dram.requests"] == 1 + stats["pf.prefetches"]

    def test_multi_block_access(self):
        eng, pf, stats = _prefetcher()
        done = []
        eng.schedule(0, lambda: pf.demand_access_multi([0, 16, 17], done.append))
        eng.run()
        assert len(done) == 1  # one callback when all blocks present

    def test_oracle_schedule_prefetches_strided_stream(self):
        # a stream with stride 8 blocks: sequential prefetch would be useless
        schedule = [i * 8 for i in range(16)]
        eng, pf, stats = _prefetcher(degree=2, schedule=schedule, cache_bytes=1024)
        eng.schedule(0, pf.demand_access, 0, lambda t: None)
        eng.run()
        # blocks 8 and 16 (the next schedule entries) were prefetched
        assert pf.cache.contains(8 * 16)
        assert pf.cache.contains(16 * 16)

    def test_oracle_pointer_monotone(self):
        schedule = [0, 8, 16]
        eng, pf, stats = _prefetcher(degree=1, schedule=schedule)
        eng.schedule(0, pf.demand_access, 8 * 16, lambda t: None)
        eng.run()
        eng.schedule(0, pf.demand_access, 0, lambda t: None)  # stale access
        eng.run()
        assert pf._ptr == 1  # did not rewind


class TestCoreBlockSchedule:
    def test_single_field_stride(self):
        sched = core_block_schedule(
            base_word=0, n_fields=1, block_records=512, n_blocks=4,
            core_id=0, n_cores=32, line_words=16,
        )
        # core 0 owns words [0,16) of each row: blocks 0, 32, 64, 96
        assert sched == [0, 32, 64, 96]

    def test_multi_field_visits_each_field_row(self):
        sched = core_block_schedule(
            base_word=0, n_fields=3, block_records=512, n_blocks=1,
            core_id=1, n_cores=32, line_words=16,
        )
        assert sched == [1, 33, 65]  # field rows 0,1,2; core 1 offset 16 words

    def test_wide_span_emits_multiple_lines(self):
        sched = core_block_schedule(
            base_word=0, n_fields=1, block_records=512, n_blocks=1,
            core_id=0, n_cores=8, line_words=16,
        )
        assert sched == [0, 1, 2, 3]  # 64-word span = 4 lines

    def test_schedules_partition_all_blocks(self):
        """Across all cores, schedules cover every input block exactly once
        when spans align to lines."""
        all_blocks = []
        for c in range(32):
            all_blocks += core_block_schedule(
                base_word=0, n_fields=2, block_records=512, n_blocks=2,
                core_id=c, n_cores=32, line_words=16,
            )
        total_lines = 2 * 2 * 512 // 16
        assert sorted(all_blocks) == list(range(total_lines))


class TestSmBlockSchedule:
    def test_single_field_sequential(self):
        from repro.mem.prefetcher import sm_block_schedule

        sched = sm_block_schedule(
            base_word=0, n_fields=1, block_records=512, n_blocks=1,
            n_threads=128, line_words=32,
        )
        # 4 record groups x 128 words = 4 lines each, in order
        assert sched == list(range(16))

    def test_multi_field_record_major(self):
        from repro.mem.prefetcher import sm_block_schedule

        sched = sm_block_schedule(
            base_word=0, n_fields=2, block_records=512, n_blocks=1,
            n_threads=128, line_words=32,
        )
        # group 0: field 0 lines 0..3, field 1 lines 16..19; then group 1...
        assert sched[:8] == [0, 1, 2, 3, 16, 17, 18, 19]
        assert sched[8:12] == [4, 5, 6, 7]

    def test_covers_every_line_once(self):
        from repro.mem.prefetcher import sm_block_schedule

        sched = sm_block_schedule(
            base_word=0, n_fields=3, block_records=512, n_blocks=2,
            n_threads=128, line_words=32,
        )
        assert sorted(sched) == list(range(3 * 2 * 512 // 32))
        assert len(set(sched)) == len(sched)
