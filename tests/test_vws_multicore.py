"""Tests for the VWS variants and the conventional multicore model."""

from __future__ import annotations

import pytest

from repro.arch.vws import VwsRowSM, VwsSM
from repro.config import SystemConfig, VwsConfig
from repro.sim.driver import run, run_many


class TestVws:
    def test_narrow_width_by_default(self):
        r = run("vws", "count", n_records=2048)
        assert r.validated

    def test_select_width_policy(self):
        cfg = VwsConfig()
        assert VwsSM.select_width(0.0, cfg) == 32
        assert VwsSM.select_width(0.04, cfg) == 32
        assert VwsSM.select_width(0.30, cfg) == 4

    @pytest.mark.parametrize("wl", ["count", "sample", "variance", "nbayes"])
    def test_bmla_divergence_always_selects_narrow(self, wl):
        """The paper: 'VWS always chooses 4-wide warps' on BMLAs - verify
        the measured wide-warp divergence rate trips the policy."""
        r = run("gpgpu", wl, n_records=2048)
        total = r.collected["divergent_branches"] + r.collected["uniform_branches"]
        div_rate = r.collected["divergent_branches"] / max(total, 1)
        assert VwsSM.select_width(div_rate, VwsConfig()) == 4

    def test_narrow_warps_diverge_less(self):
        results = run_many(["gpgpu", "vws"], "count", n_records=4096)
        assert (results["vws"].collected["simt_efficiency"]
                >= results["gpgpu"].collected["simt_efficiency"])

    def test_vws_row_uses_prefetch_buffer(self):
        r = run("vws-row", "count", n_records=2048)
        assert r.validated
        assert r.stats.get("pb.rows_prefetched", 0) > 0
        assert "l1d.demand_hits" not in r.stats

    def test_vws_row_improves_row_locality_over_vws(self):
        results = run_many(["vws", "vws-row"], "nbayes", n_records=4096)
        # row-oriented fetch: one activation per row
        rows = results["vws-row"].input_words / 512
        assert results["vws-row"].stats["dram.activations"] == rows
        assert (results["vws"].stats["dram.activations"]
                >= results["vws-row"].stats["dram.activations"])


class TestMulticore:
    def test_validates(self):
        assert run("multicore", "count", n_records=2048).validated

    def test_thread_count_is_32(self):
        cfg = SystemConfig()
        assert cfg.multicore.n_cores * cfg.multicore.n_threads == 32

    def test_much_slower_than_pnm_node(self):
        results = run_many(["multicore"], "count", n_records=2048)
        mill = run("millipede", "count", n_records=2048)
        node = mill.throughput_words_per_s * SystemConfig().n_processors
        assert node > 10 * results["multicore"].throughput_words_per_s

    def test_offchip_energy_dominates(self):
        r = run("multicore", "nbayes", n_records=2048)
        mill = run("millipede", "nbayes", n_records=2048)
        assert (r.energy.dram_j / r.input_words
                > 5 * mill.energy.dram_j / mill.input_words)

    def test_offchip_latency_applied(self):
        """Every off-chip completion is delayed by the pin-crossing
        latency; a single cold access must exceed it."""
        from repro.arch.multicore import OffchipController
        from repro.config import SystemConfig
        from repro.dram.dram import GlobalMemory
        from repro.engine.events import Engine
        from repro.engine.stats import Stats

        eng = Engine()
        cfg = SystemConfig()
        mc = OffchipController(eng, cfg.dram, Stats(), extra_latency_ps=40_000)
        done = []
        mc.access(0, 16, callback=lambda r: done.append(eng.now))
        eng.run()
        assert done[0] >= 40_000

    def test_issue_width_speedup(self):
        """4-issue should beat 1-issue on compute-bound work."""
        wide = run("multicore", "gda", n_records=1024)
        cfg = SystemConfig().with_multicore(issue_width=1)
        narrow = run("multicore", "gda", config=cfg, n_records=1024)
        assert wide.runtime_s < narrow.runtime_s
