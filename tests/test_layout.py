"""Unit + property tests for the data layouts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout.aos import ArrayOfStructsLayout
from repro.layout.interleaved import InterleavedLayout


class TestInterleaved:
    def test_field_major_within_block(self):
        lay = InterleavedLayout(1024, 3, 512)
        # same field, consecutive records: adjacent words
        assert lay.addr(1, 0) - lay.addr(0, 0) == 1
        # same record, consecutive fields: one block-row apart
        assert lay.addr(0, 1) - lay.addr(0, 0) == 512
        # block stride
        assert lay.addr(512, 0) - lay.addr(0, 0) == 3 * 512

    def test_requires_whole_blocks(self):
        with pytest.raises(ValueError, match="divisible"):
            InterleavedLayout(1000, 2, 512)

    def test_addr_bounds(self):
        lay = InterleavedLayout(512, 2, 512)
        with pytest.raises(IndexError):
            lay.addr(512, 0)
        with pytest.raises(IndexError):
            lay.addr(0, 2)

    def test_pack_unpack_roundtrip(self):
        lay = InterleavedLayout(1024, 4, 512)
        rng = np.random.default_rng(0)
        fields = [rng.random(1024) for _ in range(4)]
        image = lay.pack(fields)
        back = lay.unpack(image)
        for a, b in zip(fields, back):
            assert np.array_equal(a, b)

    def test_pack_places_by_addr(self):
        lay = InterleavedLayout(1024, 2, 512)
        fields = [np.arange(1024, dtype=float), np.arange(1024, dtype=float) + 10_000]
        image = lay.pack(fields)
        for r in (0, 5, 511, 512, 1023):
            for f in (0, 1):
                assert image[lay.addr(r, f)] == fields[f][r]

    @given(
        st.integers(min_value=1, max_value=4),   # blocks
        st.integers(min_value=1, max_value=5),   # fields
        st.integers(min_value=1, max_value=64),  # block size
    )
    @settings(max_examples=50, deadline=None)
    def test_addresses_are_a_bijection(self, blocks, fields, bsize):
        lay = InterleavedLayout(blocks * bsize, fields, bsize)
        addrs = {
            lay.addr(r, f)
            for r in range(lay.n_records)
            for f in range(fields)
        }
        assert len(addrs) == lay.total_words
        assert min(addrs) == 0 and max(addrs) == lay.total_words - 1

    def test_base_offset_applies(self):
        lay = InterleavedLayout(512, 1, 512, base=1024)
        assert lay.addr(0, 0) == 1024
        assert lay.end == 1024 + 512


class TestAos:
    def test_record_major(self):
        lay = ArrayOfStructsLayout(10, 4)
        assert lay.addr(2, 3) == 11
        assert lay.addr(3, 0) - lay.addr(2, 0) == 4

    def test_pack_unpack_roundtrip(self):
        lay = ArrayOfStructsLayout(100, 3)
        rng = np.random.default_rng(1)
        fields = [rng.random(100) for _ in range(3)]
        back = lay.unpack(lay.pack(fields))
        for a, b in zip(fields, back):
            assert np.array_equal(a, b)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_bijection(self, n, f):
        lay = ArrayOfStructsLayout(n, f)
        addrs = {lay.addr(r, k) for r in range(n) for k in range(f)}
        assert len(addrs) == n * f


class TestLayoutContrast:
    def test_parallel_same_field_locality(self):
        """The paper's section III-B argument, as a measurable property:
        32 threads reading field 0 of their current records touch 32
        consecutive words interleaved vs a 32*F-word span in AoS."""
        inter = InterleavedLayout(512, 8, 512)
        aos = ArrayOfStructsLayout(512, 8)
        inter_span = [inter.addr(t, 0) for t in range(32)]
        aos_span = [aos.addr(t, 0) for t in range(32)]
        assert max(inter_span) - min(inter_span) == 31
        assert max(aos_span) - min(aos_span) == 31 * 8
