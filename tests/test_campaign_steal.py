"""Work-stealing campaign tests (ISSUE 9): lease claims, straggler and
dead-shard stealing, progress-stream-derived counters, worker-memo
eviction, and store lifecycle hygiene (no leaked descriptors)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.sim import campaign
from repro.sim.campaign import (
    BatchProgress,
    cross,
    dedup_specs,
    plan_campaign,
    run_campaign,
)
from repro.sim.spec import RunSpec
from repro.sim.store import FingerprintStore, canonical_result_blob

from tests.test_store import make_result

N = 256

#: src/ directory for subprocess PYTHONPATH
_SRC = str(Path(repro.__file__).resolve().parents[1])

SPECS = cross(["ssmc", "millipede"], ["count"], n_records=N, seed=0) + \
    cross(["ssmc", "millipede"], ["count"], n_records=N, seed=1)


def _synthetic_run(spec, memo):
    """Drop-in for campaign._run_with_memo: no simulation, stable result."""
    return make_result(spec)


# ----------------------------------------------------------------------
# lease claims
# ----------------------------------------------------------------------
class TestClaims:
    def test_claim_exclusive_until_released(self, tmp_path):
        a, b = FingerprintStore(tmp_path), FingerprintStore(tmp_path)
        fp = "f" * 64
        assert a.try_claim(fp)
        assert a.claim_holder(fp) == a.writer_id
        assert b.claim_holder(fp) == a.writer_id
        assert not b.try_claim(fp)
        # re-claiming one's own lease extends it
        assert a.try_claim(fp)
        a.release_claim(fp)
        assert a.claim_holder(fp) is None
        assert b.try_claim(fp)
        # releasing a claim held by someone else is a no-op
        a.release_claim(fp)
        assert b.claim_holder(fp) == b.writer_id

    def test_claim_refused_for_recorded_fingerprint(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec = RunSpec("ssmc", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        assert not store.try_claim(spec.content_hash())

    def test_expired_lease_is_reclaimable(self, tmp_path):
        a, b = FingerprintStore(tmp_path), FingerprintStore(tmp_path)
        fp = "e" * 64
        assert a.try_claim(fp, lease_s=0.05)
        time.sleep(0.1)
        assert a.claim_holder(fp) is None  # expired
        assert b.try_claim(fp, lease_s=60.0)
        assert b.claim_holder(fp) == b.writer_id

    def test_garbage_claim_file_treated_as_unclaimed(self, tmp_path):
        store = FingerprintStore(tmp_path)
        fp = "g" * 64
        # forging a corrupt claim on purpose; see docs/linting.md
        store.claim_path(fp).write_text(  # repro-lint: disable=FS001
            "not json{{{")
        assert store.claim_holder(fp) is None
        assert store.try_claim(fp)

    def test_clear_stale_claims(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec = RunSpec("ssmc", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        assert store.try_claim("a" * 64, lease_s=0.01)  # will expire
        assert store.try_claim("b" * 64, lease_s=60.0)  # stays live
        # a claim whose record has since landed is satisfied -> stale
        # (forged foreign claim; lease expiry is wall-clock by protocol —
        # see docs/linting.md)
        store.claim_path(spec.content_hash()).write_text(  # repro-lint: disable=FS001
            json.dumps({
                "schema": 1, "fingerprint": spec.content_hash(),
                "writer": "w0-other", "claimed_unix": 0.0,
                "expires_unix": time.time() + 60.0,  # repro-lint: disable=DET002
            }))
        time.sleep(0.05)
        assert store.clear_stale_claims() == 2
        assert store.claim_holder("b" * 64) == store.writer_id


# ----------------------------------------------------------------------
# stealing shards
# ----------------------------------------------------------------------
class TestStealingShards:
    def test_one_stealing_shard_completes_the_campaign(self, tmp_path):
        """Shard 1/3 running alone steals the other slices: the whole
        campaign lands in the store, byte-identical to an unsharded run."""
        shared = tmp_path / "shared"
        report = run_campaign(SPECS, shared, shard=(1, 3), name="steal")
        # a stealing report covers the full campaign, not just the slice
        assert report.shard == (1, 3)
        assert len(report.plan.specs) == len(SPECS)
        assert report.misses == len(SPECS) and report.hits == 0
        # positions 0 and 3 are the 1/3 slice; the other two were stolen
        assert report.stolen == 2
        assert report.missing(SPECS) == []
        assert "stolen" in report.summary()

        solo = run_campaign(SPECS, tmp_path / "solo")
        for a, b in zip(report.gather(SPECS), solo.gather(SPECS)):
            assert canonical_result_blob(a) == canonical_result_blob(b)

        # late shards arrive to a finished campaign: pure hits, no claims
        late = run_campaign(SPECS, shared, shard=(2, 3), name="steal")
        assert late.hits == len(SPECS) and late.misses == 0
        assert late.stolen == 0
        assert list((shared / "claims").glob("*.json")) == []

    def test_live_foreign_lease_is_not_raided(self, tmp_path):
        """A fingerprint under a live foreign lease is left alone (its
        holder is presumed working); once the lease goes away the next
        stealing pass finishes the campaign."""
        blocker = FingerprintStore(tmp_path)
        blocked = SPECS[2]
        assert blocker.try_claim(blocked.content_hash(), lease_s=60.0)

        report = run_campaign(SPECS, tmp_path, steal=True)
        assert report.misses == len(SPECS) - 1
        assert report.missing(SPECS) == [blocked]

        blocker.release_claim(blocked.content_hash())
        again = run_campaign(SPECS, tmp_path, steal=True)
        assert again.misses == 1 and again.hits == len(SPECS) - 1
        assert again.missing(SPECS) == []

    def test_dead_shards_expired_lease_is_stolen(self, tmp_path):
        """A lease whose writer died (expired timestamp) does not block:
        the stealing shard re-claims and simulates the fingerprint."""
        store = FingerprintStore(tmp_path)
        fp = SPECS[0].content_hash()
        # forging a dead writer's claim on purpose; see docs/linting.md
        store.claim_path(fp).write_text(  # repro-lint: disable=FS001,IPC003
            json.dumps({
                "schema": 1, "fingerprint": fp, "writer": "w1-deadbeef",
                "claimed_unix": 0.0, "expires_unix": 1.0,
            }))
        report = run_campaign(SPECS, store, steal=True)
        assert report.misses == len(SPECS)
        assert report.missing(SPECS) == []

    def test_no_steal_restores_static_split(self, tmp_path):
        report = run_campaign(SPECS, tmp_path, shard=(1, 2), steal=False)
        assert len(report.plan.specs) == 2  # the slice, not the campaign
        assert report.misses == 2 and report.stolen == 0
        assert len(report.missing(SPECS)) == 2  # other shard's work owed

    def test_steal_respects_no_resume(self, tmp_path):
        run_campaign(SPECS[:2], tmp_path, steal=True)
        report = run_campaign(SPECS[:2], tmp_path, steal=True, resume=False)
        assert report.hits == 0 and report.misses == 2


# ----------------------------------------------------------------------
# SIGKILL'd shard recovery
# ----------------------------------------------------------------------
_CHILD = """
import sys
from repro.sim.campaign import run_campaign
from repro.sim.spec import RunSpec

specs = [RunSpec(a, "count", n_records=%d, seed=s)
         for s in (0, 1) for a in ("ssmc", "millipede")]
run_campaign(specs, sys.argv[1], workers=1, shard=(1, 2), name="steal",
             lease_s=1.0)
""" % N


class TestDeadShardRecovery:
    def test_sigkilled_shards_work_is_stolen(self, tmp_path):
        """SIGKILL a stealing shard mid-campaign; its leases expire and a
        second shard steals the rest, completing the campaign with
        byte-identical merged results."""
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(store_dir)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            watch = None
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if watch is None and (store_dir / "log").is_dir():
                    watch = FingerprintStore(store_dir)
                if watch is not None:
                    watch.refresh()
                    if len(watch) >= 1:
                        break
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        assert watch is not None, "child shard never produced a record"

        # the killed shard may leave live leases behind; the survivor
        # keeps passing until they expire (lease_s=1.0 in the child)
        deadline = time.monotonic() + 120.0
        report = None
        while time.monotonic() < deadline:
            report = run_campaign(SPECS, store_dir, shard=(2, 2),
                                  name="steal", lease_s=30.0)
            if not report.missing(SPECS):
                break
            time.sleep(0.2)
        assert report is not None and report.missing(SPECS) == []
        assert report.hits >= 1  # the child's flushed records were reused

        fresh = run_campaign(SPECS, tmp_path / "fresh")
        for a, b in zip(report.gather(SPECS), fresh.gather(SPECS)):
            assert canonical_result_blob(a) == canonical_result_blob(b)


# ----------------------------------------------------------------------
# counters derive from the progress stream, not the plan
# ----------------------------------------------------------------------
class TestStreamDerivedCounters:
    def test_racing_writer_mid_campaign_counts_as_hit(self, tmp_path):
        """A record another shard lands *after* planning but *before* the
        spec's wave is served as a hit - the plan-time done-count would
        have called it a miss.  Deterministic stand-in for a racing
        shard: the first progress event writes a later spec's record."""
        racer = FingerprintStore(tmp_path)
        last = SPECS[-1]
        events: list[BatchProgress] = []

        def progress(event: BatchProgress) -> None:
            events.append(event)
            if len(events) == 1:
                racer.put_spec(last, make_result(last))

        plan = plan_campaign(SPECS, tmp_path)
        assert not plan.done  # nothing recorded at plan time
        report = run_campaign(SPECS, tmp_path, steal=True, workers=1,
                              progress=progress)
        assert report.hits == 1 and report.resumed == 1
        assert report.misses == len(SPECS) - 1
        served = [e.spec for e in events if e.cached]
        assert served == [last]
        # the stream's cumulative counters agree with the report
        assert events[-1].done == len(SPECS)
        assert events[-1].hits == report.hits
        assert events[-1].misses == report.misses

    @settings(max_examples=10, deadline=None)
    @given(
        prerecorded=st.sets(st.integers(min_value=0, max_value=3)),
        steal=st.booleans(),
        resume=st.booleans(),
        workers_hint=st.integers(min_value=1, max_value=2),
    )
    def test_prop_counters_match_event_stream(self, prerecorded, steal,
                                              resume, workers_hint):
        """For any pre-recorded subset and any steal/resume combination,
        the report's counters equal what the BatchProgress stream says
        actually happened (simulation stubbed out - pure bookkeeping)."""
        real = campaign._run_with_memo
        campaign._run_with_memo = _synthetic_run
        try:
            with tempfile.TemporaryDirectory() as tmp:
                store = FingerprintStore(tmp)
                for i in prerecorded:
                    store.put_spec(SPECS[i], make_result(SPECS[i]))
                events: list[BatchProgress] = []
                report = run_campaign(
                    SPECS, store, steal=steal, resume=resume, workers=1,
                    progress=events.append)
                total = len(dedup_specs(SPECS))
                assert len(events) == total
                assert [e.done for e in events] == list(range(1, total + 1))
                assert all(e.total == total for e in events)
                assert report.hits == sum(e.cached for e in events)
                assert report.misses == sum(not e.cached for e in events)
                assert report.resumed == report.hits
                assert report.hits + report.misses == total
                expected_hits = len(prerecorded) if resume else 0
                assert report.hits == expected_hits
                assert events[-1].hits == report.hits
                assert events[-1].misses == report.misses
        finally:
            campaign._run_with_memo = real


# ----------------------------------------------------------------------
# worker-memo eviction
# ----------------------------------------------------------------------
class TestMemoEviction:
    def test_memo_evicts_only_the_oldest_build(self, monkeypatch):
        """Hitting _MEMO_LIMIT drops the single oldest BuiltWorkload, not
        the whole memo - the hot newer builds survive by identity."""
        monkeypatch.setattr(campaign, "_MEMO_LIMIT", 2)
        monkeypatch.setattr(campaign, "_execute",
                            lambda spec, wl, built: make_result(spec))
        memo: dict = {}
        s1 = RunSpec("ssmc", "count", n_records=128)
        s2 = RunSpec("ssmc", "count", n_records=192)
        s3 = RunSpec("ssmc", "count", n_records=320)
        campaign._run_with_memo(s1, memo)
        campaign._run_with_memo(s2, memo)
        kept = memo[s2.build_key()]
        assert list(memo) == [s1.build_key(), s2.build_key()]
        campaign._run_with_memo(s3, memo)
        assert list(memo) == [s2.build_key(), s3.build_key()]
        assert memo[s2.build_key()] is kept  # survived, not rebuilt
        # a hit on the survivor does not touch the memo
        campaign._run_with_memo(s2, memo)
        assert list(memo) == [s2.build_key(), s3.build_key()]


# ----------------------------------------------------------------------
# store lifecycle: context manager, one-segment-per-writer, no fd leaks
# ----------------------------------------------------------------------
class TestStoreLifecycle:
    def test_context_manager_closes_then_reopens_same_segment(self, tmp_path):
        spec, other = SPECS[0], SPECS[1]
        with FingerprintStore(tmp_path) as store:
            store.put_spec(spec, make_result(spec))
        assert store._segment_file is None  # closed on exit
        # a later put re-opens the *same* segment: still one file on disk
        store.put_spec(other, make_result(other))
        store.close()
        assert len(store.segments()) == 1
        fresh = FingerprintStore(tmp_path)
        assert fresh.fingerprints() == {
            spec.content_hash(), other.content_hash()}

    def test_campaign_run_leaves_no_open_fds(self, tmp_path):
        """Path-coerced stores are closed by run_campaign/api.run_batch:
        repeated campaigns do not accumulate descriptors."""
        from repro import api

        real = campaign._run_with_memo
        campaign._run_with_memo = _synthetic_run
        try:
            # warm up lazy imports/allocations before counting
            run_campaign(SPECS, tmp_path / "warm")
            before = len(os.listdir("/proc/self/fd"))
            for i in range(5):
                run_campaign(SPECS, tmp_path / f"c{i}")
                run_campaign(SPECS, tmp_path / f"c{i}", shard=(1, 2))
                api.run_batch(SPECS, store=tmp_path / f"b{i}")
            after = len(os.listdir("/proc/self/fd"))
        finally:
            campaign._run_with_memo = real
        assert after == before

    def test_campaign_writes_one_segment_per_store_instance(self, tmp_path):
        run_campaign(SPECS, tmp_path)
        assert len(list((tmp_path / "log").glob("*.jsonl"))) == 1

    def test_borrowed_store_stays_open(self, tmp_path):
        """run_campaign closes stores it created, never one handed in."""
        store = FingerprintStore(tmp_path)
        spec = SPECS[0]
        store.put_spec(spec, make_result(spec))
        assert store._segment_file is not None
        run_campaign([spec], store)
        assert store._segment_file is not None  # untouched
        store.close()
