"""Tests for the run driver, result metrics, and the disk cache."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.sim.cache import ResultCache, config_fingerprint
from repro.sim.driver import run, run_many


@pytest.fixture(scope="module")
def count_result():
    return run("millipede", "count", n_records=2048)


class TestRunResult:
    def test_metrics_consistent(self, count_result):
        r = count_result
        assert r.runtime_s == pytest.approx(r.finish_ps / 1e12)
        assert r.throughput_words_per_s == pytest.approx(r.input_words / r.runtime_s)
        assert r.insts_per_word > 1
        assert 0 < r.branches_per_inst < 1
        assert r.energy_per_word_j > 0
        assert r.energy_delay == pytest.approx(r.energy.total_j * r.runtime_s)

    def test_speedup_over(self, count_result):
        assert count_result.speedup_over(count_result) == pytest.approx(1.0)

    def test_summary_renders(self, count_result):
        s = count_result.summary()
        assert "millipede" in s and "count" in s

    def test_reduced_results_present(self, count_result):
        assert "counts" in count_result.reduced

    def test_validate_false_skips_reduction(self):
        r = run("millipede", "count", n_records=2048, validate=False)
        assert r.reduced == {}
        assert not r.validated


class TestRunMany:
    def test_shares_built_workload(self):
        results = run_many(["ssmc", "millipede"], "count", n_records=2048)
        assert set(results) == {"ssmc", "millipede"}
        # identical data: identical reductions
        assert (results["ssmc"].reduced["invalid"]
                == results["millipede"].reduced["invalid"])

    def test_different_seeds_change_data(self):
        a = run("millipede", "count", n_records=2048, seed=0)
        b = run("millipede", "count", n_records=2048, seed=1)
        assert (a.reduced["counts"] != b.reduced["counts"]).any()

    def test_determinism(self):
        a = run("millipede", "nbayes", n_records=2048)
        b = run("millipede", "nbayes", n_records=2048)
        assert a.finish_ps == b.finish_ps
        assert a.collected["instructions"] == b.collected["instructions"]


class TestResultCache:
    def test_roundtrip(self, tmp_path, count_result):
        cache = ResultCache(tmp_path)
        cfg = SystemConfig()
        cache.put(count_result, 2048, 0, cfg)
        back = cache.get("millipede", "count", 2048, 0, cfg)
        assert back is not None
        assert back.finish_ps == count_result.finish_ps
        assert back.energy.total_j == pytest.approx(count_result.energy.total_j)

    def test_miss_on_different_config(self, tmp_path, count_result):
        cache = ResultCache(tmp_path)
        cache.put(count_result, 2048, 0, SystemConfig())
        other = SystemConfig().with_millipede(prefetch_entries=4)
        assert cache.get("millipede", "count", 2048, 0, other) is None

    def test_clear(self, tmp_path, count_result):
        cache = ResultCache(tmp_path)
        cache.put(count_result, 2048, 0, SystemConfig())
        assert cache.clear() == 1
        assert cache.get("millipede", "count", 2048, 0, SystemConfig()) is None

    def test_fingerprint_sensitive_to_every_field(self):
        a = config_fingerprint(SystemConfig())
        b = config_fingerprint(SystemConfig().with_dram(t_cas=10))
        c = config_fingerprint(SystemConfig().with_millipede(rate_match=True))
        assert len({a, b, c}) == 3

    def test_corrupt_cache_file_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = SystemConfig()
        p = cache._path("millipede", "count", 2048, 0, cfg)
        p.write_text("{not json")
        assert cache.get("millipede", "count", 2048, 0, cfg) is None
