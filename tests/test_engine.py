"""Unit tests for the discrete-event kernel, clocks, and stats."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine.clock import Clock, period_ps
from repro.engine.events import Engine
from repro.engine.stats import Stats


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        out = []
        eng.schedule(300, out.append, "c")
        eng.schedule(100, out.append, "a")
        eng.schedule(200, out.append, "b")
        eng.run()
        assert out == ["a", "b", "c"]
        assert eng.now == 300

    def test_equal_timestamps_fifo(self):
        eng = Engine()
        out = []
        for i in range(10):
            eng.schedule(50, out.append, i)
        eng.run()
        assert out == list(range(10))

    def test_schedule_from_callback(self):
        eng = Engine()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                eng.schedule(10, chain, n + 1)

        eng.schedule(0, chain, 0)
        eng.run()
        assert out == [0, 1, 2, 3]
        assert eng.now == 30

    def test_cancel(self):
        eng = Engine()
        out = []
        ev = eng.schedule(100, out.append, "dead")
        eng.schedule(200, out.append, "alive")
        eng.cancel(ev)
        eng.run()
        assert out == ["alive"]

    def test_pending_counts_live_events(self):
        eng = Engine()
        ev = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        assert eng.pending == 2
        eng.cancel(ev)
        assert eng.pending == 1

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(50, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1, lambda: None)

    def test_run_until(self):
        eng = Engine()
        out = []
        eng.schedule(100, out.append, 1)
        eng.schedule(500, out.append, 2)
        eng.run(until=200)
        assert out == [1]
        assert eng.now == 200
        eng.run()
        assert out == [1, 2]

    def test_peek_time_skips_cancelled(self):
        eng = Engine()
        ev = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        eng.cancel(ev)
        assert eng.peek_time() == 20

    def test_step(self):
        eng = Engine()
        out = []
        eng.schedule(10, out.append, "x")
        assert eng.step() is True
        assert out == ["x"]
        assert eng.step() is False

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
    def test_delivery_order_matches_sorted_times(self, delays):
        eng = Engine()
        fired = []
        for i, d in enumerate(delays):
            eng.schedule(d, lambda i=i, d=d: fired.append((d, i)))
        eng.run()
        assert fired == sorted(fired)  # time-major, FIFO within a timestamp


class TestClock:
    def test_period_rounding(self):
        assert period_ps(1e12) == 1
        assert period_ps(700e6) == 1429  # 1428.57 rounds to 1429

    def test_period_positive_required(self):
        with pytest.raises(ValueError):
            period_ps(0)

    def test_cycle_conversion_roundtrip(self):
        c = Clock(1.2e9)
        assert c.ps_to_cycles(c.cycles_to_ps(17)) == 17

    def test_dfs_changes_period(self):
        c = Clock(700e6)
        p0 = c.period_ps
        c.set_frequency(350e6)
        assert c.period_ps == pytest.approx(2 * p0, rel=0.01)

    def test_charge_cycles_tracks_per_frequency(self):
        c = Clock(700e6)
        c.charge_cycles(100)
        c.set_frequency(350e6)
        c.charge_cycles(50)
        assert c.cycle_log[700e6] == 100
        assert c.cycle_log[350e6] == 50
        assert c.total_cycles == 150


class TestStats:
    def test_inc_and_get(self):
        s = Stats()
        s.inc("a.b")
        s.inc("a.b", 4)
        assert s["a.b"] == 5

    def test_missing_is_zero(self):
        assert Stats()["nope"] == 0.0

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("x", "y") == 0.0

    def test_scoped_prefixes(self):
        s = Stats()
        sc = s.scoped("dram")
        sc.inc("hits", 3)
        assert s["dram.hits"] == 3
        assert sc["hits"] == 3

    def test_with_prefix_filters(self):
        s = Stats()
        s.inc("a.x")
        s.inc("a.y", 2)
        s.inc("b.z")
        assert s.with_prefix("a") == {"a.x": 1, "a.y": 2}

    def test_merge(self):
        a, b = Stats(), Stats()
        a.inc("k", 1)
        b.inc("k", 2)
        b.inc("only_b", 5)
        a.merge(b)
        assert a["k"] == 3 and a["only_b"] == 5


class TestStatsHardening:
    def test_ratio_zero_and_missing_denominator(self):
        s = Stats()
        assert s.ratio("nope", "also_nope") == 0.0
        s.inc("num", 5)
        assert s.ratio("num", "zero_den") == 0.0

    def test_ratio_nonfinite_guard(self):
        s = Stats()
        s.set("nan", float("nan"))
        s.set("inf", float("inf"))
        s.inc("one")
        assert s.ratio("nan", "one") == 0.0
        assert s.ratio("one", "nan") == 0.0
        assert s.ratio("one", "inf") == 0.0
        assert s.ratio("inf", "one") == 0.0

    def test_from_dict_roundtrip(self):
        s = Stats()
        s.inc("a.x", 2.5)
        s.inc("b.y")
        assert Stats.from_dict(s.as_dict()).as_dict() == s.as_dict()

    def test_sorted_dump_order_independent(self):
        a, b = Stats(), Stats()
        a.inc("z", 1.25)
        a.inc("a", 3)
        b.inc("a", 3)
        b.inc("z", 1.25)
        assert a.sorted_dump() == b.sorted_dump()
        assert a.sorted_dump().splitlines()[0].startswith("a ")

    def test_sorted_dump_distinguishes_values(self):
        a, b = Stats(), Stats()
        a.inc("k", 1.0)
        b.inc("k", 1.0 + 1e-12)
        assert a.sorted_dump() != b.sorted_dump()
