"""Unit tests for the discrete-event kernel, clocks, and stats."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine.clock import Clock, period_ps
from repro.engine.events import Engine
from repro.engine.observer import ObserverChain, attach_observer, detach_observer
from repro.engine.stats import Stats


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        out = []
        eng.schedule(300, out.append, "c")
        eng.schedule(100, out.append, "a")
        eng.schedule(200, out.append, "b")
        eng.run()
        assert out == ["a", "b", "c"]
        assert eng.now == 300

    def test_equal_timestamps_fifo(self):
        eng = Engine()
        out = []
        for i in range(10):
            eng.schedule(50, out.append, i)
        eng.run()
        assert out == list(range(10))

    def test_schedule_from_callback(self):
        eng = Engine()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                eng.schedule(10, chain, n + 1)

        eng.schedule(0, chain, 0)
        eng.run()
        assert out == [0, 1, 2, 3]
        assert eng.now == 30

    def test_cancel(self):
        eng = Engine()
        out = []
        ev = eng.schedule(100, out.append, "dead")
        eng.schedule(200, out.append, "alive")
        eng.cancel(ev)
        eng.run()
        assert out == ["alive"]

    def test_pending_counts_live_events(self):
        eng = Engine()
        ev = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        assert eng.pending == 2
        eng.cancel(ev)
        assert eng.pending == 1

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(50, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1, lambda: None)

    def test_run_until(self):
        eng = Engine()
        out = []
        eng.schedule(100, out.append, 1)
        eng.schedule(500, out.append, 2)
        eng.run(until=200)
        assert out == [1]
        assert eng.now == 200
        eng.run()
        assert out == [1, 2]

    def test_run_until_advances_idle_engine(self):
        # regression: an empty heap used to leave `now` untouched, so
        # idle time was accounted differently from the events-beyond-
        # `until` case
        eng = Engine()
        assert eng.run(until=500) == 0
        assert eng.now == 500

    def test_run_until_advances_past_last_event(self):
        eng = Engine()
        out = []
        eng.schedule(100, out.append, 1)
        assert eng.run(until=300) == 1
        assert out == [1]
        assert eng.now == 300  # drained early: still finishes at `until`

    def test_run_until_never_rewinds_time(self):
        eng = Engine()
        eng.schedule(400, lambda: None)
        eng.run()
        assert eng.now == 400
        assert eng.run(until=100) == 0
        assert eng.now == 400  # until in the past must not move time back

    def test_max_events_does_not_advance_to_until(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.schedule(200, lambda: None)
        assert eng.run(until=900, max_events=1) == 1
        assert eng.now == 100  # an undelivered event remains in the window
        assert eng.pending == 1

    def test_peek_time_skips_cancelled(self):
        eng = Engine()
        ev = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        eng.cancel(ev)
        assert eng.peek_time() == 20

    def test_step(self):
        eng = Engine()
        out = []
        eng.schedule(10, out.append, "x")
        assert eng.step() is True
        assert out == ["x"]
        assert eng.step() is False

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
    def test_delivery_order_matches_sorted_times(self, delays):
        eng = Engine()
        fired = []
        for i, d in enumerate(delays):
            eng.schedule(d, lambda i=i, d=d: fired.append((d, i)))
        eng.run()
        assert fired == sorted(fired)  # time-major, FIFO within a timestamp


class TestClock:
    def test_period_rounding(self):
        assert period_ps(1e12) == 1
        assert period_ps(700e6) == 1429  # 1428.57 rounds to 1429

    def test_period_positive_required(self):
        with pytest.raises(ValueError):
            period_ps(0)

    def test_cycle_conversion_roundtrip(self):
        c = Clock(1.2e9)
        assert c.ps_to_cycles(c.cycles_to_ps(17)) == 17

    def test_dfs_changes_period(self):
        c = Clock(700e6)
        p0 = c.period_ps
        c.set_frequency(350e6)
        assert c.period_ps == pytest.approx(2 * p0, rel=0.01)

    def test_charge_cycles_tracks_per_frequency(self):
        c = Clock(700e6)
        c.charge_cycles(100)
        c.set_frequency(350e6)
        c.charge_cycles(50)
        assert c.cycle_log[700e6] == 100
        assert c.cycle_log[350e6] == 50
        assert c.total_cycles == 150


class TestStats:
    def test_inc_and_get(self):
        s = Stats()
        s.inc("a.b")
        s.inc("a.b", 4)
        assert s["a.b"] == 5

    def test_missing_is_zero(self):
        assert Stats()["nope"] == 0.0

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("x", "y") == 0.0

    def test_scoped_prefixes(self):
        s = Stats()
        sc = s.scoped("dram")
        sc.inc("hits", 3)
        assert s["dram.hits"] == 3
        assert sc["hits"] == 3

    def test_with_prefix_filters(self):
        s = Stats()
        s.inc("a.x")
        s.inc("a.y", 2)
        s.inc("b.z")
        assert s.with_prefix("a") == {"a.x": 1, "a.y": 2}

    def test_merge(self):
        a, b = Stats(), Stats()
        a.inc("k", 1)
        b.inc("k", 2)
        b.inc("only_b", 5)
        a.merge(b)
        assert a["k"] == 3 and a["only_b"] == 5

    def test_set_marks_gauge(self):
        s = Stats()
        s.inc("counter", 2)
        s.set("gauge", 7.0)
        assert s.is_gauge("gauge") and not s.is_gauge("counter")
        assert s.gauges() == {"gauge"}

    def test_merge_keeps_gauge_last_write(self):
        # regression: gauge-style counters written via set() (final DFS
        # frequency, finish timestamps) were summed across shards
        a, b = Stats(), Stats()
        a.set("ratematch.final_hz", 650e6)
        b.set("ratematch.final_hz", 700e6)
        a.inc("events", 3)
        b.inc("events", 2)
        a.merge(b)
        assert a["ratematch.final_hz"] == 700e6  # not 1350e6
        assert a["events"] == 5
        assert a.is_gauge("ratematch.final_hz")

    def test_merge_gauge_known_to_either_side(self):
        # a gauge the destination knows but the (deserialized) source
        # lost track of still takes the incoming value, not the sum
        a, b = Stats(), Stats()
        a.set("g", 1.0)
        b.inc("g", 2.0)  # plain counter write on the incoming side
        a.merge(b)
        assert a["g"] == 2.0

    def test_from_dict_restores_gauges(self):
        s = Stats()
        s.set("g", 5.0)
        s.inc("c", 1)
        r = Stats.from_dict(s.as_dict(), gauges=s.gauges())
        assert r.is_gauge("g") and not r.is_gauge("c")
        r.merge(Stats.from_dict(s.as_dict(), gauges=s.gauges()))
        assert r["g"] == 5.0 and r["c"] == 2.0


class _Recorder:
    """Observer stub: records (hook, args) tuples into a shared log."""

    def __init__(self, tag, log, hooks=("on_deliver",)):
        self._tag = tag
        self._log = log
        for hook in hooks:
            setattr(self, hook,
                    lambda *a, _h=hook: self._log.append((self._tag, _h, a)))


class TestObserverChain:
    def test_fan_out_in_attachment_order(self):
        log = []
        chain = ObserverChain(_Recorder("a", log), _Recorder("b", log))
        chain.on_deliver("ev")
        assert log == [("a", "on_deliver", ("ev",)), ("b", "on_deliver", ("ev",))]

    def test_children_receive_only_their_hooks(self):
        log = []
        chain = ObserverChain(_Recorder("a", log),
                              _Recorder("b", log, hooks=("on_deliver", "on_return")))
        chain.on_return("ev")
        assert log == [("b", "on_return", ("ev",))]
        chain.on_nobody_implements_this("x")  # cached no-op, no error

    def test_add_invalidates_cached_dispatch(self):
        log = []
        chain = ObserverChain(_Recorder("a", log))
        chain.on_deliver(1)  # caches the single-child fast path
        chain.add(_Recorder("b", log))
        chain.on_deliver(2)
        assert [tag for tag, _, _ in log] == ["a", "a", "b"]

    def test_remove_and_empty_chain(self):
        log = []
        a, b = _Recorder("a", log), _Recorder("b", log)
        chain = ObserverChain(a, b)
        chain.remove(a)
        chain.on_deliver(1)
        assert [tag for tag, _, _ in log] == ["b"]
        assert chain.observers == (b,)

    def test_none_children_dropped(self):
        chain = ObserverChain(None, None)
        assert chain.observers == ()
        with pytest.raises(TypeError):
            chain.add(None)

    def test_attach_promotes_bare_observer(self):
        log = []
        eng = Engine()
        a, b = _Recorder("a", log), _Recorder("b", log)
        eng.observer = a  # legacy single-slot attachment
        chain = attach_observer(eng, b)
        assert eng.observer is chain
        assert chain.observers == (a, b)
        eng.schedule(10, lambda: None)
        eng.run()
        assert [tag for tag, _, _ in log] == ["a", "b"]

    def test_attach_to_empty_slot_then_detach(self):
        eng = Engine()
        a = _Recorder("a", [])
        attach_observer(eng, a)
        detach_observer(eng, a)
        assert eng.observer is None

    def test_detach_last_chained_observer_clears_slot(self):
        eng = Engine()
        a, b = _Recorder("a", []), _Recorder("b", [])
        attach_observer(eng, a)
        attach_observer(eng, b)
        detach_observer(eng, a)
        detach_observer(eng, b)
        assert eng.observer is None

    def test_observed_run_is_bit_identical(self):
        def build():
            eng = Engine()
            out = []

            def chain_fn(n):
                out.append((eng.now, n))
                if n < 5:
                    eng.schedule(7, chain_fn, n + 1)

            eng.schedule(3, chain_fn, 0)
            return eng, out

        plain_eng, plain = build()
        plain_eng.run()
        obs_eng, observed = build()
        attach_observer(obs_eng, _Recorder("x", []))
        attach_observer(obs_eng, _Recorder("y", []))
        obs_eng.run()
        assert observed == plain
        assert obs_eng.now == plain_eng.now


class TestStatsHardening:
    def test_ratio_zero_and_missing_denominator(self):
        s = Stats()
        assert s.ratio("nope", "also_nope") == 0.0
        s.inc("num", 5)
        assert s.ratio("num", "zero_den") == 0.0

    def test_ratio_nonfinite_guard(self):
        s = Stats()
        s.set("nan", float("nan"))
        s.set("inf", float("inf"))
        s.inc("one")
        assert s.ratio("nan", "one") == 0.0
        assert s.ratio("one", "nan") == 0.0
        assert s.ratio("one", "inf") == 0.0
        assert s.ratio("inf", "one") == 0.0

    def test_from_dict_roundtrip(self):
        s = Stats()
        s.inc("a.x", 2.5)
        s.inc("b.y")
        assert Stats.from_dict(s.as_dict()).as_dict() == s.as_dict()

    def test_sorted_dump_order_independent(self):
        a, b = Stats(), Stats()
        a.inc("z", 1.25)
        a.inc("a", 3)
        b.inc("a", 3)
        b.inc("z", 1.25)
        assert a.sorted_dump() == b.sorted_dump()
        assert a.sorted_dump().splitlines()[0].startswith("a ")

    def test_sorted_dump_distinguishes_values(self):
        a, b = Stats(), Stats()
        a.inc("k", 1.0)
        b.inc("k", 1.0 + 1e-12)
        assert a.sorted_dump() != b.sorted_dump()
