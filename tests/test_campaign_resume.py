"""Persistent-campaign tests (ISSUE 7): SIGKILL crash/resume, 3-way shard
merge, and delta campaigns against the fingerprint store."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.config import DEFAULT_CONFIG
from repro.sim.campaign import (
    BatchProgress,
    cross,
    dedup_specs,
    parse_shard,
    plan_campaign,
    run_batch,
    run_campaign,
    shard_specs,
)
from repro.sim.driver import RunResult, run
from repro.sim.spec import RunSpec
from repro.sim.store import FingerprintStore, canonical_result_blob

N = 512

#: src/ directory for subprocess PYTHONPATH
_SRC = str(Path(repro.__file__).resolve().parents[1])


def assert_same_outcome(a: RunResult, b: RunResult) -> None:
    """Simulation outcome equality on the store-persisted fields (the
    in-memory ``reduced`` arrays and trace are session-only)."""
    assert a.arch == b.arch and a.workload == b.workload
    assert a.finish_ps == b.finish_ps
    assert a.n_records == b.n_records and a.input_words == b.input_words
    assert a.collected == b.collected
    assert a.stats == b.stats
    assert a.energy == b.energy
    assert a.validated == b.validated


# ----------------------------------------------------------------------
# shard plumbing
# ----------------------------------------------------------------------
class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/3") == (2, 3)
        for bad in ("0/3", "4/3", "x/3", "3", "1/0", "-1/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_campaign(self):
        specs = cross(["gpgpu", "ssmc", "millipede"],
                      ["count", "variance", "kmeans"], n_records=N)
        shards = [shard_specs(specs, i, 3) for i in (1, 2, 3)]
        fps = [frozenset(s.content_hash() for s in sh) for sh in shards]
        assert fps[0] | fps[1] | fps[2] == frozenset(dedup_specs(specs))
        assert not (fps[0] & fps[1] or fps[0] & fps[2] or fps[1] & fps[2])
        # duplicates collapse before sharding: no spec runs twice
        doubled = specs + specs
        assert shard_specs(doubled, 2, 3) == shards[1]


# ----------------------------------------------------------------------
# crash / kill / resume
# ----------------------------------------------------------------------
_CHILD = """
import sys
from repro.sim.campaign import run_campaign
from repro.sim.spec import RunSpec

specs = [RunSpec(a, "count", n_records=%d, seed=s)
         for a in ("ssmc", "millipede") for s in range(4)]
run_campaign(specs, sys.argv[1], workers=1, name="crashme")
""" % N

_CRASH_SPECS = [RunSpec(a, "count", n_records=N, seed=s)
                for a in ("ssmc", "millipede") for s in range(4)]


class TestCrashResume:
    def test_sigkill_mid_campaign_resumes_without_resimulation(self, tmp_path):
        """SIGKILL a subprocess campaign once >=1 record has landed; the
        resumed campaign re-simulates zero completed specs (store hit
        counters prove it) and the merged results are byte-identical to
        an uninterrupted campaign."""
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(store_dir)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            watch = None
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if watch is None and (store_dir / "log").is_dir():
                    watch = FingerprintStore(store_dir)
                if watch is not None:
                    watch.refresh()
                    if len(watch) >= 1:
                        break
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        assert watch is not None, "campaign never produced a store record"

        watch.refresh()  # pick up anything flushed between check and kill
        completed = set(watch.fingerprints())
        total = len(_CRASH_SPECS)
        assert completed, "campaign never produced a store record"
        assert completed <= {s.content_hash() for s in _CRASH_SPECS}

        # resume against the same store
        events: list[BatchProgress] = []
        report = run_campaign(_CRASH_SPECS, store_dir, workers=1,
                              name="crashme", progress=events.append)
        assert report.hits == len(completed)
        assert report.misses == total - len(completed)
        served = {e.spec.content_hash() for e in events if e.cached}
        assert served == completed  # completed fingerprints NOT re-simulated
        assert events[-1].hits == len(completed)
        assert events[-1].misses == total - len(completed)
        assert report.plan.complete is False or len(completed) == total

        merged = report.gather(_CRASH_SPECS)
        assert all(r is not None for r in merged)

        # byte-identical to an uninterrupted campaign in a fresh store
        fresh = run_campaign(_CRASH_SPECS, tmp_path / "fresh", workers=1)
        assert fresh.misses == total
        for a, b in zip(merged, fresh.gather(_CRASH_SPECS)):
            assert canonical_result_blob(a) == canonical_result_blob(b)

        # and a third pass over the resumed store is pure hits
        again = run_campaign(_CRASH_SPECS, store_dir, workers=1)
        assert again.hits == total and again.misses == 0

    def test_crash_manifest_checkpointed_before_first_result(self, tmp_path):
        """The manifest lands before simulation starts, so a killed
        campaign's planned fingerprint list is always recoverable."""
        store = FingerprintStore(tmp_path)
        report = run_campaign(_CRASH_SPECS[:2], store, name="crashme")
        manifest = store.read_manifest("crashme")
        assert manifest["order"] == report.plan.fingerprints
        assert store.manifest_specs("crashme") == _CRASH_SPECS[:2]


# ----------------------------------------------------------------------
# 3-way shard merge
# ----------------------------------------------------------------------
class TestShardMerge:
    def test_three_shards_merge_equals_unsharded(self, tmp_path):
        """A fig3-sized campaign split 3 ways into one store produces the
        same results as an unsharded campaign, including exact equality
        of every per-spec stats dict.  ``steal=False`` pins the static
        hard-assignment split this test is about (the default steals,
        so sequential shards would leave nothing for the later ones -
        tests/test_campaign_steal.py covers that path)."""
        specs = cross(["gpgpu", "ssmc", "millipede"],
                      ["count", "variance", "kmeans"], n_records=256)
        shared = tmp_path / "shared"
        reports = []
        for i in (1, 2, 3):
            # a distinct FingerprintStore instance per shard = the
            # multi-writer path (each appends to its own segment)
            with FingerprintStore(shared) as store:
                reports.append(run_campaign(
                    specs, store, shard=(i, 3), name="fig3",
                    steal=False))
        for i, report in enumerate(reports, start=1):
            assert report.shard == (i, 3)
            assert report.hits == 0
            assert report.misses == len(report.plan.specs)
            assert report.plan.campaign_total == len(specs)
        assert sum(r.misses for r in reports) == len(specs)

        # merged view: every spec present, no shard left work behind
        merged = reports[-1].gather(specs)
        assert all(r is not None for r in merged)
        assert reports[-1].missing(specs) == []
        assert plan_campaign(specs, shared).complete

        unsharded = run_campaign(specs, tmp_path / "solo", workers=2)
        solo = unsharded.gather(specs)
        for spec, a, b in zip(specs, merged, solo):
            assert a.stats == b.stats, spec
            assert canonical_result_blob(a) == canonical_result_blob(b)
        # the shared store took one segment per shard writer
        assert len(list((shared / "log").glob("*.jsonl"))) == 3

    def test_final_merge_pass_simulates_nothing(self, tmp_path):
        specs = cross(["ssmc", "millipede"], ["count"], n_records=N)
        for i in (1, 2):
            run_campaign(specs, tmp_path, shard=(i, 2), steal=False)
        final = run_campaign(specs, tmp_path)
        assert final.hits == len(specs) and final.misses == 0


# ----------------------------------------------------------------------
# delta campaigns
# ----------------------------------------------------------------------
class TestDeltaCampaign:
    def test_perturbed_config_resimulates_exactly_the_changed_specs(
            self, tmp_path):
        v1 = [RunSpec(a, "count", config=DEFAULT_CONFIG, n_records=256)
              for a in ("ssmc", "millipede")]
        first = run_campaign(v1, tmp_path)
        assert first.misses == len(v1)

        # perturb one SystemConfig field on one spec
        cfg2 = DEFAULT_CONFIG.with_dram(t_cas=12)
        v2 = [v1[0], v1[1].replace(config=cfg2)]
        plan = plan_campaign(v2, tmp_path)
        assert [s.content_hash() for s in plan.to_run] == \
            [v2[1].content_hash()]
        assert plan.done == [v1[0].content_hash()]

        second = run_campaign(v2, tmp_path)
        assert second.hits == 1 and second.misses == 1
        # the perturbation really simulated something different
        results = second.gather(v2)
        assert results[1].finish_ps != first.gather(v1)[1].finish_ps

        # unperturbed spec's record is untouched (same bytes as round 1)
        assert canonical_result_blob(second.gather(v2)[0]) == \
            canonical_result_blob(first.gather(v1)[0])

    def test_sanitize_variant_is_a_new_fingerprint_same_outcome(
            self, tmp_path):
        """sanitize=True changes the fingerprint (it is part of spec
        identity) but not the simulation outcome: the delta campaign
        simulates it, and its record matches the plain variant bit for
        bit on timing/stats/energy."""
        plain = RunSpec("millipede", "count", n_records=256)
        run_campaign([plain], tmp_path)
        checked = plain.replace(sanitize=True)
        plan = plan_campaign([plain, checked], tmp_path)
        assert [s.content_hash() for s in plan.to_run] == \
            [checked.content_hash()]
        report = run_campaign([plain, checked], tmp_path)
        assert report.hits == 1 and report.misses == 1
        a, b = report.gather([plain, checked])
        assert a.finish_ps == b.finish_ps
        assert a.stats == b.stats
        assert a.energy == b.energy

    def test_no_resume_resimulates_but_still_records(self, tmp_path):
        spec = RunSpec("ssmc", "count", n_records=N)
        first = run_campaign([spec], tmp_path)
        again = run_campaign([spec], tmp_path, resume=False)
        assert first.misses == 1
        assert again.hits == 0 and again.misses == 1  # forced re-simulation
        assert canonical_result_blob(again.gather([spec])[0]) == \
            canonical_result_blob(first.gather([spec])[0])

    def test_traced_specs_always_resimulate(self, tmp_path):
        spec = RunSpec("millipede", "count", n_records=N)
        run_campaign([spec], tmp_path)
        traced = spec.replace(trace=True)
        run_campaign([traced], tmp_path)
        plan = plan_campaign([traced], tmp_path)
        assert plan.to_run == [traced]  # stored records carry no trace
        report = run_campaign([traced], tmp_path)
        assert report.misses == 1
        assert report.results[traced.content_hash()].trace is not None


# ----------------------------------------------------------------------
# batch counters + facade
# ----------------------------------------------------------------------
class TestCountersAndFacade:
    def test_batch_progress_hit_miss_counters(self, tmp_path):
        store = FingerprintStore(tmp_path)
        specs = cross(["ssmc", "millipede"], ["count"], n_records=N)
        run_batch([specs[0]], cache=store)
        events: list[BatchProgress] = []
        run_batch(specs, cache=store, progress=events.append)
        assert [(e.hits, e.misses) for e in events] == [(1, 0), (1, 1)]
        assert "hit" in str(events[0])

    def test_api_run_batch_accepts_store(self, tmp_path):
        from repro import api

        specs = [RunSpec("millipede", "count", n_records=N)]
        first = api.run_batch(specs, store=tmp_path)
        second = api.run_batch(specs, store=FingerprintStore(tmp_path))
        assert_same_outcome(first[0], second[0])
        with pytest.raises(TypeError):
            api.run_batch(specs, store=tmp_path,
                          cache=FingerprintStore(tmp_path))

    def test_api_run_campaign_facade(self, tmp_path):
        from repro import api

        specs = [RunSpec("ssmc", "count", n_records=N)]
        report = api.run_campaign(specs, store=tmp_path)
        assert report.misses == 1
        assert api.run_campaign(specs, store=tmp_path).hits == 1
        assert "campaign" in report.summary()
