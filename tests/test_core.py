"""Unit tests for the Millipede core layer: corelets, the processor, the
rate-match controller, and the barrier coordinator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.millipede import MillipedeProcessor
from repro.core.rate_match import RateMatchController
from repro.dram.dram import GlobalMemory
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.program import Program


def make_processor(source: str, n_words=2048, n_cores=4, n_threads=2,
                   mcfg_kwargs=None):
    cfg = SystemConfig().with_core(n_cores=n_cores, n_threads=n_threads)
    if mcfg_kwargs:
        cfg = cfg.with_millipede(**mcfg_kwargs)
    prog = Program.from_source(source)
    eng = Engine()
    stats = Stats()
    gm = GlobalMemory(n_words)
    proc = MillipedeProcessor(eng, cfg, prog, gm, stats,
                              input_base_word=0, input_end_word=n_words)
    return eng, proc, gm, stats


SUM_KERNEL = """
    li   r5, 0
    mov  r6, r1
loop:
    bge  r6, r3, done
    add  r7, r4, r6
    ldg  r8, r7, 0
    add  r5, r5, r8
    add  r6, r6, r2
    j    loop
done:
    stl  r5, r0, 0
    halt
"""


class TestMillipedeProcessor:
    def test_streaming_sum(self):
        eng, proc, gm, stats = make_processor(SUM_KERNEL)
        gm.data[:] = np.arange(2048)
        T = 8
        proc.set_thread_args([{1: t, 2: T, 3: 2048, 4: 0} for t in range(T)])
        proc.start()
        eng.run()
        assert proc.done
        total = sum(s[0] for s in proc.thread_states())
        assert total == gm.data.sum()

    def test_unaligned_input_rejected(self):
        cfg = SystemConfig()
        with pytest.raises(ValueError, match="row-aligned"):
            MillipedeProcessor(
                Engine(), cfg, Program.from_source("halt"), GlobalMemory(1024),
                Stats(), input_base_word=100, input_end_word=612,
            )

    def test_wrong_thread_args_count_rejected(self):
        eng, proc, gm, stats = make_processor(SUM_KERNEL)
        with pytest.raises(ValueError, match="thread-arg"):
            proc.set_thread_args([{1: 0}])

    def test_initial_state_loads_every_partition(self):
        eng, proc, gm, stats = make_processor("halt")
        proc.load_initial_state(np.array([7.0, 8.0]))
        for st in proc.thread_states():
            assert st[0] == 7.0 and st[1] == 8.0

    def test_oversized_initial_state_rejected(self):
        eng, proc, gm, stats = make_processor("halt")
        with pytest.raises(ValueError, match="exceeds"):
            proc.load_initial_state(np.zeros(10_000))

    def test_collect_counts_instructions(self):
        eng, proc, gm, stats = make_processor(SUM_KERNEL)
        T = 8
        proc.set_thread_args([{1: t, 2: T, 3: 2048, 4: 0} for t in range(T)])
        proc.start()
        eng.run()
        c = proc.collect()
        # per thread: 2 setup + 256 iterations x 6 + final bge + stl + halt
        assert c["instructions"] == T * (2 + 256 * 6 + 3)

    def test_finish_time_monotone_with_work(self):
        times = []
        for n_words in (512, 2048):
            eng, proc, gm, stats = make_processor(SUM_KERNEL, n_words=n_words)
            T = 8
            proc.set_thread_args([{1: t, 2: T, 3: n_words, 4: 0} for t in range(T)])
            proc.start()
            eng.run()
            times.append(proc.finish_ps)
        assert times[1] > times[0]


class TestLocalMemorySafety:
    def test_out_of_partition_access_raises(self):
        src = "stl r1, r0, 300\nhalt"  # beyond the 256-word partition
        eng, proc, gm, stats = make_processor(src, n_cores=4, n_threads=4)
        proc.set_thread_args([{1: t, 2: 16, 3: 0, 4: 0} for t in range(16)])
        proc.start()
        with pytest.raises(IndexError, match="partition"):
            eng.run()


class TestRateMatchController:
    def make(self, interval_ps=0):
        cfg = SystemConfig().with_millipede(rate_match_interval_ps=interval_ps).millipede
        eng = Engine()
        clock = Clock(700e6)
        return eng, clock, RateMatchController(eng, clock, cfg, Stats())

    def test_empty_signal_lowers_clock(self):
        eng, clock, rc = self.make()
        rc.empty_signal()
        assert clock.freq_hz == pytest.approx(700e6 * 0.95)

    def test_full_signal_raises_clock_up_to_nominal(self):
        eng, clock, rc = self.make()
        rc.empty_signal()
        rc.full_signal()
        assert clock.freq_hz == pytest.approx(700e6 * 0.95 * 1.05)
        for _ in range(20):
            rc.full_signal()
        assert clock.freq_hz <= 700e6

    def test_clamped_at_minimum(self):
        eng, clock, rc = self.make()
        for _ in range(100):
            rc.empty_signal()
        assert clock.freq_hz >= 200e6

    def test_debounce_interval(self):
        eng, clock, rc = self.make(interval_ps=1_000_000)
        rc.empty_signal()
        f = clock.freq_hz
        rc.empty_signal()  # within the interval: ignored
        assert clock.freq_hz == f

    def test_clamped_noop_leaves_debounce_window_open(self):
        # regression: a signal whose step clamped to a no-op at
        # rate_match_min/max_hz used to consume the debounce window,
        # starving an immediately following opposite-direction signal
        eng, clock, rc = self.make(interval_ps=1_000_000)
        lo = rc.cfg.rate_match_min_hz
        clock.set_frequency(lo)
        rc.empty_signal()  # already at the floor: clamps to a no-op
        assert clock.freq_hz == lo
        rc.full_signal()  # must act despite being inside the window
        assert clock.freq_hz == pytest.approx(lo * (1 + rc.cfg.rate_match_step))
        assert rc.stats["adjustments"] == 1

    def test_clamped_noop_not_recorded_as_adjustment(self):
        eng, clock, rc = self.make(interval_ps=1_000_000)
        clock.set_frequency(rc.cfg.rate_match_min_hz)
        rc.empty_signal()
        assert rc.stats["adjustments"] == 0
        assert len(rc.history) == 1  # only the initial point

    def test_debounce_still_applies_after_real_change(self):
        eng, clock, rc = self.make(interval_ps=1_000_000)
        rc.empty_signal()  # real change at t=0
        f = clock.freq_hz
        rc.full_signal()  # within the interval: ignored
        assert clock.freq_hz == f

    def test_mean_frequency_time_weighted(self):
        eng, clock, rc = self.make()
        eng.schedule(1000, rc.empty_signal)
        eng.run()
        mean = rc.mean_freq_hz(2000)
        assert 700e6 * 0.95 < mean < 700e6

    def test_history_records_trajectory(self):
        eng, clock, rc = self.make()
        rc.empty_signal()
        rc.empty_signal()
        assert len(rc.history) == 3  # initial + 2 adjustments


class TestBarriers:
    def test_record_barriers_run_to_completion(self):
        from repro.sim.driver import run

        r = run("millipede-bar", "count", n_records=2048)
        assert r.validated
        assert r.stats["barrier.releases"] > 0
        arrivals = r.stats["barrier.arrivals"]
        assert arrivals == r.stats["barrier.releases"] * 128
