"""Tracing-layer tests: the timeline sampler, exporters, campaign writer,
and the acceptance criterion that tracing never perturbs a simulation."""

from __future__ import annotations

import json

from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.sim.cache import ResultCache
from repro.sim.campaign import run_batch
from repro.sim.driver import run
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.trace import SimTracer, TimelineSampler, TraceResult, TraceWriter

N = 512


def dump(result) -> str:
    return Stats.from_dict(result.stats).sorted_dump()


# ----------------------------------------------------------------------
# acceptance: observation never perturbs the simulation
# ----------------------------------------------------------------------
class TestTracedRunsAreBitIdentical:
    def test_traced_kmeans_matches_plain(self):
        plain = run("millipede", "kmeans", n_records=N)
        traced = run("millipede", "kmeans", n_records=N, trace=True)
        assert traced.finish_ps == plain.finish_ps
        assert dump(traced) == dump(plain)

    def test_sanitized_and_traced_together_match_plain(self):
        """Satellite 5: sanitizer + tracer attached on the same run (the
        composition the old single-slot observer protocol could not do)
        still reproduce the plain run byte-for-byte."""
        plain = run("millipede-rm", "kmeans", n_records=N)
        both = run("millipede-rm", "kmeans", n_records=N,
                   sanitize=True, trace=True)
        assert both.finish_ps == plain.finish_ps
        assert dump(both) == dump(plain)

    def test_untraced_run_has_no_trace(self):
        assert run("millipede", "count", n_records=N).trace is None


# ----------------------------------------------------------------------
# what a traced run captures
# ----------------------------------------------------------------------
class TestTraceContent:
    def kmeans_trace(self):
        return run("millipede-rm", "kmeans", n_records=N, trace=True).trace

    def test_core_series_sampled(self):
        trace = self.kmeans_trace()
        names = trace.series_names()
        for series in ("pb.occupancy", "pb.pft_pending", "pb.df_total",
                       "dram.queue_depth", "dram.banks_open",
                       "dfs.freq_hz", "corelet.instructions"):
            assert series in names, f"{series} not sampled"
        times, occ = trace.series("pb.occupancy")
        assert times == sorted(times) and len(times) > 2
        assert max(occ) > 0  # the buffer actually filled at some point

    def test_dfs_frequency_series_and_changes(self):
        trace = self.kmeans_trace()
        _, freqs = trace.series("dfs.freq_hz")
        assert len(set(freqs)) > 1  # rate matching really moved the clock
        assert trace.freq_changes
        for time_ps, clock_name, old_hz, new_hz in trace.freq_changes:
            assert clock_name == "millipede"
            assert old_hz != new_hz

    def test_host_profile_populated(self):
        trace = self.kmeans_trace()
        assert trace.total_host_ns() > 0
        by_comp = trace.host_profile_by_component()
        assert sum(c["count"] for c in by_comp.values()) == sum(
            c["count"] for c in trace.host_profile.values())
        assert "samples" in trace.summary()

    def test_per_corelet_series_is_per_unit(self):
        trace = self.kmeans_trace()
        _, instr = trace.series("corelet.instructions")
        n_units = len(instr[0])
        assert n_units > 1
        assert all(len(row) == n_units for row in instr)
        # counts are cumulative per corelet: monotone over time
        assert instr[-1][0] >= instr[0][0]

    def test_meta_carries_run_identity(self):
        result = run("millipede", "kmeans", n_records=N, trace=True)
        meta = result.trace.meta
        assert meta["arch"] == "millipede" and meta["workload"] == "kmeans"
        assert meta["finish_ps"] == result.finish_ps
        assert meta["interval_ps"] > 0


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def trace(self):
        return run("millipede-rm", "kmeans", n_records=N, trace=True).trace

    def test_chrome_trace_structure(self):
        trace = self.trace()
        doc = trace.chrome_trace()
        json.dumps(doc)  # must be serializable as-is
        events = doc["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in counters} >= {"pb.occupancy", "dfs.freq_hz"}
        assert len(instants) == len(trace.freq_changes)
        assert all("ts" in e for e in counters)
        assert doc["otherData"]["host_profile"] == trace.host_profile

    def test_chrome_trace_ts_is_microseconds(self):
        trace = TraceResult(samples=[{"time_ps": 2_000_000, "x": 1}])
        (ev,) = [e for e in trace.chrome_trace()["traceEvents"]
                 if e["ph"] == "C"]
        assert ev["ts"] == 2.0  # 2 us

    def test_timeline_csv_expands_list_series(self):
        trace = TraceResult(samples=[
            {"time_ps": 0, "x": 1, "units": [1, 2]},
            {"time_ps": 5, "x": 2, "units": [3, 4]},
        ])
        lines = trace.timeline_csv().strip().splitlines()
        assert lines[0] == "time_ps,x,units.0,units.1,units.total"
        assert lines[1] == "0,1,1,2,3"
        assert lines[2] == "5,2,3,4,7"

    def test_timeline_csv_has_required_series(self):
        csv = self.trace().timeline_csv()
        header = csv.splitlines()[0].split(",")
        assert "dfs.freq_hz" in header and "pb.occupancy" in header

    def test_profile_csv_heaviest_first(self):
        trace = TraceResult(host_profile={
            "A.f": {"count": 1, "host_ns": 10},
            "B.g": {"count": 2, "host_ns": 200},
        })
        lines = trace.profile_csv().strip().splitlines()
        assert lines[0] == "event_class,count,host_ns,host_ns_per_event"
        assert lines[1].startswith("B.g,") and lines[2].startswith("A.f,")

    def test_write_emits_three_files(self, tmp_path):
        paths = self.trace().write(tmp_path, "run")
        assert set(paths) == {"trace", "timeline", "profile"}
        loaded = json.loads(paths["trace"].read_text())
        assert loaded["traceEvents"]
        assert paths["timeline"].read_text().startswith("time_ps,")


# ----------------------------------------------------------------------
# the sampler's scheduling discipline
# ----------------------------------------------------------------------
class TestTimelineSampler:
    def test_samples_at_cadence_and_stops_with_the_run(self):
        eng = Engine()
        ticks = {"n": 0}

        def work():
            ticks["n"] += 1
            if ticks["n"] < 5:
                eng.schedule(100, work)

        eng.schedule(0, work)
        sampler = TimelineSampler(eng, interval_ps=100)
        sampler.add_probe("ticks", lambda: ticks["n"])
        sampler.start()
        eng.run()
        assert eng.pending == 0  # the sampler did not keep the run alive
        times = [row["time_ps"] for row in sampler.samples]
        assert times[0] == 0 and times == sorted(times)
        # the final workload event is at t=400; sampling must not extend
        # meaningfully past it (at most one trailing tick)
        assert times[-1] <= 500
        _, values = TraceResult(samples=sampler.samples).series("ticks")
        assert values[-1] == 5

    def test_no_probes_means_no_events(self):
        eng = Engine()
        sampler = TimelineSampler(eng, interval_ps=100)
        sampler.start()
        assert eng.pending == 0 and sampler.samples == []


# ----------------------------------------------------------------------
# spec / cache / campaign integration
# ----------------------------------------------------------------------
class TestCampaignIntegration:
    def test_spec_roundtrip_carries_trace(self):
        # flat-flag shim round-trip is the subject; see docs/linting.md
        spec = RunSpec("millipede", "count",  # repro-lint: disable=API001
                       n_records=N, trace=True)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert spec.content_hash() != spec.replace(trace=False).content_hash()
        legacy = spec.to_dict()
        del legacy["trace"]  # pre-trace serialized specs still deserialize
        assert RunSpec.from_dict(legacy).trace is False

    def test_traced_spec_bypasses_cache_but_feeds_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = RunSpec("millipede", "count", n_records=N)
        traced = plain.replace(trace=True)
        (first,) = run_batch([traced], workers=1, cache=cache)
        assert first.trace is not None
        # the traced run populated the cache for future untraced runs...
        (warm,) = run_batch([plain], workers=1, cache=cache)
        assert warm.finish_ps == first.finish_ps
        # ...and a traced spec always re-simulates (the artifact is the
        # point; a cache hit would return no trace)
        (again,) = run_batch([traced], workers=1, cache=cache)
        assert again.trace is not None

    def test_trace_writer_collects_batch(self, tmp_path):
        specs = [RunSpec("millipede", "count", n_records=N,
                         options=ExecOptions(trace=True)),
                 RunSpec("ssmc", "count", n_records=N,
                         options=ExecOptions(trace=True))]
        seen = []
        writer = TraceWriter(tmp_path, progress=seen.append)
        run_batch(specs, workers=1, progress=writer)
        index_path = writer.finish()
        assert len(seen) == 2  # wrapped progress still invoked
        index = json.loads(index_path.read_text())
        assert len(index["runs"]) == 2
        assert index["host_profile_totals"]
        for entry in index["runs"]:
            assert entry["samples"] > 0
            for name in entry["files"].values():
                assert (tmp_path / name).exists()

    def test_trace_writer_skips_untraced_results(self, tmp_path):
        writer = TraceWriter(tmp_path)
        run_batch([RunSpec("millipede", "count", n_records=N)],
                  workers=1, progress=writer)
        assert writer.index == []
        assert json.loads(writer.finish().read_text())["runs"] == []

    def test_worker_processes_return_traces(self, tmp_path):
        """Traces survive the multiprocessing pickle boundary."""
        specs = [RunSpec("millipede", "count", n_records=N,
                         options=ExecOptions(trace=True)),
                 RunSpec("ssmc", "count", n_records=N,
                         options=ExecOptions(trace=True))]
        results = run_batch(specs, workers=2)
        assert all(r.trace is not None for r in results)
        assert all(r.trace.samples for r in results)


# ----------------------------------------------------------------------
# tracer unit behavior
# ----------------------------------------------------------------------
class TestSimTracer:
    def test_result_before_attach_is_empty(self):
        trace = SimTracer().result()
        assert trace.samples == [] and trace.host_profile == {}

    def test_custom_interval_respected(self):
        a = run("millipede", "count", n_records=N, trace=True,
                trace_interval_ps=50_000)
        b = run("millipede", "count", n_records=N, trace=True,
                trace_interval_ps=200_000)
        assert a.trace.meta["interval_ps"] == 50_000
        assert len(a.trace.samples) > len(b.trace.samples)
        assert a.finish_ps == b.finish_ps  # cadence never affects timing

    def test_gpgpu_probes_warps(self):
        trace = run("gpgpu", "count", n_records=N, trace=True).trace
        names = trace.series_names()
        assert "warps.active" in names and "dram.queue_depth" in names
