"""Determinism regression: the same RunSpec must produce byte-identical
statistics whether simulated serially or through the multiprocess
campaign runner, with or without the sanitizer attached."""

from __future__ import annotations

from repro.engine.stats import Stats
from repro.sim.campaign import run_batch
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec

N = 512

SPECS = [
    RunSpec("gpgpu", "count", n_records=N),
    RunSpec("ssmc", "variance", n_records=N),
    RunSpec("millipede", "count", n_records=N),
    # a sanitized spec rides through worker-process pickling too
    RunSpec("millipede", "count", n_records=N,
            options=ExecOptions(sanitize=True)),
]


def dumps(results) -> list[str]:
    return [Stats.from_dict(r.stats).sorted_dump() for r in results]


class TestDeterminism:
    def test_serial_vs_multiprocess_byte_identical(self):
        serial = run_batch(SPECS, workers=1)
        multi = run_batch(SPECS, workers=2)
        for spec, a, b, da, db in zip(SPECS, serial, multi,
                                      dumps(serial), dumps(multi)):
            assert da == db, f"stats dump diverged for {spec}"
            assert a.finish_ps == b.finish_ps, spec
            assert a.collected == b.collected, spec

    def test_sanitized_stats_equal_unsanitized(self):
        results = run_batch(SPECS, workers=1)
        plain, sanitized = results[2], results[3]
        assert (Stats.from_dict(plain.stats).sorted_dump()
                == Stats.from_dict(sanitized.stats).sorted_dump())

    def test_repeated_serial_runs_identical(self):
        a = run_batch([SPECS[2]], workers=1)[0]
        b = run_batch([SPECS[2]], workers=1)[0]
        assert dumps([a]) == dumps([b])
        assert a.finish_ps == b.finish_ps
