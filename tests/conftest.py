"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.engine.events import Engine
from repro.engine.stats import Stats


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def stats() -> Stats:
    return Stats()


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture
def small_config() -> SystemConfig:
    """A shrunken machine for fast integration tests: 8 corelets x 2
    threads, 4-entry prefetch buffer.  Block = row = 512 records still
    divides evenly (512 % 16 == 0)."""
    cfg = SystemConfig()
    return cfg.with_core(n_cores=8, n_threads=2).with_millipede(prefetch_entries=4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
