"""FingerprintStore tests: round-trips, index rebuild, crash debris, and
hypothesis property tests for concurrent writers racing on overlapping
spec lists (ISSUE 7 satellite: the store's durability contract)."""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.energy.model import EnergyBreakdown
from repro.sim.cache import ResultCache
from repro.sim.driver import RunResult, run
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.sim.store import (
    FingerprintStore,
    canonical_result_blob,
    result_from_payload,
    result_to_payload,
)

N = 512


def make_result(spec: RunSpec, finish_ps: int = 1_000_000,
                stats: dict | None = None,
                collected: dict | None = None) -> RunResult:
    """A synthetic (unsimulated) result for store plumbing tests."""
    return RunResult(
        arch=spec.arch,
        workload=spec.workload,
        n_records=spec.n_records or 4096,
        input_words=8 * (spec.n_records or 4096),
        finish_ps=finish_ps,
        energy=EnergyBreakdown(1e-6, 2e-6, 3e-6, 4e-6),
        collected=dict(collected or {"instructions": 123.0}),
        stats=dict(stats or {"dram.row_accesses": 7.0}),
        validated=True,
        host_seconds=0.25,
    )


# ----------------------------------------------------------------------
# unit tests
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_payload_roundtrip_synthetic(self):
        spec = RunSpec("millipede", "count", n_records=N)
        result = make_result(spec)
        back = result_from_payload(result_to_payload(result))
        assert canonical_result_blob(back) == canonical_result_blob(result)
        assert back.finish_ps == result.finish_ps
        assert back.stats == result.stats and back.collected == result.collected
        assert back.energy == result.energy
        assert back.reduced == {} and back.trace is None

    def test_store_roundtrip_real_simulation(self, tmp_path):
        spec = RunSpec("millipede", "count", n_records=N)
        result = run(spec)
        store = FingerprintStore(tmp_path)
        fp = store.put_spec(spec, result)
        assert fp == spec.content_hash()
        assert fp in store and len(store) == 1
        served = store.get_spec(spec)
        assert canonical_result_blob(served) == canonical_result_blob(result)
        # a fresh process (new instance, no index written) sees the record
        again = FingerprintStore(tmp_path)
        assert canonical_result_blob(again.get_spec(spec)) == \
            canonical_result_blob(result)

    def test_store_and_cache_payloads_interchangeable(self, tmp_path):
        """Both tiers serialize through the same payload pair."""
        spec = RunSpec("ssmc", "count", n_records=N)
        result = run(spec)
        cache = ResultCache(tmp_path / "cache")
        cache.put_spec(spec, result)
        store = FingerprintStore(tmp_path / "store")
        store.put_spec(spec, result)
        assert canonical_result_blob(cache.get_spec(spec)) == \
            canonical_result_blob(store.get_spec(spec))

    def test_get_missing_returns_none(self, tmp_path):
        store = FingerprintStore(tmp_path)
        assert store.get("0" * 16) is None
        assert store.get_spec(RunSpec("millipede", "count", n_records=N)) is None


class TestCrashDebris:
    def test_torn_tail_line_skipped(self, tmp_path):
        """A writer killed mid-append leaves a non-terminated tail; every
        complete record before it survives."""
        store = FingerprintStore(tmp_path)
        spec = RunSpec("millipede", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        store.close()
        seg = next((tmp_path / "log").glob("*.jsonl"))
        with seg.open("ab") as f:
            f.write(b'{"fingerprint": "torn-and-never-fini')  # no newline
        reader = FingerprintStore(tmp_path)
        assert len(reader) == 1
        assert reader.get_spec(spec) is not None
        assert reader.corrupt_lines == 0  # torn tail is pending, not corrupt

    def test_complete_garbage_line_counted_and_skipped(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec_a = RunSpec("millipede", "count", n_records=N)
        spec_b = RunSpec("ssmc", "count", n_records=N)
        store.put_spec(spec_a, make_result(spec_a))
        store.close()
        seg = next((tmp_path / "log").glob("*.jsonl"))
        with seg.open("ab") as f:
            f.write(b"not json at all\n")
        # records after the corrupt line still index correctly
        writer2 = FingerprintStore(tmp_path)
        writer2.put_spec(spec_b, make_result(spec_b))
        writer2.close()
        reader = FingerprintStore(tmp_path)
        assert reader.corrupt_lines == 1
        assert reader.fingerprints() == {spec_a.content_hash(),
                                         spec_b.content_hash()}

    def test_stale_or_corrupt_index_recovers_from_log(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec = RunSpec("millipede", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        store.write_index()
        store.close()
        (tmp_path / "index.json").write_text("{ definitely truncated")
        reader = FingerprintStore(tmp_path)
        assert reader.get_spec(spec) is not None
        path = reader.rebuild_index()
        snap = json.loads(path.read_text())
        assert spec.content_hash() in snap["records"]


class TestManifests:
    def test_manifest_roundtrip(self, tmp_path):
        store = FingerprintStore(tmp_path)
        specs = [RunSpec(a, "count", n_records=N) for a in ("ssmc", "millipede")]
        store.write_manifest("fig3", specs, shard=(1, 2))
        manifest = store.read_manifest("fig3")
        assert manifest["total"] == 2
        assert manifest["order"] == [s.content_hash() for s in specs]
        assert manifest["shard"] == [1, 2]
        assert "T" in manifest["saved_iso"]  # ISO-8601, not a raw float
        assert store.manifest_specs("fig3") == specs
        assert store.manifest_names() == ["fig3"]

    def test_manifest_name_sanitized(self, tmp_path):
        store = FingerprintStore(tmp_path)
        path = store.write_manifest("fig3 @ 512/rec", [])
        assert path.name == "fig3-512-rec.json"

    def test_manifest_atomic_replace(self, tmp_path):
        store = FingerprintStore(tmp_path)
        specs = [RunSpec("ssmc", "count", n_records=N)]
        store.write_manifest("c", specs)
        store.write_manifest("c", specs * 2)  # dedup: same plan
        assert store.read_manifest("c")["total"] == 1
        assert not list(store.manifest_dir.glob("*.tmp-*"))


# ----------------------------------------------------------------------
# compaction and garbage collection (ISSUE 9 store hygiene)
# ----------------------------------------------------------------------
def _fill(root, arches, seeds) -> dict[str, bytes]:
    """One writer instance per arch (multi-segment store); returns the
    expected fingerprint -> canonical blob mapping."""
    expect: dict[str, bytes] = {}
    for arch in arches:
        with FingerprintStore(root) as writer:
            for seed in seeds:
                spec = RunSpec(arch, "count", n_records=N, seed=seed)
                result = make_result(spec)
                expect[writer.put_spec(spec, result)] = \
                    canonical_result_blob(result)
    return expect


class TestCompaction:
    def test_compact_collapses_multi_writer_segments(self, tmp_path):
        expect = _fill(tmp_path, ("ssmc", "millipede", "gpgpu"), (0, 1))
        store = FingerprintStore(tmp_path)
        assert len(store.segments()) == 3
        summary = store.compact()
        assert summary["compacted"] is True
        assert summary["records"] == len(expect)
        assert summary["segments_before"] == 3
        assert summary["segments_after"] == 1
        assert summary["segments_retired"] == 3
        # contents identical through the compacting instance...
        assert store.fingerprints() == frozenset(expect)
        for fp, blob in expect.items():
            assert canonical_result_blob(store.get(fp)) == blob
        # ...through a fresh instance (index snapshot)...
        fresh = FingerprintStore(tmp_path)
        assert fresh.fingerprints() == frozenset(expect)
        # ...and through a full rebuild from the log alone
        fresh.rebuild_index()
        assert fresh.fingerprints() == frozenset(expect)
        assert not list((tmp_path / "log").glob("*.tmp-*"))

    def test_compact_drops_superseded_duplicates(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec = RunSpec("ssmc", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        store.put_spec(spec, make_result(spec))  # duplicate line
        summary = store.compact()
        assert summary["compacted"] is True
        assert summary["records"] == 1
        assert summary["bytes_after"] < summary["bytes_before"]

    def test_compact_noop_on_single_clean_segment(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec = RunSpec("ssmc", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        before = store.segments()
        summary = store.compact()
        assert summary["compacted"] is False
        assert summary["segments_retired"] == 0
        assert store.segments() == before
        assert store.get_spec(spec) is not None

    def test_interrupted_retirement_recovers(self, tmp_path, monkeypatch):
        """A crash between publishing the compacted segment and retiring
        the old ones leaves duplicates - tolerated by the scan model and
        cleaned up by the next compact()."""
        expect = _fill(tmp_path, ("ssmc", "millipede"), (0,))
        store = FingerprintStore(tmp_path)
        with monkeypatch.context() as m:
            m.setattr(Path, "unlink",
                      lambda self, *a, **k: (_ for _ in ()).throw(
                          OSError("injected crash")))
            summary = store.compact()
        # published but retired nothing: every record now duplicated
        assert summary["compacted"] is True
        assert summary["segments_retired"] == 0
        assert summary["segments_after"] == 3
        assert store.fingerprints() == frozenset(expect)
        for fp, blob in expect.items():
            assert canonical_result_blob(store.get(fp)) == blob
        # a reader that never saw the crash recovers the same mapping
        fresh = FingerprintStore(tmp_path)
        fresh.rebuild_index()
        assert fresh.fingerprints() == frozenset(expect)
        # the next compact (unlink restored) finishes the job
        summary = fresh.compact()
        assert summary["compacted"] is True
        assert summary["segments_after"] == 1
        assert fresh.fingerprints() == frozenset(expect)

    def test_max_segment_bytes_rolls_then_compact_collapses(self, tmp_path):
        store = FingerprintStore(tmp_path, max_segment_bytes=1)
        expect: dict[str, bytes] = {}
        for seed in range(4):
            spec = RunSpec("ssmc", "count", n_records=N, seed=seed)
            result = make_result(spec)
            expect[store.put_spec(spec, result)] = \
                canonical_result_blob(result)
        assert len(store.segments()) == 4  # every put rolled
        summary = store.compact()
        assert summary["segments_after"] == 1
        assert store.fingerprints() == frozenset(expect)
        for fp, blob in expect.items():
            assert canonical_result_blob(store.get(fp)) == blob

    def test_gc_sweeps_debris_keeps_live_state(self, tmp_path):
        store = FingerprintStore(tmp_path)
        spec = RunSpec("ssmc", "count", n_records=N)
        store.put_spec(spec, make_result(spec))
        # debris: crashed atomic writes, an expired claim, empty segment
        # (fixed temp names ARE the debris being tested; docs/linting.md)
        (tmp_path / "index.json.tmp-999-dead").write_text(  # repro-lint: disable=FS003
            "{")
        (tmp_path / "manifests" / "c.json.tmp-999-dead").write_text(  # repro-lint: disable=FS003
            "{")
        (tmp_path / "log" / "w999-dead.jsonl").write_text("")
        assert store.try_claim("a" * 64, lease_s=0.01)
        assert store.try_claim("b" * 64, lease_s=60.0)  # live: kept
        import time as _time
        _time.sleep(0.05)
        summary = store.gc()
        assert summary["tmp_files_removed"] == 2
        assert summary["stale_claims_removed"] == 1
        assert summary["empty_segments_removed"] == 1
        assert store.claim_holder("b" * 64) == store.writer_id
        assert store.get_spec(spec) is not None
        assert not list(tmp_path.glob("*.tmp-*"))


# ----------------------------------------------------------------------
# hypothesis property tests
# ----------------------------------------------------------------------
_ARCHES = ("millipede", "ssmc", "gpgpu", "multicore")
_OPTIONS = (ExecOptions(), ExecOptions(sanitize=True),
            ExecOptions(validate=False), ExecOptions(backend="vector"))

spec_st = st.builds(
    RunSpec,
    arch=st.sampled_from(_ARCHES),
    workload=st.sampled_from(("count", "variance", "kmeans")),
    n_records=st.sampled_from((256, 512, 1024)),
    seed=st.integers(min_value=0, max_value=3),
    options=st.sampled_from(_OPTIONS),
)

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
stats_st = st.dictionaries(
    st.sampled_from(("dram.row_accesses", "pb.occupancy", "core.cycles")),
    _finite, max_size=3)

record_st = st.tuples(spec_st, st.integers(min_value=0, max_value=2**48),
                      stats_st)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(records=st.lists(record_st, min_size=1, max_size=8))
def test_prop_roundtrip_and_index_rebuild(records):
    """Every appended record round-trips byte-stably, and the index rebuilt
    from the append-only log alone equals the incrementally-built one."""
    with tempfile.TemporaryDirectory() as root:
        store = FingerprintStore(root)
        expect: dict[str, bytes] = {}
        for spec, finish_ps, stats in records:
            result = make_result(spec, finish_ps=finish_ps, stats=stats)
            fp = store.put_spec(spec, result)
            expect[fp] = canonical_result_blob(result)  # last write wins
        store.write_index()
        store.close()

        fresh = FingerprintStore(root)
        assert fresh.fingerprints() == frozenset(expect)
        for fp, blob in sorted(expect.items()):
            assert canonical_result_blob(fresh.get(fp)) == blob

        (Path(root) / "index.json").unlink()
        rebuilt = FingerprintStore(root)
        rebuilt.rebuild_index()
        assert rebuilt.fingerprints() == frozenset(expect)
        for fp, blob in sorted(expect.items()):
            assert canonical_result_blob(rebuilt.get(fp)) == blob


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    specs=st.lists(spec_st, min_size=1, max_size=6, unique_by=lambda s:
                   s.content_hash()),
    overlap=st.data(),
)
def test_prop_concurrent_writers_never_drop_or_corrupt(specs, overlap):
    """Two writers with overlapping spec lists, interleaved in any order,
    never corrupt or drop records: the merged store holds every spec,
    each served record byte-equal to what some writer stored."""
    with tempfile.TemporaryDirectory() as root:
        picks = overlap.draw(st.lists(st.booleans(), min_size=len(specs),
                                      max_size=len(specs)))
        list_a = list(specs)
        list_b = [s for s, keep in zip(specs, picks) if keep] or [specs[0]]
        # distinct instances = distinct writer processes (own segments)
        writer_a = FingerprintStore(root)
        writer_b = FingerprintStore(root)
        queue = ([("a", s) for s in list_a] + [("b", s) for s in list_b])
        order = overlap.draw(st.permutations(range(len(queue))))
        blobs: dict[str, set[bytes]] = {}
        for i in order:
            who, spec = queue[i]
            writer = writer_a if who == "a" else writer_b
            result = make_result(spec, finish_ps=1000 + i)
            writer.put_spec(spec, result)
            blobs.setdefault(spec.content_hash(), set()).add(
                canonical_result_blob(result))
        writer_a.close()
        writer_b.close()

        merged = FingerprintStore(root)
        assert merged.fingerprints() == frozenset(blobs)
        assert merged.corrupt_lines == 0
        for fp in sorted(blobs):
            assert canonical_result_blob(merged.get(fp)) in blobs[fp]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(records=st.lists(record_st, min_size=1, max_size=6))
def test_prop_refresh_is_incremental(records):
    """A long-lived reader refresh()ing between another writer's appends
    indexes exactly the records written so far, never re-reading old
    bytes into different results."""
    with tempfile.TemporaryDirectory() as root:
        reader = FingerprintStore(root)
        writer = FingerprintStore(root)
        seen: set[str] = set()
        for spec, finish_ps, stats in records:
            writer.put_spec(spec, make_result(spec, finish_ps=finish_ps,
                                              stats=stats))
            seen.add(spec.content_hash())
            reader.refresh()
            assert reader.fingerprints() == frozenset(seen)
        writer.close()
