"""Tests for the RunSpec batch API and the multiprocess campaign runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sim.cache import ResultCache
from repro.sim.campaign import BatchProgress, cross, run_batch
from repro.sim.driver import RunResult, run
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec

N = 512  #: small enough to keep the multiprocess tests quick

#: the campaign parity set: SIMT + MIMD + barrier variants
PAIRS = [("gpgpu", "count"), ("ssmc", "variance"), ("millipede", "count")]


def assert_same_simulation(a: RunResult, b: RunResult) -> None:
    """Bit-identical simulation outcome (host wall-clock may differ)."""
    assert a.arch == b.arch and a.workload == b.workload
    assert a.finish_ps == b.finish_ps
    assert a.n_records == b.n_records and a.input_words == b.input_words
    assert a.collected == b.collected
    assert a.stats == b.stats
    assert a.energy == b.energy
    assert set(a.reduced) == set(b.reduced)
    for key in a.reduced:
        assert np.array_equal(np.asarray(a.reduced[key]), np.asarray(b.reduced[key]))


class TestRunSpec:
    def test_roundtrip(self):
        spec = RunSpec("millipede-rm", "kmeans",
                       config=DEFAULT_CONFIG.with_dram(t_cas=10),
                       n_records=N, seed=3,
                       options=ExecOptions(validate=False))
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_hash_sensitive_to_fields(self):
        base = RunSpec("millipede", "count", n_records=N)
        assert base.content_hash() != base.replace(seed=1).content_hash()
        assert base.content_hash() != base.replace(arch="ssmc").content_hash()
        assert (base.content_hash() !=
                base.replace(config=DEFAULT_CONFIG.with_dram(t_cas=10)).content_hash())

    def test_unknown_arch_rejected(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            RunSpec("not-an-arch", "count")

    def test_bad_records_rejected(self):
        with pytest.raises(ValueError):
            RunSpec("millipede", "count", n_records=0)

    def test_derived_build_params(self):
        simt = RunSpec("gpgpu", "count")
        mimd = RunSpec("millipede-bar", "count")
        assert simt.traversal == "interleaved" and not simt.needs_barriers
        assert mimd.traversal == "chunked" and mimd.needs_barriers
        assert simt.n_threads == 128
        assert RunSpec("multicore", "count").n_threads == 32

    def test_run_accepts_spec(self):
        spec = RunSpec("millipede", "count", n_records=N)
        assert_same_simulation(run(spec), run("millipede", "count", n_records=N))

    def test_run_spec_rejects_extra_workload(self):
        with pytest.raises(TypeError):
            run(RunSpec("millipede", "count", n_records=N), "count")

    def test_config_dict_roundtrip(self):
        cfg = DEFAULT_CONFIG.with_millipede(rate_match=True).with_gpgpu(warp_width=16)
        assert SystemConfig.from_dict(cfg.as_canonical_dict()) == cfg
        with pytest.raises(KeyError):
            SystemConfig.from_dict({"nonsense": {}})


class TestRunBatch:
    def test_parallel_matches_serial(self):
        """workers=2 is bit-identical to one-at-a-time run()."""
        specs = [RunSpec(a, wl, n_records=N) for a, wl in PAIRS]
        batch = run_batch(specs, workers=2)
        for spec, result in zip(specs, batch):
            assert_same_simulation(result, run(spec))

    def test_results_align_with_specs(self):
        specs = cross(["ssmc", "millipede"], ["count"], n_records=N)
        batch = run_batch(specs, workers=1)
        assert [(r.arch, r.workload) for r in batch] == [
            ("ssmc", "count"), ("millipede", "count")
        ]

    def test_dedup_collapses_duplicates(self):
        spec = RunSpec("millipede", "count", n_records=N)
        events: list[BatchProgress] = []
        batch = run_batch([spec, spec.replace(), spec], workers=1,
                          progress=events.append)
        assert len(batch) == 3
        assert len(events) == 1 and not events[0].cached
        assert batch[0] is batch[1] is batch[2]

    def test_warm_cache_skips_all_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [RunSpec(a, wl, n_records=N) for a, wl in PAIRS]
        cold: list[BatchProgress] = []
        first = run_batch(specs, workers=1, cache=cache, progress=cold.append)
        assert sum(not e.cached for e in cold) == len(specs)

        warm: list[BatchProgress] = []
        second = run_batch(specs, workers=2, cache=cache, progress=warm.append)
        assert all(e.cached for e in warm)  # zero re-simulations
        for a, b in zip(first, second):
            assert a.finish_ps == b.finish_ps
            assert a.collected == b.collected

    def test_cached_progress_reports_zero_host_seconds(self, tmp_path):
        # regression: host_seconds promised "0-ish for cache hits" but
        # returned the original simulation's wall-clock, inflating
        # campaign ETA estimates on warm caches
        cache = ResultCache(tmp_path)
        spec = RunSpec("millipede", "count", n_records=N)
        cold: list[BatchProgress] = []
        run_batch([spec], workers=1, cache=cache, progress=cold.append)
        warm: list[BatchProgress] = []
        run_batch([spec], workers=1, cache=cache, progress=warm.append)
        assert not cold[0].cached and cold[0].host_seconds > 0
        assert cold[0].sim_host_seconds == cold[0].host_seconds
        assert warm[0].cached
        assert warm[0].host_seconds == 0.0  # this batch did no simulation
        assert warm[0].sim_host_seconds > 0  # the original run's wall-clock
        assert "cached" in str(warm[0])

    def test_progress_counts(self):
        specs = cross(["ssmc", "millipede"], ["count"], n_records=N)
        events: list[BatchProgress] = []
        run_batch(specs, workers=1, progress=events.append)
        assert [e.done for e in events] == [1, 2]
        assert all(e.total == 2 for e in events)
        assert "ssmc/count" in str(events[0])

    def test_unknown_workload_fails_fast(self):
        with pytest.raises(KeyError, match="unknown workload"):
            run_batch([RunSpec("millipede", "no-such-workload")])

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError):
            run_batch([("millipede", "count")])  # type: ignore[list-item]

    def test_heterogeneous_configs_in_one_batch(self):
        cfgs = [DEFAULT_CONFIG, DEFAULT_CONFIG.with_dram(t_cas=27)]
        specs = [RunSpec("millipede", "count", config=c, n_records=N) for c in cfgs]
        events: list[BatchProgress] = []
        batch = run_batch(specs, workers=1, progress=events.append)
        assert len(events) == 2  # different configs are not deduped
        assert batch[0].finish_ps != batch[1].finish_ps  # configs really differ


class TestLegacySurface:
    def test_run_legacy_signature_unchanged(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no DeprecationWarning on legacy path
            r = run("millipede", "count", n_records=N)
        assert r.validated

    def test_package_exports(self):
        import repro

        assert repro.RunSpec is RunSpec
        assert repro.run_batch is run_batch
        assert "RunSpec" in repro.__all__ and "run_batch" in repro.__all__

    def test_run_many_matches_batch(self):
        from repro.sim.driver import run_many

        many = run_many(["ssmc", "millipede"], "count", n_records=N)
        batch = run_batch(cross(["ssmc", "millipede"], ["count"], n_records=N))
        assert_same_simulation(many["ssmc"], batch[0])
        assert_same_simulation(many["millipede"], batch[1])
