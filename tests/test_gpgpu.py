"""SIMT-specific tests: divergence stacks, coalescing, shared memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.gpgpu import GpgpuSM, _Warp
from repro.config import SystemConfig
from repro.dram.dram import GlobalMemory
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.executor import ThreadContext
from repro.isa.program import Program


def make_sm(source: str, n_lanes=8, n_threads=2, width=None, mem_words=4096,
            config: SystemConfig | None = None):
    cfg = (config or SystemConfig()).with_core(n_cores=n_lanes, n_threads=n_threads)
    prog = Program.from_source(source)
    eng = Engine()
    stats = Stats()
    gm = GlobalMemory(mem_words)
    sm = GpgpuSM(eng, cfg, prog, gm, stats,
                 input_base_word=0, input_end_word=mem_words,
                 warp_width=width)
    return eng, sm, gm


DIVERGENT = """
    # lanes with odd r1 take one path, even the other
    andi r2, r1, 1
    beqz r2, even_path
    li   r3, 100
    j    join
even_path:
    li   r3, 200
join:
    halt
"""


class TestDivergence:
    def test_divergent_branch_executes_both_paths(self):
        eng, sm, _ = make_sm(DIVERGENT, n_lanes=8, n_threads=1, width=8)
        sm.set_thread_args([{1: t} for t in range(8)])
        sm.start()
        eng.run()
        assert sm.done
        assert sm.divergent_branches == 1
        lanes = sm.warps[0].lanes
        for t, ctx in enumerate(lanes):
            assert ctx.regs[3] == (100 if t % 2 else 200)

    def test_uniform_branch_does_not_diverge(self):
        eng, sm, _ = make_sm(DIVERGENT, n_lanes=8, n_threads=1, width=8)
        sm.set_thread_args([{1: 2 * t} for t in range(8)])  # all even
        sm.start()
        eng.run()
        assert sm.divergent_branches == 0
        assert all(ctx.regs[3] == 200 for ctx in sm.warps[0].lanes)

    def test_divergence_costs_extra_warp_instructions(self):
        def run_with(args):
            eng, sm, _ = make_sm(DIVERGENT, n_lanes=8, n_threads=1, width=8)
            sm.set_thread_args(args)
            sm.start()
            eng.run()
            return sm.warp_instructions

        uniform = run_with([{1: 0} for _ in range(8)])
        divergent = run_with([{1: t} for t in range(8)])
        assert divergent > uniform

    def test_nested_divergence_reconverges(self):
        src = """
            andi r2, r1, 1
            beqz r2, outer_else
            andi r3, r1, 2
            beqz r3, inner_else
            li   r4, 11
            j    inner_join
        inner_else:
            li   r4, 12
        inner_join:
            j    outer_join
        outer_else:
            li   r4, 20
        outer_join:
            addi r4, r4, 1000
            halt
        """
        eng, sm, _ = make_sm(src, n_lanes=8, n_threads=1, width=8)
        sm.set_thread_args([{1: t} for t in range(8)])
        sm.start()
        eng.run()
        assert sm.done
        for t, ctx in enumerate(sm.warps[0].lanes):
            if t % 2 == 0:
                expected = 1020
            elif t % 4 == 3:
                expected = 1011
            else:
                expected = 1012
            assert ctx.regs[4] == expected, f"lane {t}"

    def test_loop_with_divergent_trip_counts(self):
        """Lanes iterate r1 times; the warp must serialize correctly and
        every lane must end with r3 == r1."""
        src = """
            li r3, 0
        loop:
            bge r3, r1, done
            addi r3, r3, 1
            j loop
        done:
            halt
        """
        eng, sm, _ = make_sm(src, n_lanes=4, n_threads=1, width=4)
        sm.set_thread_args([{1: t} for t in (3, 7, 1, 5)])
        sm.start()
        eng.run()
        for ctx, n in zip(sm.warps[0].lanes, (3, 7, 1, 5)):
            assert ctx.regs[3] == n

    def test_divergent_halt_rejected(self):
        src = """
            beqz r1, stop
            nop
        stop:
            halt
        """
        # this program actually reconverges at halt; craft a truly divergent
        # halt via different paths both reaching halt only for some lanes is
        # structurally impossible with PDOM - so assert the reconvergence
        eng, sm, _ = make_sm(src, n_lanes=4, n_threads=1, width=4)
        sm.set_thread_args([{1: t % 2} for t in range(4)])
        sm.start()
        eng.run()
        assert sm.done


class TestMemoryPath:
    def test_coalesced_load(self):
        src = """
            add r2, r0, r1
            ldg r3, r2, 0
            halt
        """
        eng, sm, gm = make_sm(src, n_lanes=8, n_threads=1, width=8)
        gm.data[:8] = np.arange(8) * 2.0
        sm.set_thread_args([{1: t} for t in range(8)])
        sm.start()
        eng.run()
        # 8 consecutive words: one 128B-line transaction
        assert sm.mem_transactions == 1
        for t, ctx in enumerate(sm.warps[0].lanes):
            assert ctx.regs[3] == 2.0 * t

    def test_scattered_load_needs_more_transactions(self):
        src = """
            muli r2, r1, 64
            ldg r3, r2, 0
            halt
        """
        eng, sm, gm = make_sm(src, n_lanes=8, n_threads=1, width=8)
        sm.set_thread_args([{1: t} for t in range(8)])
        sm.start()
        eng.run()
        assert sm.mem_transactions > 1

    def test_shared_memory_private_per_thread(self):
        src = """
            stl r1, r0, 0
            ldl r4, r0, 0
            halt
        """
        eng, sm, _ = make_sm(src, n_lanes=8, n_threads=2, width=8)
        sm.set_thread_args([{1: 100 + t} for t in range(16)])
        sm.start()
        eng.run()
        for w in sm.warps:
            for ctx in w.lanes:
                assert ctx.regs[4] == 100 + ctx.tid

    def test_shared_memory_conflict_free_striping(self):
        eng, sm, _ = make_sm("halt", n_lanes=8, n_threads=2, width=8)
        addrs = [sm._translate_shared(g, (g * 13) % 32) for g in range(16)]
        banks = [a % sm.shared_mem.n_banks for a in addrs]
        assert len(set(banks)) == len(set(g % sm.shared_mem.n_banks for g in range(16)))

    def test_state_capacity_enforced(self):
        eng, sm, _ = make_sm("halt", n_lanes=8, n_threads=2, width=8)
        with pytest.raises(IndexError, match="partition"):
            sm._translate_shared(0, sm.state_words)


class TestWarpGeometry:
    def test_lane_count_must_divide(self):
        with pytest.raises(ValueError, match="divisible"):
            make_sm("halt", n_lanes=8, width=3)

    def test_narrow_warps_issue_in_parallel_slices(self):
        eng, sm, _ = make_sm("halt", n_lanes=8, n_threads=1, width=2)
        assert sm.issue_slots == 4
        assert len(sm.warps) == 4
