"""Property tests for the vectorized PDOM divergence engine.

Hypothesis generates kernels with random nested data-dependent branches
(optionally inside divergent bounded loops) and random per-lane inputs,
then drives them through two independent implementations of the SIMT
divergence discipline:

* the **vector** engine (:class:`repro.isa.vector._SimtMachine` via
  :func:`repro.isa.vector.execute_simt`), which executes warps at basic-
  block granularity over dense stack matrices and logs one entry per
  warp-block execution;
* a **scalar reference walker** defined here, a faithful transcription of
  ``GpgpuSM._exec_warp``'s stack discipline: one instruction at a time,
  per-lane interpretation via the reference executor, the exact push
  order on a divergent branch, and ``_pop_reconverged`` after *every*
  instruction.

The vector log is expanded to the per-issue stream (within a block the
mask is constant and only the top frame's PC advances — the property
under test) and must equal the reference stream *at every step*: same
PC, same active lane mask, and the same full reconvergence stack
(reconvergence PC, next PC, mask per frame).  This is the unit-level
guarantee beneath the end-to-end byte-identity suite in
``tests/test_backends.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.executor import ThreadContext, branch_taken, exec_non_memory
from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.isa.vector import execute_simt

_BEQ = int(Op.BEQ)
_BNEZ = int(Op.BNEZ)
_J = int(Op.J)
_HALT = int(Op.HALT)

N_REGS = 16
WIDTH = 4


# ----------------------------------------------------------------------
# scalar reference walker (GpgpuSM._exec_warp's stack discipline)
# ----------------------------------------------------------------------
def reference_stream(program, lane_args: list[dict[int, float]]):
    """Per-issue ``(pc, mask, stack)`` tuples for one warp, where
    ``stack`` is the tuple of (reconv_pc, next_pc, mask) frames *before*
    the instruction executes (the reference observer's view)."""
    width = len(lane_args)
    plen = len(program.instrs)
    full = (1 << width) - 1
    lanes = [ThreadContext(l, N_REGS) for l in range(width)]
    for ctx, args in zip(lanes, lane_args):
        ctx.set_args(args)
    stack: list[list[int]] = [[plen, 0, full]]

    def pop_reconverged():
        while len(stack) > 1 and stack[-1][1] == stack[-1][0]:
            stack.pop()

    stream = []
    for _ in range(200_000):
        top = stack[-1]
        pc, mask = top[1], top[2]
        stream.append((pc, mask, tuple((f[0], f[1], f[2]) for f in stack)))
        ins = program.instrs[pc]
        op = int(ins.op)
        active = [l for l in range(width) if (mask >> l) & 1]

        if _BEQ <= op <= _BNEZ:
            taken_mask = 0
            for l in active:
                if branch_taken(lanes[l], ins):
                    taken_mask |= 1 << l
            if taken_mask == mask:
                top[1] = ins.target
            elif taken_mask == 0:
                top[1] = pc + 1
            else:
                r = ins.reconv if ins.reconv is not None else plen
                top[1] = r
                stack.append([r, pc + 1, mask & ~taken_mask])
                stack.append([r, ins.target, taken_mask])
        elif op == _HALT:
            assert mask == full, "kernels must exit uniformly"
            assert len(stack) == 1, "halt with a deep stack"
            return stream
        elif op == _J:
            top[1] = ins.target
        else:
            for l in active:
                ctx = lanes[l]
                ctx.pc = pc
                exec_non_memory(ctx, ins)
            top[1] = pc + 1
        pop_reconverged()
    raise AssertionError("reference walker did not terminate")


def expand_issue_log(log, warp: int):
    """The vector engine's per-warp-block log entries, expanded to the
    per-issue stream: the mask is block-constant and only the top frame's
    next-PC advances within a block."""
    stream = []
    for wid, block_pc, n_instrs, mask, snap in log:
        if wid != warp:
            continue
        below = snap[:-1]
        reconv = snap[-1][0]
        for o in range(n_instrs):
            pc = block_pc + o
            stream.append((pc, mask, below + ((reconv, pc, mask),)))
    return stream


# ----------------------------------------------------------------------
# random divergent kernels
# ----------------------------------------------------------------------
@st.composite
def divergent_kernel(draw):
    """Assembly with nested data-dependent branches over r1/r2, optional
    divergent bounded loop, and ALU padding.  Always halts: loop counters
    strictly decrease and branch nesting is bounded."""
    n = [0]
    lines: list[str] = []

    def fresh(prefix: str) -> str:
        n[0] += 1
        return f"{prefix}{n[0]}"

    def pad():
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            rd = draw(st.sampled_from([3, 4, 5]))
            rs = draw(st.sampled_from([1, 3, 4, 5]))
            imm = draw(st.integers(min_value=0, max_value=3))
            lines.append(f"addi r{rd}, r{rs}, {imm}")

    def if_else(depth: int) -> None:
        pad()
        if depth < 3 and draw(st.booleans()):
            els, out = fresh("else_"), fresh("out_")
            rs = draw(st.sampled_from([1, 3]))
            thr = draw(st.integers(min_value=0, max_value=6))
            lines.append(f"slti r6, r{rs}, {thr}")
            lines.append(f"beqz r6, {els}")
            if_else(depth + 1)
            lines.append(f"j {out}")
            lines.append(f"{els}:")
            if_else(depth + 1)
            lines.append(f"{out}:")
        pad()

    if draw(st.booleans()):
        # divergent bounded loop: r2 holds a per-lane trip count >= 1,
        # so lanes fall out at different iterations (divergent backward
        # branch) and reconverge at the loop exit
        head = fresh("loop_")
        lines.append(f"{head}:")
        if_else(0)
        lines.append("addi r2, r2, -1")
        lines.append(f"bnez r2, {head}")
        if_else(0)
    else:
        if_else(0)
        if not lines:
            lines.append("addi r3, r1, 1")
    lines.append("halt")

    args = [
        {1: draw(st.integers(min_value=0, max_value=6)),
         2: draw(st.integers(min_value=1, max_value=3))}
        for _ in range(WIDTH)
    ]
    return "\n".join(lines), args


class TestPdomEngineMatchesReference:
    @given(divergent_kernel())
    @settings(max_examples=150, deadline=None)
    def test_issue_stream_identical(self, case):
        source, args = case
        program = Program.from_source(source)
        log: list = []
        execute_simt(program, np.zeros(1), args, N_REGS,
                     state_words=4, width=WIDTH, issue_log=log)
        got = expand_issue_log(log, warp=0)
        want = reference_stream(program, args)
        assert len(got) == len(want), (
            f"{len(got)} vector issues vs {len(want)} reference after:\n"
            f"{source}")
        for i, (g, w) in enumerate(zip(got, want)):
            assert g == w, (
                f"issue {i}: vector (pc, mask, stack) {g} != reference {w} "
                f"after:\n{source}")

    @given(divergent_kernel(), st.integers(min_value=2, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_multiple_warps_independent(self, case, n_warps):
        """Warps share nothing: each warp's expanded stream must match a
        reference walk over its own lanes, whatever the interleaving of
        the engine's most-populated-PC grouping."""
        source, args = case
        program = Program.from_source(source)
        all_args = [
            {r: v + (w if r == 1 else 0) for r, v in lane.items()}
            for w in range(n_warps) for lane in args
        ]
        log: list = []
        execute_simt(program, np.zeros(1), all_args, N_REGS,
                     state_words=4, width=WIDTH, issue_log=log)
        for w in range(n_warps):
            lane_args = all_args[w * WIDTH:(w + 1) * WIDTH]
            assert expand_issue_log(log, w) == reference_stream(
                program, lane_args), f"warp {w} diverges after:\n{source}"
