"""Tests for the MapReduce host/cluster layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce.framework import MapReduceJob
from repro.mapreduce.host import host_reduce, node_reduce_seconds
from repro.mapreduce.shuffle import ClusterModel


class TestHostReduce:
    def test_elementwise_sum(self):
        states = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        assert np.array_equal(host_reduce(states), [4.0, 6.0])

    def test_node_reduce_time_scales(self):
        small = node_reduce_seconds(64, 128)
        big = node_reduce_seconds(256, 4096)
        assert big > small
        # the paper: hundreds of microseconds for a full node
        assert node_reduce_seconds(256, 4096) < 5e-3


class TestClusterModel:
    def test_tree_depth(self):
        assert ClusterModel(n_nodes=1).tree_depth() == 0
        assert ClusterModel(n_nodes=16, fanin=16).tree_depth() == 1
        assert ClusterModel(n_nodes=5000, fanin=16).tree_depth() == 4

    def test_final_reduce_tens_of_milliseconds_scale(self):
        """Section IV-D: 'the global final Reduce across 5000 nodes of a
        cluster takes tens of milliseconds' - for a realistically-sized
        state blob our model lands at or below that scale."""
        c = ClusterModel(n_nodes=5000)
        t = c.final_reduce_seconds(state_bytes=1 << 20)  # 1 MB reduced state
        assert 1e-4 < t < 0.1

    def test_shuffle_bytes(self):
        c = ClusterModel(n_nodes=10)
        assert c.shuffle_bytes(100) == 900


class TestMapReduceJob:
    @pytest.fixture(scope="class")
    def job_result(self):
        job = MapReduceJob("count", arch="millipede", cluster=ClusterModel(n_nodes=100))
        return job.execute(records_per_node=2048)

    def test_node_result_validated(self, job_result):
        assert job_result.node.run_result.validated
        assert job_result.node.map_seconds > 0

    def test_final_scales_additive_fields(self, job_result):
        node_counts = np.asarray(job_result.node.reduced["counts"])
        final_counts = np.asarray(job_result.final["counts"])
        assert np.array_equal(final_counts, node_counts * 100)

    def test_total_time_composition(self, job_result):
        assert job_result.total_seconds == pytest.approx(
            job_result.node.node_seconds + job_result.final_reduce_seconds
        )

    def test_map_dominates_at_scale(self, job_result):
        """At full (128 MB/node) scale Map time dwarfs the final Reduce;
        extrapolate the measured per-word Map rate."""
        words_full = 128 * 1024 * 1024 // 4
        map_full = words_full / job_result.node.run_result.throughput_words_per_s
        assert map_full > 100 * job_result.final_reduce_seconds
