"""repro.api: the coherent entry-point facade.

One import gives the three ways to run simulations, all speaking the
same vocabulary — a *what* (arch, workload, config, n_records, seed) and
a *how* (:class:`~repro.sim.options.ExecOptions`):

>>> from repro import api
>>> from repro.sim.options import ExecOptions
>>> r = api.run("millipede", "count", n_records=2048)       # doctest: +SKIP
>>> fast = ExecOptions(backend="vector")
>>> r = api.run("millipede", "count", options=fast)         # doctest: +SKIP
>>> grid = api.sweep(["ssmc", "millipede"], ["count", "kmeans"],
...                  options=fast, workers=4)               # doctest: +SKIP
>>> grid[("millipede", "count")].validated                  # doctest: +SKIP
True

Execution options travel as one frozen value instead of a trail of
boolean arguments, so adding an axis (as the ``backend`` axis was) never
widens these signatures again.  The pre-redesign entry points —
:func:`repro.sim.driver.run`, :func:`repro.sim.driver.run_many`, and
:func:`repro.experiments.common.cached_run` — remain as compatibility
shims over the same machinery; new code should start here.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from pathlib import Path

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sim.cache import ResultCache
from repro.sim.campaign import (
    CampaignReport,
    coerce_store,
    run_batch as _campaign_run_batch,
    run_campaign as _campaign_run_campaign,
)
from repro.sim.driver import RunResult, run as _driver_run
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.sim.store import DEFAULT_LEASE_S, FingerprintStore
from repro.workloads.base import Workload
from repro.workloads.registry import workload_names

__all__ = [
    "CampaignReport",
    "ExecOptions",
    "FingerprintStore",
    "RunSpec",
    "RunResult",
    "run",
    "run_batch",
    "run_campaign",
    "sweep",
]


def run(
    arch: Union[str, RunSpec],
    workload: Union[str, Workload, None] = None,
    *,
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    options: Optional[ExecOptions] = None,
) -> RunResult:
    """Simulate one configuration and validate the result.

    ``run(RunSpec(...))`` runs a prepared spec; ``run(arch, workload)``
    builds one from the *what* arguments plus ``options`` (defaulting to
    ``ExecOptions()``: validated, reference backend, no sanitizer/tracer).
    """
    if isinstance(arch, RunSpec):
        if options is not None:
            raise TypeError(
                "run(RunSpec) carries its own options; "
                "use spec.replace(options=...) to change them"
            )
        return _driver_run(arch)
    return _driver_run(
        arch, workload, config=config, n_records=n_records, seed=seed,
        options=options if options is not None else ExecOptions(),
    )


def run_batch(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: "FingerprintStore | Path | str | None" = None,
    progress=None,
) -> list[RunResult]:
    """Run many specs with dedup, optional result tiers, and fan-out.

    Results come back in ``specs`` order.  ``cache`` is the session tier
    (:class:`ResultCache`); ``store`` is the durable tier (a
    :class:`FingerprintStore` or its directory path) - completed
    fingerprints are served from it and fresh results appended to it.
    Pass one or the other, not both.  This is
    :func:`repro.sim.campaign.run_batch` re-exported under the facade;
    see that module for the dedup/cache/progress contract.
    """
    owned_store = None
    if store is not None:
        if cache is not None:
            raise TypeError("pass either cache= (session tier) or "
                            "store= (durable tier), not both")
        if not isinstance(store, FingerprintStore):
            # created for this call: close its segment fd before returning
            owned_store = coerce_store(store)
            cache = owned_store
        else:
            cache = store
    elif cache is not None and not isinstance(cache, ResultCache):
        raise TypeError(
            f"cache must be a ResultCache or None, got {type(cache).__name__}"
            " (caching is off by default; pass a ResultCache to enable it,"
            " or a FingerprintStore via store= for the durable tier)"
        )
    try:
        return _campaign_run_batch(specs, workers=workers, cache=cache,
                                   progress=progress)
    finally:
        if owned_store is not None:
            owned_store.write_index()
            owned_store.close()


def run_campaign(
    specs: Sequence[RunSpec],
    store: "FingerprintStore | Path | str",
    *,
    workers: int = 1,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    name: Optional[str] = None,
    progress=None,
    steal: Optional[bool] = None,
    lease_s: float = DEFAULT_LEASE_S,
) -> CampaignReport:
    """Run a persistent, resumable, shard-able campaign (docs/campaigns.md).

    :func:`repro.sim.campaign.run_campaign` re-exported under the facade:
    results land in the durable :class:`FingerprintStore`, a manifest
    checkpoints the plan, already-recorded fingerprints are not
    re-simulated (``resume``), and ``shard=(i, n)`` splits the campaign
    across independent processes that merge through the shared store.
    Sharded campaigns **work-steal** by default (``steal=None`` means
    "steal iff sharded"): the slice is an initial-order hint, pending
    fingerprints are claimed through atomic lease files (``lease_s``),
    and an idle shard picks up a straggler's or a dead shard's work.
    ``steal=False`` restores the static hard-assignment split.
    """
    return _campaign_run_campaign(specs, store, workers=workers, shard=shard,
                                  resume=resume, name=name, progress=progress,
                                  steal=steal, lease_s=lease_s)


def sweep(
    arches: Sequence[str],
    workloads: Optional[Sequence[str]] = None,
    *,
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    options: Optional[ExecOptions] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: "FingerprintStore | Path | str | None" = None,
) -> dict[tuple[str, str], RunResult]:
    """Run the arch × workload cross product; results keyed ``(arch, wl)``.

    ``workloads`` defaults to all eight registered benchmarks.  The grid
    is workload-major (the figures' iteration order) and shares
    :func:`run_batch`'s dedup/cache/store machinery.
    """
    if workloads is None:
        workloads = workload_names()
    opts = options if options is not None else ExecOptions()
    specs = [
        RunSpec(a, wl, config=config, n_records=n_records, seed=seed,
                options=opts)
        for wl in workloads
        for a in arches
    ]
    results = run_batch(specs, workers=workers, cache=cache, store=store)
    return {(s.arch, s.workload): r for s, r in zip(specs, results)}
