"""Shared experiment plumbing: cached sweeps, tables, ASCII charts."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sim.cache import ResultCache
from repro.sim.campaign import cross, run_batch, run_campaign
from repro.sim.driver import RunResult
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.sim.store import FingerprintStore
from repro.workloads.registry import workload_names

#: benchmark order used on every figure's x axis (the paper orders by
#: instructions per input word; we use the paper's Table IV order and
#: report our measured insts/word alongside)
BENCHES = workload_names()

#: Fig. 3 architecture set, in the paper's legend order
FIG3_ARCHES = ["gpgpu", "vws", "ssmc", "millipede-nofc", "vws-row", "millipede"]
#: Fig. 4 adds the rate-matched Millipede
FIG4_ARCHES = ["gpgpu", "vws", "vws-row", "ssmc", "millipede", "millipede-rm"]


def _trace_progress(trace_dir: Optional["Path | str"]):
    """A TraceWriter progress callback for ``run_batch`` (or None)."""
    if trace_dir is None:
        return None
    from repro.trace import TraceWriter

    return TraceWriter(trace_dir)


class ShardIncomplete(RuntimeError):
    """A sharded campaign ran its slice, but the merged result set is not
    yet complete - the experiment's table cannot be assembled.  Carries
    the campaign accounting so the CLI can report progress instead."""

    def __init__(self, name: str, have: int, total: int,
                 shard: Optional[tuple[int, int]], simulated: int):
        self.name = name
        self.have = have  #: fingerprints now in the store
        self.total = total  #: unique fingerprints in the whole campaign
        self.shard = shard
        self.simulated = simulated  #: specs this process simulated
        tag = f"shard {shard[0]}/{shard[1]}" if shard else "campaign"
        super().__init__(
            f"{name}: {tag} done ({simulated} simulated); store holds "
            f"{have}/{total} campaign specs - run the remaining shards "
            f"against the same --store, then re-run to merge"
        )


def _run_specs(
    specs: Sequence[RunSpec],
    cache: Optional[ResultCache],
    workers: int,
    progress,
    store: "FingerprintStore | Path | str | None" = None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    campaign: Optional[str] = None,
    steal: Optional[bool] = None,
) -> list[RunResult]:
    """One dispatch point for every experiment: the plain cached batch, or
    (with ``store``) a durable resume/shard-able campaign (work-stealing
    by default when sharded; ``steal=False`` for the static split).
    Raises :class:`ShardIncomplete` when other shards still owe results."""
    if store is None:
        if shard is not None:
            raise ValueError("sharding requires a persistent store "
                             "(pass store=, or --store on the CLI)")
        return run_batch(specs, workers=workers, cache=cache,
                         progress=progress)
    report = run_campaign(specs, store, workers=workers, shard=shard,
                          resume=resume, name=campaign, progress=progress,
                          steal=steal)
    gathered = report.gather(specs)
    if any(r is None for r in gathered):
        have = report.plan.campaign_total - len(report.missing(specs))
        raise ShardIncomplete(report.name, have, report.plan.campaign_total,
                              shard, report.misses)
    return gathered


def cached_run(
    arch: str,
    workload: str,
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    cache: Optional[ResultCache] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir: Optional["Path | str"] = None,
    backend: str = "reference",
    options: Optional[ExecOptions] = None,
    store: "FingerprintStore | Path | str | None" = None,
) -> RunResult:
    """`run` with optional disk caching keyed on the full configuration.

    ``options`` supersedes the flat ``sanitize``/``trace``/``backend``
    shims (mixing the two is an error).  ``store`` swaps the session
    cache for the durable fingerprint store."""
    if options is None:
        options = ExecOptions(sanitize=sanitize, trace=trace, backend=backend)
    elif (sanitize, trace, backend) != (False, False, "reference"):
        raise TypeError("cached_run(): pass either options= or flat flags, not both")
    spec = RunSpec(arch, workload, config=config, n_records=n_records, seed=seed,
                   options=options)
    writer = _trace_progress(trace_dir if options.trace else None)
    out = _run_specs([spec], cache, 1, writer, store=store)[0]
    if writer is not None:
        writer.finish()
    return out


def batch_run(
    specs: Sequence[RunSpec],
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    trace_dir: Optional["Path | str"] = None,
    store: "FingerprintStore | Path | str | None" = None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    campaign: Optional[str] = None,
    steal: Optional[bool] = None,
) -> dict[RunSpec, RunResult]:
    """`run_batch` returning a spec -> result mapping (experiment modules
    index results by (arch, workload) via their spec objects).  With
    ``trace_dir`` set, every traced result's artifacts plus a campaign
    ``index.json`` are written there as results land.  With ``store``
    set, results persist in the fingerprint store and ``shard``/``resume``
    /``steal`` gain their campaign semantics (docs/campaigns.md)."""
    writer = _trace_progress(trace_dir)
    results = _run_specs(specs, cache, workers, writer, store=store,
                         shard=shard, resume=resume, campaign=campaign,
                         steal=steal)
    if writer is not None:
        writer.finish()
    return dict(zip(specs, results))


def sweep(
    arches: Sequence[str],
    benches: Sequence[str] = BENCHES,
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    seed: int = 0,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir: Optional["Path | str"] = None,
    backend: str = "reference",
    options: Optional[ExecOptions] = None,
    store: "FingerprintStore | Path | str | None" = None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    campaign: Optional[str] = None,
    steal: Optional[bool] = None,
) -> dict[str, dict[str, RunResult]]:
    """results[workload][arch] for the full cross product.

    ``options`` supersedes the flat ``sanitize``/``trace``/``backend``
    shims (mixing the two is an error).  ``store``/``shard``/``resume``
    /``steal`` run the sweep as a persistent campaign (docs/campaigns.md)."""
    if options is None:
        options = ExecOptions(sanitize=sanitize, trace=trace, backend=backend)
    elif (sanitize, trace, backend) != (False, False, "reference"):
        raise TypeError("sweep(): pass either options= or flat flags, not both")
    specs = cross(arches, benches, config=config, n_records=n_records, seed=seed,
                  options=options)
    writer = _trace_progress(trace_dir if options.trace else None)
    results = _run_specs(specs, cache, workers, writer, store=store,
                         shard=shard, resume=resume, campaign=campaign,
                         steal=steal)
    if writer is not None:
        writer.finish()
    out: dict[str, dict[str, RunResult]] = {wl: {} for wl in benches}
    for spec, result in zip(specs, results):
        out[spec.workload][spec.arch] = result
    return out


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


# ----------------------------------------------------------------------
# formatting
# ----------------------------------------------------------------------
def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = "{:.2f}") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(cell):
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), sep] + [line(r) for r in cells])


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = "{:.2f}") -> str:
    def fmt(cell):
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(out)


def ascii_bars(labels: Sequence[str], values: Sequence[float], width: int = 40,
               unit: str = "x") -> str:
    """Horizontal ASCII bar chart (for figure-shaped results)."""
    top = max(values) if values else 1.0
    lines = []
    for label, v in zip(labels, values):
        n = int(round(v / top * width)) if top else 0
        lines.append(f"{label:>16s} |{'#' * n:<{width}s}| {v:.2f}{unit}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Uniform container every experiment module returns."""

    name: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    extra_sections: list[str] = field(default_factory=list)

    def text(self) -> str:
        parts = [f"== {self.title} ==", format_table(self.headers, self.rows)]
        parts += self.extra_sections
        parts += [f"note: {n}" for n in self.notes]
        return "\n\n".join(parts)

    def markdown(self) -> str:
        parts = [f"### {self.title}", markdown_table(self.headers, self.rows)]
        for s in self.extra_sections:
            parts.append("```\n" + s + "\n```")
        for n in self.notes:
            parts.append(f"*{n}*")
        return "\n\n".join(parts)


def default_cache() -> ResultCache:
    return ResultCache(Path(".repro_cache"))
