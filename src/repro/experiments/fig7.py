"""Fig. 7: Millipede's sensitivity to the prefetch-buffer entry count
(section VI-E).

The buffers decouple the corelets by absorbing temporary work imbalance:
more entries absorb more straying, with diminishing returns that level off
around 32 entries.  We sweep 2/4/8/16/32 entries and normalize each
benchmark to its 2-entry configuration.  The ``varwork`` stress kernel
(high per-record work variance) is included because the paper's straying
develops over billions of records - at scaled-down inputs it shows the
sensitivity most clearly.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import ExperimentResult, batch_run, geomean
from repro.sim.cache import ResultCache
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec

ENTRY_COUNTS = [2, 4, 8, 16, 32]
#: a representative slice: the two lightest, one medium, one heavy, plus
#: the high-variance stress kernel
FIG7_BENCHES = ["count", "sample", "nbayes", "kmeans", "varwork"]


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    opts = ExecOptions(sanitize=sanitize, trace=trace, backend=backend)
    specs = {}
    for entries in ENTRY_COUNTS:
        cfg = config.with_millipede(
            prefetch_entries=entries,
            prefetch_ahead=min(config.millipede.prefetch_ahead, entries - 1) if entries > 1 else 1,
        )
        for wl in FIG7_BENCHES:
            specs[entries, wl] = RunSpec("millipede", wl, config=cfg,
                                         n_records=n_records, options=opts)
    batch = batch_run(list(specs.values()), cache=cache, workers=workers,
                      trace_dir=trace_dir if trace else None, store=store,
                      shard=shard, resume=resume, campaign="fig7",
                      steal=steal)
    tput: dict[str, dict[int, float]] = {wl: {} for wl in FIG7_BENCHES}
    for (entries, wl), spec in specs.items():
        tput[wl][entries] = batch[spec].throughput_words_per_s

    rows = []
    for wl in FIG7_BENCHES:
        base = tput[wl][ENTRY_COUNTS[0]]
        rows.append([wl] + [tput[wl][e] / base for e in ENTRY_COUNTS])
    rows.append(["geomean"] + [
        geomean([r[1 + i] for r in rows]) for i in range(len(ENTRY_COUNTS))
    ])

    g = rows[-1][1:]
    monotone = all(b >= a - 0.02 for a, b in zip(g, g[1:]))
    levels_off = (g[-1] - g[-2]) <= (g[2] - g[1]) + 0.02
    return ExperimentResult(
        name="fig7",
        title="Fig. 7 - Millipede speedup vs prefetch-buffer entries (normalized to 2 entries)",
        headers=["benchmark"] + [f"{e} entries" for e in ENTRY_COUNTS],
        rows=rows,
        notes=[
            "expected shape: monotone improvement, levelling off by 32 "
            f"entries - measured: monotone={monotone}, levels_off={levels_off}",
        ],
    )
