"""Fig. 4: energy normalized to GPGPU, with core/DRAM/leakage breakdown.

Paper result: Millipede-with-rate-matching dissipates 27% less energy than
GPGPU and 36% less than SSMC; rate matching cuts Millipede's core energy
~16%; GPGPU has higher *core* energy than SSMC (shared-memory crossbar +
divergence idle) but lower *DRAM* energy (SIMT row locality); SSMC's DRAM
energy stays high even for the compute-bound pca/gda ("row misses can be
hidden in execution time but not in energy").
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import (
    BENCHES,
    FIG4_ARCHES,
    ExperimentResult,
    ascii_bars,
    geomean,
    sweep,
)
from repro.sim.cache import ResultCache

PAPER_MILLIPEDE_VS_GPGPU = 0.73  # 27% less
PAPER_MILLIPEDE_VS_SSMC = 0.64   # 36% less
PAPER_RATE_MATCH_CORE_SAVING = 0.16


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    results = sweep(FIG4_ARCHES, BENCHES, config, n_records, cache,
                    workers=workers, sanitize=sanitize, trace=trace,
                    trace_dir=trace_dir, backend=backend, store=store,
                    shard=shard, resume=resume, campaign="fig4",
                    steal=steal)

    rows = []
    for wl in BENCHES:
        base = results[wl]["gpgpu"].energy.total_j
        row = [wl]
        for a in FIG4_ARCHES:
            e = results[wl][a].energy
            row.append(e.total_j / base)
        rows.append(row)
    means = ["geomean"] + [
        geomean([r[1 + i] for r in rows]) for i in range(len(FIG4_ARCHES))
    ]
    rows.append(means)

    # component breakdown (geomean across benchmarks, normalized to gpgpu)
    breakdown_rows = []
    for a in FIG4_ARCHES:
        core = geomean([
            results[wl][a].energy.core_j / results[wl]["gpgpu"].energy.total_j
            for wl in BENCHES
        ])
        dram = geomean([
            results[wl][a].energy.dram_j / results[wl]["gpgpu"].energy.total_j
            for wl in BENCHES
        ])
        leak = geomean([
            results[wl][a].energy.leakage_j / results[wl]["gpgpu"].energy.total_j
            for wl in BENCHES
        ])
        breakdown_rows.append([a, core, dram, leak, core + dram + leak])

    from repro.experiments.common import format_table

    breakdown = format_table(
        ["arch", "core", "dram", "leakage", "total"], breakdown_rows
    )

    mill_rm = means[1 + FIG4_ARCHES.index("millipede-rm")]
    ssmc = means[1 + FIG4_ARCHES.index("ssmc")]
    mill = means[1 + FIG4_ARCHES.index("millipede")]
    core_saving = 1 - geomean([
        results[wl]["millipede-rm"].energy.core_j
        / results[wl]["millipede"].energy.core_j
        for wl in BENCHES
    ])

    bars = ascii_bars(FIG4_ARCHES, means[1:], unit="x gpgpu energy")

    return ExperimentResult(
        name="fig4",
        title="Fig. 4 - energy normalized to GPGPU (lower is better)",
        headers=["benchmark"] + FIG4_ARCHES,
        rows=rows,
        extra_sections=[bars, "component breakdown (geomean, normalized to gpgpu total):\n" + breakdown],
        notes=[
            f"measured: millipede-rm = {mill_rm:.2f}x gpgpu energy "
            f"(paper {PAPER_MILLIPEDE_VS_GPGPU:.2f}x), "
            f"{mill_rm / ssmc:.2f}x ssmc (paper {PAPER_MILLIPEDE_VS_SSMC:.2f}x)",
            f"rate matching cuts Millipede core energy {core_saving * 100:.0f}% "
            f"(paper {PAPER_RATE_MATCH_CORE_SAVING * 100:.0f}%)",
        ],
    )
