"""Experiment CLI.

Examples::

    python -m repro.experiments table4
    python -m repro.experiments fig3 --records 8192 --jobs 4
    python -m repro.experiments all --records 16384 --write-md
    millipede-exp fig7 --no-cache
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.config import DEFAULT_CONFIG
from repro.experiments import EXPERIMENTS
from repro.experiments.common import ShardIncomplete, default_cache
from repro.experiments.report import write_markdown
from repro.sim.campaign import parse_shard
from repro.sim.store import FingerprintStore


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    p.add_argument(
        "which",
        choices=list(EXPERIMENTS) + ["all"],
        help="experiment to run",
    )
    p.add_argument(
        "--records",
        type=int,
        default=None,
        help="records per benchmark (default: each workload's default size)",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per experiment batch (default 1 = serial; "
        "0 = one per CPU); results are bit-identical for any N",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="run every simulation under repro.sanitize runtime invariant "
        "checking (same results, slower; violations abort with a snapshot)",
    )
    p.add_argument(
        "--trace",
        metavar="DIR",
        nargs="?",
        const="traces",
        default=None,
        help="attach repro.trace to every simulation and write Chrome "
        "trace-event JSON + timeline/profile CSVs per run, plus a "
        "campaign index.json, under DIR (default: traces/); same "
        "results, slower, and traced runs bypass the result cache",
    )
    p.add_argument(
        "--backend",
        choices=["reference", "calendar", "vector"],
        default="reference",
        help="execution backend for every simulation (docs/backends.md); "
        "all three produce bit-identical results - 'vector' replays "
        "NumPy-batched instruction traces and 'calendar' swaps the event "
        "heap for a calendar queue, both for wall-clock speed",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent fingerprint store (docs/campaigns.md): completed "
        "specs are recorded durably under DIR and never re-simulated - a "
        "killed run resumes where its store left off, independent "
        "processes/hosts merge through the same DIR, and after a config "
        "change only specs whose fingerprints changed are re-simulated; "
        "supersedes the session result cache",
    )
    p.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --store: serve fingerprints already in the store "
        "(default); --no-resume re-simulates every spec while still "
        "recording the fresh results",
    )
    p.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="with --store: run the I-th of N round-robin slices of the "
        "campaign's deduplicated spec list (1-based, e.g. 2/3); shards "
        "merge through the shared store, and the table prints once "
        "every shard's work is recorded; by default the slice is a "
        "work-stealing hint (see --steal)",
    )
    p.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="with --store: claim pending specs through atomic lease "
        "files so an idle shard steals a straggler's (or a killed "
        "shard's) unclaimed work (default: on whenever --shard is "
        "given); --no-steal restores the static hard-assignment split",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="re-simulate even if a cached result exists",
    )
    p.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop the on-disk result cache first",
    )
    p.add_argument(
        "--write-md",
        metavar="PATH",
        nargs="?",
        const="EXPERIMENTS.md",
        default=None,
        help="also write a markdown report (default path: EXPERIMENTS.md)",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one worker per CPU)")
    shard = None
    if args.shard is not None:
        if args.store is None:
            parser.error("--shard requires --store (shards merge through "
                         "the shared fingerprint store)")
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            parser.error(str(exc))
    if args.steal is not None and args.store is None:
        parser.error("--steal/--no-steal requires --store (leases live in "
                     "the shared fingerprint store)")
    # one store instance for the whole invocation (experiments share its
    # segment), closed before exiting - no leaked descriptors
    store = FingerprintStore(args.store) if args.store is not None else None
    # the durable store supersedes the session cache: one result tier
    cache = None if (args.no_cache or store is not None) else default_cache()
    if args.clear_cache and cache is not None:
        n = cache.clear()
        print(f"cleared {n} cached results")

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    names = list(EXPERIMENTS) if args.which == "all" else [args.which]
    trace_dir = Path(args.trace) if args.trace is not None else None
    results = []
    incomplete = []
    try:
        for name in names:
            t0 = time.perf_counter()
            try:
                res = EXPERIMENTS[name].run_experiment(
                    DEFAULT_CONFIG, n_records=args.records, cache=cache,
                    workers=jobs,
                    sanitize=args.sanitize,
                    trace=trace_dir is not None,
                    trace_dir=trace_dir / name if trace_dir is not None else None,
                    backend=args.backend,
                    store=store,
                    shard=shard,
                    resume=args.resume,
                    steal=args.steal,
                )
            except ShardIncomplete as exc:
                incomplete.append(name)
                print(f"== {name}: {exc}\n")
                continue
            results.append(res)
            print(res.text())
            print(f"[{name} took {time.perf_counter() - t0:.1f}s]\n")
    finally:
        if store is not None:
            store.close()
    if trace_dir is not None:
        print(f"trace artifacts under {trace_dir}/ (load the *.trace.json "
              "files in chrome://tracing or https://ui.perfetto.dev)")
    if incomplete:
        print(f"{len(incomplete)} campaign(s) not yet merged "
              f"({', '.join(incomplete)}); store: {store.root} "
              f"({len(store)} records)")

    if args.write_md:
        path = write_markdown(results, Path(args.write_md))
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
