"""Table IV: benchmark parameters and characteristics.

Columns (paper): instructions per input word, branches per instruction,
SSMC's row miss rate, and Millipede's rate-matched clock.  We measure all
four on the same runs the figures use and print them next to the paper's
values.  Absolute instruction counts differ (different ISA and kernels);
the *orderings* - branchiness falling and row-miss rate rising with
insts/word, rate-matched clock rising with insts/word - are the
reproduced result.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import BENCHES, ExperimentResult, batch_run
from repro.sim.cache import ResultCache
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec

#: the paper's Table IV
PAPER = {
    "count":    dict(insts=7,   br=0.14,  miss=0.253, clock=544),
    "sample":   dict(insts=10,  br=0.2,   miss=0.162, clock=528),
    "variance": dict(insts=12,  br=0.08,  miss=0.351, clock=581),
    "nbayes":   dict(insts=14,  br=0.11,  miss=0.344, clock=565),
    "classify": dict(insts=40,  br=0.05,  miss=0.393, clock=625),
    "kmeans":   dict(insts=44,  br=0.05,  miss=0.384, clock=613),
    "pca":      dict(insts=150, br=0.02,  miss=0.489, clock=644),
    "gda":      dict(insts=180, br=0.015, miss=0.497, clock=644),
}


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    opts = ExecOptions(sanitize=sanitize, trace=trace, backend=backend)
    specs = {
        (a, wl): RunSpec(a, wl, config=config, n_records=n_records,
                         options=opts)
        for wl in BENCHES
        for a in ("ssmc", "millipede-rm")
    }
    results = batch_run(list(specs.values()), cache=cache, workers=workers,
                        trace_dir=trace_dir if trace else None, store=store,
                        shard=shard, resume=resume, campaign="table4",
                        steal=steal)
    rows = []
    for wl in BENCHES:
        ssmc = results[specs["ssmc", wl]]
        rm = results[specs["millipede-rm", wl]]
        p = PAPER[wl]
        clock_mhz = rm.collected.get("rate_match_mean_hz", config.core.clock_hz) / 1e6
        rows.append([
            wl,
            rm.insts_per_word, p["insts"],
            rm.branches_per_inst, p["br"],
            ssmc.row_miss_rate, p["miss"],
            clock_mhz, p["clock"],
        ])
    return ExperimentResult(
        name="table4",
        title="Table IV - benchmark parameters and characteristics (measured | paper)",
        headers=[
            "benchmark",
            "insts/word", "paper",
            "br/inst", "paper",
            "SSMC rowmiss", "paper",
            "RM clock MHz", "paper",
        ],
        rows=rows,
        notes=[
            "Kernels are reimplemented in the reproduction ISA, so absolute "
            "insts/word differ from the paper's CUDA builds; the orderings "
            "(branchiness falls, row-miss rate and rate-matched clock rise "
            "with compute intensity) are the reproduced characteristics.",
        ],
    )
