"""Fig. 5: Millipede versus a conventional multicore (section VI-C).

The paper compares a full 32-processor Millipede node (4096 corelet
threads, 32 die-stacked channels) against an 8-core, 3.6 GHz, 4-wide OoO
multicore with off-chip memory at one-fourth the bandwidth and 70 pJ/bit.
Reported: most of the ~order-of-magnitude speedup comes from thread count,
most of the energy gain from clock speed and off-chip access energy; the
average energy-delay advantage is ~125x.

We simulate one Millipede processor and scale throughput by the processor
count (Map tasks share nothing and each processor owns a private channel -
the paper's own scaling argument), then add the measured host-side
per-node reduce cost from the MapReduce model.  The multicore node is
simulated directly.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import BENCHES, ExperimentResult, batch_run, geomean
from repro.mapreduce.host import node_reduce_seconds
from repro.sim.cache import ResultCache
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec

PAPER_ENERGY_DELAY = 125.0


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    opts = ExecOptions(sanitize=sanitize, trace=trace, backend=backend)
    specs = {
        (a, wl): RunSpec(a, wl, config=config, n_records=n_records,
                         options=opts)
        for wl in BENCHES
        for a in ("millipede-rm", "multicore")
    }
    results = batch_run(list(specs.values()), cache=cache, workers=workers,
                        trace_dir=trace_dir if trace else None, store=store,
                        shard=shard, resume=resume, campaign="fig5",
                        steal=steal)
    rows = []
    speedups, energy_gains, ed_gains = [], [], []
    n_proc = config.n_processors
    for wl in BENCHES:
        mill = results[specs["millipede-rm", wl]]
        mc = results[specs["multicore", wl]]

        # node-level Millipede: n_proc processors, private channels
        mill_node_tput = mill.throughput_words_per_s * n_proc
        # host-side per-node reduce adds a (tiny) serial term per dataset
        from repro.workloads.registry import get_workload

        state_words = get_workload(wl).state_words
        threads = config.core.n_cores * config.core.n_threads * n_proc
        reduce_s = node_reduce_seconds(state_words, threads)
        node_words = mill.input_words * n_proc
        mill_node_time = node_words / mill_node_tput + reduce_s
        mill_node_tput_eff = node_words / mill_node_time
        mill_node_epw = mill.energy.total_j / mill.input_words  # per word

        mc_tput = mc.throughput_words_per_s
        mc_epw = mc.energy.total_j / mc.input_words

        speedup = mill_node_tput_eff / mc_tput
        energy = mc_epw / mill_node_epw
        ed = speedup * energy
        speedups.append(speedup)
        energy_gains.append(energy)
        ed_gains.append(ed)
        rows.append([wl, speedup, energy, ed])

    rows.append(["geomean", geomean(speedups), geomean(energy_gains), geomean(ed_gains)])
    return ExperimentResult(
        name="fig5",
        title="Fig. 5 - 32-processor Millipede node vs 8-core conventional multicore",
        headers=["benchmark", "speedup (x)", "energy gain (x)", "energy-delay gain (x)"],
        rows=rows,
        notes=[
            f"paper reports ~{PAPER_ENERGY_DELAY:.0f}x average energy-delay; "
            "the paper itself flags this comparison as dominated by thread "
            "count and off-chip energy rather than Millipede's novel features",
        ],
    )
