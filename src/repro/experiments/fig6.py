"""Fig. 6: speedup versus system size (section VI-D).

The paper doubles corelets/lanes/cores from 32 to 64 with proportionally
doubled memory bandwidth and shows Millipede's speedups over both GPGPU
and SSMC *increase* at 64 (more lanes -> more divergence waste; more cores
-> more straying).
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import BENCHES, ExperimentResult, batch_run, geomean
from repro.sim.cache import ResultCache
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec

SIZES = [32, 64]
ARCHES = ["gpgpu", "ssmc", "millipede"]


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    opts = ExecOptions(sanitize=sanitize, trace=trace, backend=backend)
    # one batch across both system sizes (specs carry their own config)
    specs = {
        (size, a, wl): RunSpec(a, wl, config=config.scaled_system_size(size),
                               n_records=n_records, options=opts)
        for size in SIZES
        for wl in BENCHES
        for a in ARCHES
    }
    batch = batch_run(list(specs.values()), cache=cache, workers=workers,
                      trace_dir=trace_dir if trace else None, store=store,
                      shard=shard, resume=resume, campaign="fig6",
                      steal=steal)
    # results[size][arch][wl]
    res: dict[int, dict[str, dict[str, float]]] = {
        size: {a: {} for a in ARCHES} for size in SIZES
    }
    for (size, a, wl), spec in specs.items():
        res[size][a][wl] = batch[spec].throughput_words_per_s

    rows = []
    for wl in BENCHES:
        row = [wl]
        for size in SIZES:
            base = res[size]["gpgpu"][wl]
            row += [res[size][a][wl] / base for a in ARCHES[1:]]  # ssmc, millipede
        rows.append(row)
    means = ["geomean"]
    for size in SIZES:
        for a in ARCHES[1:]:
            means.append(geomean([
                res[size][a][wl] / res[size]["gpgpu"][wl] for wl in BENCHES
            ]))
    rows.append(means)

    m32 = means[2]  # millipede over gpgpu at 32
    m64 = means[4]  # millipede over gpgpu at 64
    return ExperimentResult(
        name="fig6",
        title="Fig. 6 - speedup over same-size GPGPU vs system size",
        headers=["benchmark", "ssmc@32", "millipede@32", "ssmc@64", "millipede@64"],
        rows=rows,
        notes=[
            f"millipede-over-gpgpu geomean: {m32:.2f}x at 32 lanes -> "
            f"{m64:.2f}x at 64 lanes "
            + ("(grows, as in the paper)" if m64 >= m32 else "(deviation: shrank)"),
        ],
    )
