"""Table III: hardware parameters.

Not a simulation - this experiment renders the active configuration next
to the paper's values so configuration drift is visible in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import ExperimentResult
from repro.sim.cache import ResultCache

#: (parameter, paper value, getter)
_ROWS = [
    ("Compute clock", "700 MHz", lambda c: f"{c.core.clock_hz / 1e6:.0f} MHz"),
    ("Corelets/lanes/cores per processor", "32", lambda c: str(c.core.n_cores)),
    ("Multithreading contexts", "4", lambda c: str(c.core.n_threads)),
    ("Registers per corelet", "32", lambda c: str(c.core.n_registers)),
    ("L1 I-cache per corelet", "4 KB", lambda c: f"{c.core.icache_bytes // 1024} KB"),
    ("Local memory per corelet", "4 KB", lambda c: f"{c.millipede.local_memory_bytes // 1024} KB"),
    ("Prefetch buffer per corelet", "16 x 64B", lambda c: f"{c.millipede.prefetch_entries} x {c.millipede.slab_bytes}B"),
    ("L1 D-cache per SM", "32 KB", lambda c: f"{c.gpgpu.l1d_bytes // 1024} KB"),
    ("Shared memory per SM", "128 KB", lambda c: f"{c.gpgpu.shared_memory_bytes // 1024} KB"),
    ("L1 D-cache per SSMC core", "5 KB", lambda c: f"{c.ssmc.l1d_bytes // 1024} KB"),
    ("Channel clock", "1.2 GHz", lambda c: f"{c.dram.channel_clock_hz / 1e9:.1f} GHz"),
    ("Channel width", "128 bits", lambda c: f"{c.dram.channel_bytes_per_cycle * 8} bits (calibrated)"),
    ("DRAM tCAS-tRP-tRCD-tRAS", "9-9-9-27", lambda c: f"{c.dram.t_cas}-{c.dram.t_rp}-{c.dram.t_rcd}-{c.dram.t_ras}"),
    ("DRAM row size", "2 KB", lambda c: f"{c.dram.row_bytes // 1024} KB"),
    ("Banks per channel", "4", lambda c: str(c.dram.banks_per_channel)),
    ("Memory controller", "FR-FCFS (16 deep)", lambda c: f"FR-FCFS ({c.dram.controller_queue_depth} deep)"),
    ("DRAM access energy", "6 pJ/bit", lambda c: f"{c.dram.access_pj_per_bit:.0f} pJ/bit"),
    ("# processors / # channels", "1 of 32", lambda c: f"1 of {c.n_processors} (simulated: 1)"),
]


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    # table3 runs no simulations; store/shard/resume are accepted for CLI
    # uniformity and ignored
    rows = [[name, paper, get(config)] for name, paper, get in _ROWS]
    return ExperimentResult(
        name="table3",
        title="Table III - hardware parameters (paper vs. this configuration)",
        headers=["parameter", "paper", "this run"],
        rows=rows,
        notes=[
            "Channel width is the reproduction's calibrated compute:memory "
            "ratio knob (DESIGN.md section 5); all other parameters follow "
            "the paper."
        ],
    )
