"""Experiment harness: regenerates every table and figure of the paper's
evaluation (section VI).

Each experiment module exposes ``run_experiment(config, n_records, cache)``
returning a result object with a ``rows()`` table and a ``markdown()``
report section; the CLI (``python -m repro.experiments``) runs them
individually or all together and assembles EXPERIMENTS.md.
"""

from repro.experiments import fig3, fig4, fig5, fig6, fig7, table3, table4

EXPERIMENTS = {
    "table3": table3,
    "table4": table4,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
}

__all__ = ["EXPERIMENTS"]
