"""Fig. 3: performance of every PNM architecture normalized to GPGPU.

Paper result: Millipede improves 135% over GPGPU-with-prefetch and 35%
over SSMC-with-prefetch on average; Millipede-no-flow-control sits between
SSMC and Millipede; VWS between GPGPU and Millipede; VWS-row between VWS
and Millipede.  The Millipede-over-GPGPU gap shrinks left-to-right
(branchiness falls) while the Millipede-over-SSMC gap grows (row-miss rate
rises), except for the compute-heavy pca/gda.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import (
    BENCHES,
    FIG3_ARCHES,
    ExperimentResult,
    ascii_bars,
    geomean,
    sweep,
)
from repro.sim.cache import ResultCache

#: the paper's headline averages (% improvement of Millipede)
PAPER_MILLIPEDE_OVER_GPGPU = 2.35
PAPER_MILLIPEDE_OVER_SSMC = 1.35


def run_experiment(
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    sanitize: bool = False,
    trace: bool = False,
    trace_dir=None,
    backend: str = "reference",
    store=None,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    steal: Optional[bool] = None,
) -> ExperimentResult:
    results = sweep(FIG3_ARCHES, BENCHES, config, n_records, cache,
                    workers=workers, sanitize=sanitize, trace=trace,
                    trace_dir=trace_dir, backend=backend, store=store,
                    shard=shard, resume=resume, campaign="fig3",
                    steal=steal)

    rows = []
    for wl in BENCHES:
        base = results[wl]["gpgpu"].throughput_words_per_s
        rows.append([wl] + [
            results[wl][a].throughput_words_per_s / base for a in FIG3_ARCHES
        ])
    means = ["geomean"] + [
        geomean([r[1 + i] for r in rows]) for i in range(len(FIG3_ARCHES))
    ]
    rows.append(means)

    mill_over_gpgpu = means[1 + FIG3_ARCHES.index("millipede")]
    mill_over_ssmc = mill_over_gpgpu / means[1 + FIG3_ARCHES.index("ssmc")]

    bars = ascii_bars(
        FIG3_ARCHES, [means[1 + i] for i in range(len(FIG3_ARCHES))], unit="x gpgpu"
    )

    return ExperimentResult(
        name="fig3",
        title="Fig. 3 - performance normalized to GPGPU (higher is better)",
        headers=["benchmark"] + FIG3_ARCHES,
        rows=rows,
        extra_sections=[bars],
        notes=[
            f"measured geomean: millipede = {mill_over_gpgpu:.2f}x gpgpu "
            f"(paper: {PAPER_MILLIPEDE_OVER_GPGPU:.2f}x), "
            f"{mill_over_ssmc:.2f}x ssmc (paper: {PAPER_MILLIPEDE_OVER_SSMC:.2f}x)",
            "expected ordering per benchmark: gpgpu <= vws <= vws-row <= "
            "millipede and gpgpu <= ssmc <= millipede-nofc <= millipede",
        ],
    )
