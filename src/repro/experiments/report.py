"""EXPERIMENTS.md assembly."""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Sequence

from repro.experiments.common import ExperimentResult

_HEADER = """# EXPERIMENTS - paper vs. measured

Reproduction of *Millipede: Die-Stacked Memory Optimizations for Big Data
Machine Learning Analytics* (IPDPS 2018).  Regenerate with:

```
python -m repro.experiments all --records <N> --write-md
```

All simulations run on the from-scratch event-driven simulator described
in DESIGN.md.  Inputs are scaled down from the paper's 128 MB (BMLA
behaviour is repetitive and reaches steady state early - verified by the
steady-state benchmark); absolute numbers therefore differ, and the
reproduction targets are the paper's *shapes*: orderings, trends across
the benchmark suite, and rough improvement factors.

## Calibration record

* `DramConfig.channel_bytes_per_cycle = 8` places the compute/memory
  crossover mid-suite: the light benchmarks (count..nbayes) are
  memory-bandwidth-bound for Millipede (rate matching lowers its clock)
  while the divergence-prone GPGPU is compute-bound on them - the regime
  the paper's Table IV and Fig. 3 describe.
* Known deviations are listed per experiment below; the largest is the
  magnitude of GPGPU's SIMT loss (paper: 2.35x average vs our ~1.2x) -
  our kernels' divergent regions are a few instructions wide, while the
  paper's CUDA kernels evidently serialize most of each record's work.
  Orderings are preserved.
"""


def write_markdown(results: Sequence[ExperimentResult], path: Path | str) -> Path:
    path = Path(path)
    # date stamp of a human-readable artifact, never sim-state-reachable
    stamp = datetime.date.today().isoformat()  # repro-lint: disable=DET002
    parts = [_HEADER, f"*Generated: {stamp}*\n"]
    for res in results:
        parts.append(res.markdown())
    path.write_text("\n\n".join(parts) + "\n")
    return path
