"""Opt-in run-timeline tracing and host profiling for the simulator.

``SimTracer`` attaches read-only observers (composing with the sanitizer
through :class:`repro.engine.observer.ObserverChain`) and a
:class:`TimelineSampler` that snapshots prefetch-buffer occupancy/PFT/DF
state, DFS frequency, DRAM bank state and command-queue depth, and
per-corelet instruction counts at a configurable simulated-time cadence.
The result is a :class:`TraceResult`: Chrome trace-event JSON (load in
``chrome://tracing`` or Perfetto), a timeline CSV, and a per-event-class
host wall-clock profile.

Enable it per run with ``RunSpec(..., trace=True)``, the ``trace=``
keyword of :func:`repro.sim.driver.run`, or the ``--trace`` flags of the
experiment and tools CLIs.  Traced runs produce byte-identical statistics
and metrics to untraced runs: observers never mutate simulation state and
the sampler's events are read-only and never extend the run.

See ``docs/tracing.md`` for a worked walkthrough.
"""

from repro.trace.export import TraceResult, TraceWriter
from repro.trace.tracer import DEFAULT_INTERVAL_PS, SimTracer, TimelineSampler

__all__ = [
    "DEFAULT_INTERVAL_PS",
    "SimTracer",
    "TimelineSampler",
    "TraceResult",
    "TraceWriter",
]
