"""The tracer proper: timeline sampling + host profiling observers.

Mirrors the :class:`repro.sanitize.SimSanitizer` attachment pattern -
``attach_engine`` then ``attach_processor`` - but every attachment goes
through :func:`repro.engine.observer.attach_observer`, so the tracer and
the sanitizer compose on the same run.

Three read-only instruments:

* :class:`_HostProfiler` (engine observer) times each delivered event's
  callback with ``perf_counter_ns`` and aggregates per event-class
  (callback qualname) - where the *simulator* spends host time;
* a clock observer records every DFS transition as an instant event;
* :class:`TimelineSampler` snapshots component state (prefetch-buffer
  occupancy/PFT/DF, DFS frequency, DRAM bank state and queue depth,
  per-corelet instruction counts) at a fixed simulated-time cadence -
  where the *simulated machine* spends simulated time.

The sampler schedules its own events on the engine being observed.  They
read state only, and the sampler stops rescheduling once no other live
event remains, so a traced run performs exactly the component work of an
untraced one and produces byte-identical statistics.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.engine.observer import attach_observer
from repro.trace.export import TraceResult

#: default simulated-time sampling cadence (100 ns; a few thousand samples
#: for a typical hundreds-of-microseconds run)
DEFAULT_INTERVAL_PS = 100_000


class _HostProfiler:
    """Engine observer: host wall-clock per delivered event class."""

    __slots__ = ("_t0_ns", "profile")

    def __init__(self) -> None:
        self._t0_ns = 0
        #: callback qualname -> [count, total host ns]
        self.profile: dict[str, list] = {}

    def on_deliver(self, ev) -> None:
        self._t0_ns = time.perf_counter_ns()

    def on_return(self, ev) -> None:
        dt = time.perf_counter_ns() - self._t0_ns
        key = getattr(ev.fn, "__qualname__", None) or repr(ev.fn)
        cell = self.profile.get(key)
        if cell is None:
            self.profile[key] = [1, dt]
        else:
            cell[0] += 1
            cell[1] += dt


class TimelineSampler:
    """Snapshots registered probes at a fixed simulated-time cadence.

    Probes are zero-argument callables returning a scalar (or a list for
    per-unit series such as per-corelet instruction counts).  The sampler
    takes one synchronous sample at :meth:`start` and then samples every
    ``interval_ps`` of simulated time; it stops rescheduling as soon as it
    is the only live event left, so it never extends a run.
    """

    def __init__(self, engine, interval_ps: int = DEFAULT_INTERVAL_PS):
        self.engine = engine
        self.interval_ps = max(1, int(interval_ps))
        self._probes: list[tuple[str, Callable[[], object]]] = []
        self.samples: list[dict] = []
        self._started = False

    def add_probe(self, name: str, fn: Callable[[], object]) -> None:
        self._probes.append((name, fn))

    def start(self) -> None:
        if self._started or not self._probes:
            return
        self._started = True
        self._sample()
        self.engine.schedule(self.interval_ps, self._tick)

    def _tick(self) -> None:
        self._sample()
        # self's event has already been popped: pending counts only other
        # live events, so 0 means the simulation is over
        if self.engine.pending > 0:
            self.engine.schedule(self.interval_ps, self._tick)

    def _sample(self) -> None:
        row: dict = {"time_ps": self.engine.now}
        for name, fn in self._probes:
            row[name] = fn()
        self.samples.append(row)


class SimTracer:
    """Attachment hub for one traced run.

    >>> from repro.engine.events import Engine
    >>> tr = SimTracer()
    >>> eng = Engine()
    >>> tr.attach_engine(eng)
    >>> _ = eng.schedule(10, lambda: None)
    >>> eng.run()
    1
    >>> list(tr.result().host_profile) != []
    True
    """

    def __init__(self, *, interval_ps: int = DEFAULT_INTERVAL_PS):
        self.interval_ps = interval_ps
        self._engine = None
        self._profiler = _HostProfiler()
        self._sampler: Optional[TimelineSampler] = None

        #: (time_ps, clock_name, old_hz, new_hz) DFS transitions
        self.freq_changes: list[tuple[int, str, float, float]] = []

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_engine(self, engine) -> None:
        self._engine = engine
        attach_observer(engine, self._profiler)
        self._sampler = TimelineSampler(engine, self.interval_ps)

    def attach_processor(self, proc) -> None:
        """Duck-typed attachment: probe every timeline source ``proc``
        has (the same introspection contract as the sanitizer's
        ``attach_processor``)."""
        if self._sampler is None:
            raise RuntimeError("attach_engine must be called first")
        s = self._sampler
        pb = getattr(proc, "prefetch_buffer", None)
        if pb is not None:
            s.add_probe("pb.occupancy", lambda: pb.occupancy)
            s.add_probe("pb.head_row", lambda: pb.head_row)
            s.add_probe("pb.tail_row", lambda: pb.tail_row)
            s.add_probe("pb.pft_pending",
                        lambda: sum(1 for e in pb.entries if e.pft))
            s.add_probe("pb.df_total",
                        lambda: sum(e.df_count for e in pb.entries))
        mc = getattr(proc, "mc", None)
        if mc is not None:
            s.add_probe("dram.queue_depth", lambda: len(mc.queue))
            s.add_probe("dram.banks_open", lambda: sum(
                1 for b in mc.banks if b.open_row is not None))
            s.add_probe("dram.banks_bound", lambda: sum(
                1 for b in mc.banks if b.pending is not None))
            s.add_probe("dram.bus_busy", lambda: int(
                mc.bus_free_ps > self._engine.now))
        clock = getattr(proc, "clock", None)
        if clock is not None:
            attach_observer(clock, self)
            s.add_probe("dfs.freq_hz", lambda: clock.freq_hz)
        units = getattr(proc, "corelets", None) or getattr(proc, "cores", None)
        if units:
            s.add_probe("corelet.instructions",
                        lambda: [c.instructions for c in units])
        warps = getattr(proc, "warps", None)
        if warps:
            s.add_probe("warps.active",
                        lambda: sum(1 for w in warps if not w.done))
        s.start()

    # ------------------------------------------------------------------
    # clock observer hook
    # ------------------------------------------------------------------
    def on_set_frequency(self, clock, old_hz: float, new_hz: float) -> None:
        now = self._engine.now if self._engine is not None else 0
        self.freq_changes.append((now, clock.name, old_hz, new_hz))

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def result(self, meta: Optional[dict] = None) -> TraceResult:
        """Package everything observed so far as a :class:`TraceResult`."""
        full_meta = dict(meta or {})
        full_meta.setdefault("interval_ps", self.interval_ps)
        profile = {
            key: {"count": count, "host_ns": host_ns}
            for key, (count, host_ns) in self._profiler.profile.items()
        }
        return TraceResult(
            meta=full_meta,
            samples=list(self._sampler.samples) if self._sampler else [],
            freq_changes=list(self.freq_changes),
            host_profile=profile,
        )
