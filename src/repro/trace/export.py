"""Trace containers and exporters.

:class:`TraceResult` is the plain-data product of one traced run: the
sampled timeline, the DFS frequency-change log, and the host wall-clock
profile.  It exports as

* **Chrome trace-event JSON** - loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev: each sampled series becomes a counter track
  (``"ph": "C"``), each DFS change an instant event, and the host profile
  rides along under ``otherData``;
* **timeline CSV** - one row per sample, list-valued series (per-corelet
  instruction counts) expanded into per-unit columns plus a total;
* **profile CSV** - per-event-class host wall-clock totals.

:class:`TraceWriter` is the campaign-side aggregator: a
``run_batch(progress=...)`` callback that writes each traced result's
files as it lands and finishes with a campaign-level ``index.json``
(per-run manifest + cross-run host-profile totals).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional


#: 1 ps in Chrome trace microseconds (trace ``ts`` is a float of us)
_PS_TO_US = 1e-6


@dataclass
class TraceResult:
    """Everything one traced simulation observed (plain, picklable data)."""

    #: run identity + tracer settings (arch, workload, interval_ps, ...)
    meta: dict = field(default_factory=dict)
    #: sampled timeline rows; every row has ``time_ps`` plus one key per
    #: probed series (scalar, or a list for per-unit series)
    samples: list = field(default_factory=list)
    #: (time_ps, clock_name, old_hz, new_hz) DFS transitions
    freq_changes: list = field(default_factory=list)
    #: event-class qualname -> {"count", "host_ns"} wall-clock profile
    host_profile: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def series(self, name: str) -> tuple[list, list]:
        """(times_ps, values) of one sampled series, skipping samples where
        the series was absent or ``None``."""
        times, values = [], []
        for row in self.samples:
            v = row.get(name)
            if v is not None:
                times.append(row["time_ps"])
                values.append(v)
        return times, values

    def series_names(self) -> list[str]:
        """Sampled series names in first-seen order."""
        names: list[str] = []
        seen = {"time_ps"}
        for row in self.samples:
            for k in row:
                if k not in seen:
                    seen.add(k)
                    names.append(k)
        return names

    def host_profile_by_component(self) -> dict[str, dict[str, float]]:
        """Host profile re-aggregated per component (the class name of the
        bound method each event called, i.e. the qualname's first part)."""
        out: dict[str, dict[str, float]] = {}
        for qualname, cell in self.host_profile.items():
            comp = qualname.split(".", 1)[0]
            agg = out.setdefault(comp, {"count": 0, "host_ns": 0})
            agg["count"] += cell["count"]
            agg["host_ns"] += cell["host_ns"]
        return out

    def total_host_ns(self) -> int:
        return sum(c["host_ns"] for c in self.host_profile.values())

    # ------------------------------------------------------------------
    # Chrome trace-event JSON
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The run as a Chrome trace-event object (JSON-serializable)."""
        label = self.meta.get("label") or "{}/{}".format(
            self.meta.get("arch", "sim"), self.meta.get("workload", "run"))
        events: list[dict] = [
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": f"repro {label}"}},
        ]
        for row in self.samples:
            ts = row["time_ps"] * _PS_TO_US
            for name, value in row.items():
                if name == "time_ps" or value is None:
                    continue
                if isinstance(value, (list, tuple)):
                    args = {f"u{i}": v for i, v in enumerate(value)}
                else:
                    args = {"value": value}
                events.append({"ph": "C", "pid": 1, "name": name,
                               "ts": ts, "args": args})
        for time_ps, clock_name, old_hz, new_hz in self.freq_changes:
            events.append({
                "ph": "i", "pid": 1, "tid": 1, "s": "g",
                "ts": time_ps * _PS_TO_US,
                "name": (f"dfs {clock_name}: {old_hz / 1e6:.1f} -> "
                         f"{new_hz / 1e6:.1f} MHz"),
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "meta": self.meta,
                "host_profile": self.host_profile,
                "host_profile_by_component": self.host_profile_by_component(),
            },
        }

    # ------------------------------------------------------------------
    # CSV
    # ------------------------------------------------------------------
    def timeline_csv(self) -> str:
        """The sampled timeline as CSV text (header + one row per sample)."""
        names = self.series_names()
        # list-valued series expand to fixed per-unit columns + a total
        widths: dict[str, int] = {}
        for row in self.samples:
            for name in names:
                v = row.get(name)
                if isinstance(v, (list, tuple)):
                    widths[name] = max(widths.get(name, 0), len(v))
        columns: list[str] = ["time_ps"]
        for name in names:
            if name in widths:
                columns.extend(f"{name}.{i}" for i in range(widths[name]))
                columns.append(f"{name}.total")
            else:
                columns.append(name)
        lines = [",".join(columns)]
        for row in self.samples:
            cells = [str(row["time_ps"])]
            for name in names:
                v = row.get(name)
                if name in widths:
                    vals = list(v) if isinstance(v, (list, tuple)) else []
                    vals += [None] * (widths[name] - len(vals))
                    cells.extend("" if x is None else str(x) for x in vals)
                    cells.append(str(sum(x for x in vals if x is not None)))
                else:
                    cells.append("" if v is None else str(v))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def profile_csv(self) -> str:
        """Per-event-class host profile as CSV, heaviest class first."""
        lines = ["event_class,count,host_ns,host_ns_per_event"]
        ordered = sorted(self.host_profile.items(),
                         key=lambda kv: kv[1]["host_ns"], reverse=True)
        for qualname, cell in ordered:
            per = cell["host_ns"] / cell["count"] if cell["count"] else 0.0
            lines.append(f"{qualname},{cell['count']},{cell['host_ns']},{per:.1f}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def write(self, out_dir: "Path | str", stem: str) -> dict[str, Path]:
        """Write ``<stem>.trace.json`` / ``<stem>.timeline.csv`` /
        ``<stem>.profile.csv`` under ``out_dir``; returns the paths."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": out_dir / f"{stem}.trace.json",
            "timeline": out_dir / f"{stem}.timeline.csv",
            "profile": out_dir / f"{stem}.profile.csv",
        }
        paths["trace"].write_text(json.dumps(self.chrome_trace()))
        paths["timeline"].write_text(self.timeline_csv())
        paths["profile"].write_text(self.profile_csv())
        return paths

    def summary(self) -> str:
        """One-paragraph human summary (used by ``repro.tools inspect``)."""
        total_ms = self.total_host_ns() / 1e6
        top = sorted(self.host_profile_by_component().items(),
                     key=lambda kv: kv[1]["host_ns"], reverse=True)[:4]
        hot = ", ".join(
            f"{comp} {cell['host_ns'] / 1e6:.1f}ms" for comp, cell in top)
        return (f"{len(self.samples)} samples @ "
                f"{self.meta.get('interval_ps', '?')}ps, "
                f"{len(self.freq_changes)} DFS changes, "
                f"host {total_ms:.1f}ms in events ({hot})")


class TraceWriter:
    """Campaign-level trace collection: a ``run_batch(progress=...)``
    callback that writes each traced result's files and aggregates the
    host profiles across the batch.

    Wraps (and forwards to) an existing progress callback so tracing and
    progress reporting compose on the same ``run_batch`` call.
    """

    def __init__(self, out_dir: "Path | str",
                 progress: Optional[Callable] = None):
        self.out_dir = Path(out_dir)
        self.index: list[dict] = []
        self.profile_totals: dict[str, dict[str, float]] = {}
        self._wrapped = progress

    def __call__(self, event) -> None:  # event: campaign.BatchProgress
        if self._wrapped is not None:
            self._wrapped(event)
        trace = getattr(event.result, "trace", None)
        if trace is None:
            return
        stem = (f"{event.spec.arch}-{event.spec.workload}-"
                f"{event.spec.content_hash()}")
        paths = trace.write(self.out_dir, stem)
        for qualname, cell in trace.host_profile.items():
            agg = self.profile_totals.setdefault(
                qualname, {"count": 0, "host_ns": 0})
            agg["count"] += cell["count"]
            agg["host_ns"] += cell["host_ns"]
        self.index.append({
            "spec": event.spec.to_dict(),
            "stem": stem,
            "samples": len(trace.samples),
            "freq_changes": len(trace.freq_changes),
            "host_ns": trace.total_host_ns(),
            "files": {k: p.name for k, p in paths.items()},
        })

    def finish(self) -> Path:
        """Write the campaign index + cross-run profile aggregation.

        Published atomically: a campaign watcher (or a crash mid-write)
        must never observe a torn ``index.json``."""
        from repro.sim.store import atomic_write_text

        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = self.out_dir / "index.json"
        atomic_write_text(path, json.dumps(
            {"runs": self.index, "host_profile_totals": self.profile_totals},
            indent=2))
        return path
