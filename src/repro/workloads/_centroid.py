"""Shared codegen + golden model for the nearest-centroid workloads
(classify, kmeans) - Table II's "supervised classification via Euclidean
distance" and "unsupervised clustering via Kmeans (1 iteration)".

State layout (per thread)::

    [0 .. k*D)            centroid constants (preloaded)
    [k*D .. k*D+k)        per-centroid assignment counts
    [k*D+k .. k*D+k+k*D)  per-centroid coordinate sums (new centroids)
"""

from __future__ import annotations

import numpy as np


def centroid_state_words(k: int, d: int) -> int:
    return 2 * k * d + k


def make_centroids(k: int, d: int, seed: int = 12345) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(k, d))


def nearest_centroid_body(k: int, d: int, block_records: int, label_prefix: str) -> str:
    """Per-record assembly: load D dims, argmin over k centroids, update
    count and coordinate sums of the winner.

    Dims live in r13..r(12+d); r21=best dist, r22=best id, r23=running
    dist, r24-r26 scratch.  Requires d <= 16.
    """
    if d > 16:
        raise ValueError(f"d={d} exceeds the register budget (max 16 dims)")
    B = block_records
    kd = k * d
    lines = []
    for dim in range(d):
        lines.append(f"    ldg  r{13 + dim}, r10, {dim * B}")
    lines.append("    li   r21, 1e30")
    lines.append("    li   r22, 0")
    for c in range(k):
        lines.append(f"    li   r23, 0")
        for dim in range(d):
            lines.append(f"    ldl  r24, r0, {c * d + dim}")
            lines.append(f"    sub  r24, r{13 + dim}, r24")
            lines.append(f"    mul  r24, r24, r24")
            lines.append(f"    add  r23, r23, r24")
        lines.append(f"    slt  r24, r23, r21")
        lines.append(f"    beqz r24, {label_prefix}_skip{c}")
        lines.append(f"    mov  r21, r23")
        lines.append(f"    li   r22, {c}")
        lines.append(f"{label_prefix}_skip{c}:")
    # counts[best]++
    lines.append(f"    addi r25, r22, {kd}")
    lines.append(f"    ldl  r26, r25, 0")
    lines.append(f"    addi r26, r26, 1")
    lines.append(f"    stl  r26, r25, 0")
    # sums[best*d + dim] += x_dim
    lines.append(f"    muli r25, r22, {d}")
    for dim in range(d):
        lines.append(f"    ldl  r26, r25, {kd + k + dim}")
        lines.append(f"    add  r26, r26, r{13 + dim}")
        lines.append(f"    stl  r26, r25, {kd + k + dim}")
    return "\n".join(lines)


def assign_sequential(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Golden argmin with the *same float64 operation order* as the kernel
    (sequential accumulation over dims, strict-< winner update), so integer
    assignment counts compare exactly."""
    n = len(points)
    k, d = centroids.shape
    best = np.full(n, 0, dtype=np.int64)
    best_dist = np.full(n, 1e30)
    for c in range(k):
        dist = np.zeros(n)
        for dim in range(d):
            t = points[:, dim] - centroids[c, dim]
            dist = dist + t * t
        better = dist < best_dist
        best[better] = c
        best_dist = np.where(better, dist, best_dist)
    return best


def golden_centroid_result(points: np.ndarray, centroids: np.ndarray) -> dict:
    k, d = centroids.shape
    assign = assign_sequential(points, centroids)
    counts = np.bincount(assign, minlength=k).astype(np.int64)
    sums = np.zeros((k, d))
    np.add.at(sums, assign, points)
    return {"counts": counts, "sums": sums}


def reduce_centroid_states(thread_states: list[np.ndarray], k: int, d: int) -> dict:
    kd = k * d
    counts = np.zeros(k, dtype=np.int64)
    sums = np.zeros((k, d))
    for st in thread_states:
        counts += st[kd : kd + k].astype(np.int64)
        sums += st[kd + k : kd + k + kd].reshape(k, d)
    return {"counts": counts, "sums": sums}
