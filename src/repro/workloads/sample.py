"""``sample``: per-bin sample selection (Table II row 2).

Keeps, per rating bin, the total count and the first ``M`` record indices
seen by each thread - "(count, elements) per bin".  Two nested
data-dependent branches (validity, then bin-not-yet-full) make this the
branchiest benchmark after count.

The kept elements are inherently *per-thread* results (each Map task keeps
the first M of its own record subsequence), so validation compares them
per thread rather than reduced.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload, thread_record_indices


class SampleWorkload(Workload):
    name = "sample"
    K = 8   #: bins
    M = 4   #: kept elements per bin per thread
    VALID_P = 0.7
    n_fields = 1
    state_words = K * (M + 1) + 1  # per bin: [count, e0..eM-1]; + invalid
    default_records = 96 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        bins = rng.integers(0, self.K, size=n_records).astype(np.float64)
        invalid = rng.random(n_records) >= self.VALID_P
        bins[invalid] = -1.0
        return [bins]

    def extra_thread_args(self, tid: int, n_threads: int) -> dict[int, float]:
        return {20: 0}  # r20 tracks the thread-local record ordinal

    def initial_state(self):
        st = np.zeros(self.state_words)
        # element slots start at -1 so "never written" is distinguishable
        for b in range(self.K):
            st[b * (self.M + 1) + 1 : (b + 1) * (self.M + 1)] = -1.0
        return st

    def kernel_body(self, block_records: int) -> str:
        K, M = self.K, self.M
        inval_addr = K * (M + 1)
        return f"""\
    ldg  r13, r10, 0          # bin
    blt  r13, r0, samp_inval
    muli r14, r13, {M + 1}    # per-bin slot base
    ldl  r15, r14, 0          # count
    slti r16, r15, {M}
    beqz r16, samp_full       # nested data-dependent branch
    add  r17, r14, r15
    stl  r20, r17, 1          # keep this record's thread-local ordinal
samp_full:
    addi r15, r15, 1
    stl  r15, r14, 0
    j    samp_next
samp_inval:
    ldl  r15, r0, {inval_addr}
    addi r15, r15, 1
    stl  r15, r0, {inval_addr}
samp_next:
    addi r20, r20, 1          # advance the thread-local ordinal"""

    # ------------------------------------------------------------------
    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        bins = fields[0]
        valid = bins >= 0
        counts = np.bincount(bins[valid].astype(np.int64), minlength=self.K)
        elements = np.full((n_threads, self.K, self.M), -1, dtype=np.int64)
        block = getattr(self, "_block_records", 512)
        for t in range(n_threads):
            idx = thread_record_indices(t, n_threads, len(bins), block, traversal)
            sub = bins[idx]
            for b in range(self.K):
                # kept elements are the thread-local ordinals of the first
                # M records of bin b in this thread's processing order
                hits = np.flatnonzero(sub == b)[: self.M]
                elements[t, b, : len(hits)] = hits
        return {
            "counts": counts,
            "invalid": np.int64(np.count_nonzero(~valid)),
            "elements": elements,
        }

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        K, M = self.K, self.M
        counts = np.zeros(K, dtype=np.int64)
        invalid = 0
        elements = np.full((len(thread_states), K, M), -1, dtype=np.int64)
        for t, st in enumerate(thread_states):
            for b in range(K):
                base = b * (M + 1)
                counts[b] += int(st[base])
                elements[t, b] = st[base + 1 : base + 1 + M].astype(np.int64)
            invalid += int(st[K * (M + 1)])
        return {"counts": counts, "invalid": np.int64(invalid), "elements": elements}
