"""``nbayes``: Naive Bayes conditional-probability counting (Table I).

A faithful transcription of the paper's walk-through example: each record
is an N-dimensional categorical point plus a year; the class is a
data-dependent branch on the year (tuned to the paper's ~70/30 split), and
every dimension increments ``Cprob[dim][value][class]`` through an
*indirect, data-dependent* live-state access.  A per-dimension
missing-value check adds the extra branchiness the paper measures
(0.11 branches/inst, second only to count/sample).

State layout (per thread)::

    [0 .. D*V*2)    Cprob[d][v][c] at (d*V + v)*2 + c
    [D*V*2 .. +2)   classCount[c]
    [D*V*2 + 2]     missing-value counter
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload


class NaiveBayesWorkload(Workload):
    name = "nbayes"
    D = 4        #: categorical dimensions
    V = 8        #: values per dimension
    YEAR_MAX = 100
    THRESHOLD = 30  #: year < 30 -> class 0 (30%), else class 1 (70%)
    MISSING_P = 0.1
    n_fields = D + 1
    state_words = D * V * 2 + 3
    default_records = 48 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        years = rng.integers(0, self.YEAR_MAX, size=n_records).astype(np.float64)
        fields = [years]
        for _ in range(self.D):
            x = rng.integers(0, self.V, size=n_records).astype(np.float64)
            x[rng.random(n_records) < self.MISSING_P] = -1.0
            fields.append(x)
        return fields

    def kernel_body(self, block_records: int) -> str:
        B = block_records
        D, V = self.D, self.V
        cc_base = D * V * 2
        miss_addr = cc_base + 2
        lines = [
            f"    ldg  r13, r10, 0          # year",
            f"    li   r14, 1               # class = 1",
            f"    slti r15, r13, {self.THRESHOLD}",
            f"    beqz r15, nb_class",
            f"    li   r14, 0               # class = 0",
            f"nb_class:",
            f"    addi r16, r14, {cc_base}  # classCount[class]++",
            f"    ldl  r17, r16, 0",
            f"    addi r17, r17, 1",
            f"    stl  r17, r16, 0",
        ]
        for d in range(D):
            lines += [
                f"    ldg  r18, r10, {(d + 1) * B}   # x[{d}]",
                f"    blt  r18, r0, nb_miss{d}",
                f"    muli r19, r18, 2               # Cprob[{d}][x][class]++",
                f"    add  r19, r19, r14",
                f"    ldl  r20, r19, {d * V * 2}",
                f"    addi r20, r20, 1",
                f"    stl  r20, r19, {d * V * 2}",
                f"    j    nb_next{d}",
                f"nb_miss{d}:",
                f"    ldl  r20, r0, {miss_addr}",
                f"    addi r20, r20, 1",
                f"    stl  r20, r0, {miss_addr}",
                f"nb_next{d}:",
            ]
        return "\n".join(lines)

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        years = fields[0]
        cls = (years >= self.THRESHOLD).astype(np.int64)
        cprob = np.zeros((self.D, self.V, 2), dtype=np.int64)
        missing = 0
        for d in range(self.D):
            x = fields[d + 1]
            ok = x >= 0
            missing += int(np.count_nonzero(~ok))
            np.add.at(cprob[d], (x[ok].astype(np.int64), cls[ok]), 1)
        return {
            "cprob": cprob,
            "class_count": np.bincount(cls, minlength=2),
            "missing": np.int64(missing),
        }

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        total = np.sum(thread_states, axis=0)
        dv2 = self.D * self.V * 2
        return {
            "cprob": total[:dv2].reshape(self.D, self.V, 2).astype(np.int64),
            "class_count": total[dv2 : dv2 + 2].astype(np.int64),
            "missing": np.int64(total[dv2 + 2]),
        }
