"""``pca``: mean + covariance accumulation for principal components
(Table II row 7).

The Map phase accumulates the sufficient statistics (sum vector and
upper-triangular sum-of-outer-products matrix); the host finalizes the
covariance and eigendecomposition after the global reduce.  O(D^2) work
per record with almost no data-dependent branches - the paper's
second-heaviest, least-branchy benchmark.

The kernel stages each record's coordinates into local memory first and
reads them back per covariance pair - the "compact" intermediate-state
access pattern of section III-C.

State layout (per thread)::

    [0 .. D)        staged coordinates of the current record
    [D .. 2D)       running sum vector
    [2D .. 2D+T)    upper-triangular sums of x_i * x_j (T = D(D+1)/2)
    [2D + T]        record count
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload


def _tri_pairs(d: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(d) for j in range(i, d)]


class PcaWorkload(Workload):
    name = "pca"
    D = 12
    n_fields = D
    TRI = D * (D + 1) // 2
    state_words = 2 * D + TRI + 1
    default_records = 4 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        # correlated data so PCA has structure: latent factors + noise
        latent = rng.normal(size=(n_records, 3))
        mix = rng.normal(size=(3, self.D))
        pts = latent @ mix + rng.normal(0.0, 0.3, size=(n_records, self.D))
        return [pts[:, d].copy() for d in range(self.D)]

    def kernel_body(self, block_records: int) -> str:
        B = block_records
        D = self.D
        lines = []
        # stage coordinates into local memory
        for d in range(D):
            lines.append(f"    ldg  r13, r10, {d * B}")
            lines.append(f"    stl  r13, r0, {d}")
        # sum vector
        for d in range(D):
            lines.append(f"    ldl  r13, r0, {d}")
            lines.append(f"    ldl  r14, r0, {D + d}")
            lines.append(f"    add  r14, r14, r13")
            lines.append(f"    stl  r14, r0, {D + d}")
        # upper-triangular outer products
        for idx, (i, j) in enumerate(_tri_pairs(D)):
            lines.append(f"    ldl  r13, r0, {i}")
            lines.append(f"    ldl  r14, r0, {j}")
            lines.append(f"    mul  r13, r13, r14")
            lines.append(f"    ldl  r14, r0, {2 * D + idx}")
            lines.append(f"    add  r14, r14, r13")
            lines.append(f"    stl  r14, r0, {2 * D + idx}")
        # record count
        cnt = 2 * D + self.TRI
        lines.append(f"    ldl  r13, r0, {cnt}")
        lines.append(f"    addi r13, r13, 1")
        lines.append(f"    stl  r13, r0, {cnt}")
        return "\n".join(lines)

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        pts = np.column_stack(fields)
        sums = pts.sum(axis=0)
        outer = pts.T @ pts
        iu = np.triu_indices(self.D)
        return {
            "sums": sums,
            "tri": outer[iu],
            "count": np.int64(len(pts)),
        }

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        total = np.sum(thread_states, axis=0)
        D = self.D
        return {
            "sums": total[D : 2 * D],
            "tri": total[2 * D : 2 * D + self.TRI],
            "count": np.int64(total[2 * D + self.TRI]),
        }

    @staticmethod
    def finalize(sums: np.ndarray, tri: np.ndarray, count: int, d: int) -> np.ndarray:
        """Host-side: covariance matrix from the reduced statistics."""
        mean = sums / count
        cov = np.zeros((d, d))
        iu = np.triu_indices(d)
        cov[iu] = tri / count
        cov = cov + cov.T - np.diag(np.diag(cov))
        return cov - np.outer(mean, mean)
