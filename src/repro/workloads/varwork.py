"""``varwork``: a variable-record-work stress kernel (not one of the
paper's eight benchmarks).

The paper's flow-control contribution exists because corelets *stray*: the
"unavoidable variability in the record-processing work" accumulates into a
random-walk drift that spans many rows over billions of records.  At the
reproduction's scaled-down input sizes the eight BMLAs' 70/30 branches
produce only a few cycles of variance per record, so straying barely
develops.  This kernel makes the variability explicit and heavy-tailed -
each record carries an iteration count (think: variable-length tokens or
per-record refinement steps) and the Map loops that many times - so the
flow-control and premature-eviction mechanisms (sections IV-C, VI-A) can
be exercised and measured at simulation-friendly scale.  Used by the
ablation benchmarks, not by the Fig. 3/4 reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload


class VarWorkWorkload(Workload):
    name = "varwork"
    K = 8            #: histogram bins over the iteration results
    MAX_ITERS = 24   #: heavy-tail cap
    n_fields = 2     #: [iteration count, value]
    state_words = K + 2  # bins + total-iterations accumulator + count
    default_records = 16 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        # heavy-tailed per-record work: mostly light, occasionally long
        iters = np.minimum(
            rng.geometric(0.35, size=n_records), self.MAX_ITERS
        ).astype(np.float64)
        values = rng.uniform(0.0, 1.0, size=n_records)
        return [iters, values]

    def kernel_body(self, block_records: int) -> str:
        B = block_records
        return f"""\
    ldg  r13, r10, 0          # iteration count (data-dependent work!)
    ldg  r14, r10, {B}        # value
    mov  r15, r14             # x = value
    mov  r16, r13
vw_loop:
    beqz r16, vw_done
    mul  r15, r15, r14        # x *= value  (per-iteration work)
    addi r16, r16, -1
    j    vw_loop
vw_done:
    # bin the final magnitude: bin = min(K-1, trunc(x * K))
    muli r15, r15, {self.K}
    trunc r15, r15
    li   r16, {self.K - 1}
    min  r15, r15, r16
    ldl  r17, r15, 0
    addi r17, r17, 1
    stl  r17, r15, 0
    ldl  r17, r0, {self.K}    # total iterations
    add  r17, r17, r13
    stl  r17, r0, {self.K}
    ldl  r17, r0, {self.K + 1}
    addi r17, r17, 1
    stl  r17, r0, {self.K + 1}"""

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        iters = fields[0].astype(np.int64)
        values = fields[1]
        # replicate the kernel's repeated multiplication exactly (bit-for-
        # bit float64) so truncation-to-bin never disagrees at boundaries
        x = values.copy()
        for step in range(self.MAX_ITERS):
            x = np.where(iters > step, x * values, x)
        bins = np.minimum((x * self.K).astype(np.int64), self.K - 1)
        return {
            "counts": np.bincount(bins, minlength=self.K),
            "total_iters": np.int64(iters.sum()),
            "records": np.int64(len(iters)),
        }

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        total = np.sum(thread_states, axis=0)
        return {
            "counts": total[: self.K].astype(np.int64),
            "total_iters": np.int64(total[self.K]),
            "records": np.int64(total[self.K + 1]),
        }
