"""``kmeans``: one k-means iteration (Table II row 6).

Identical structure to ``classify`` but with more centroids (k=8): the
assignment step is O(k) per record and dominates, making kmeans the
heaviest of the "medium" benchmarks (paper: 44 insts/word vs classify's
40).  Host-side finalization divides the reduced coordinate sums by the
counts to produce the next iteration's centroids.
"""

from __future__ import annotations

import numpy as np

from repro.workloads._centroid import (
    centroid_state_words,
    golden_centroid_result,
    make_centroids,
    nearest_centroid_body,
    reduce_centroid_states,
)
from repro.workloads.base import BuiltWorkload, Workload


class KmeansWorkload(Workload):
    name = "kmeans"
    D = 8
    K_CENTROIDS = 8
    CENTROID_SEED = 20180613
    n_fields = D
    state_words = centroid_state_words(K_CENTROIDS, D)
    default_records = 8 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        # mixture-of-blobs data so the clustering is meaningful
        centers = rng.uniform(0.2, 0.8, size=(self.K_CENTROIDS, self.D))
        which = rng.integers(0, self.K_CENTROIDS, size=n_records)
        pts = centers[which] + rng.normal(0.0, 0.08, size=(n_records, self.D))
        return [pts[:, d].copy() for d in range(self.D)]

    def initial_state(self):
        st = np.zeros(self.state_words)
        st[: self.K_CENTROIDS * self.D] = make_centroids(
            self.K_CENTROIDS, self.D, self.CENTROID_SEED
        ).reshape(-1)
        return st

    def kernel_body(self, block_records: int) -> str:
        return nearest_centroid_body(self.K_CENTROIDS, self.D, block_records, "km")

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        points = np.column_stack(fields)
        cents = make_centroids(self.K_CENTROIDS, self.D, self.CENTROID_SEED)
        return golden_centroid_result(points, cents)

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        return reduce_centroid_states(thread_states, self.K_CENTROIDS, self.D)

    @staticmethod
    def finalize(counts: np.ndarray, sums: np.ndarray) -> np.ndarray:
        """Host-side: new centroids = per-cluster means."""
        return sums / np.maximum(counts, 1)[:, None]
