"""``variance``: per-bin streaming statistics (Table II row 3).

Accumulates count, sum, and sum-of-squares per rating bin (the classic
one-pass variance decomposition Var = E[x^2] - E[x]^2, finalized at the
host after the global reduce).  Ratings are continuous in [0, K); the bin
is the integer part.  30% invalid records provide the 70/30 branch.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload


class VarianceWorkload(Workload):
    name = "variance"
    K = 8
    VALID_P = 0.7
    n_fields = 1
    state_words = 3 * K + 1  # per bin: [count, sum, sumsq]; + invalid
    default_records = 96 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        values = rng.uniform(0.0, self.K, size=n_records)
        invalid = rng.random(n_records) >= self.VALID_P
        values[invalid] = -1.0
        return [values]

    def kernel_body(self, block_records: int) -> str:
        inval_addr = 3 * self.K
        return f"""\
    ldg  r13, r10, 0          # value
    blt  r13, r0, var_inval
    trunc r14, r13            # bin = int(value)
    muli r14, r14, 3
    ldl  r15, r14, 0          # count++
    addi r15, r15, 1
    stl  r15, r14, 0
    ldl  r15, r14, 1          # sum += v
    add  r15, r15, r13
    stl  r15, r14, 1
    mul  r16, r13, r13        # sumsq += v*v
    ldl  r15, r14, 2
    add  r15, r15, r16
    stl  r15, r14, 2
    j    var_next
var_inval:
    ldl  r15, r0, {inval_addr}
    addi r15, r15, 1
    stl  r15, r0, {inval_addr}
var_next:"""

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        v = fields[0]
        valid = v >= 0
        bins = v[valid].astype(np.int64)
        vv = v[valid]
        counts = np.bincount(bins, minlength=self.K)
        sums = np.bincount(bins, weights=vv, minlength=self.K)
        sumsqs = np.bincount(bins, weights=vv * vv, minlength=self.K)
        return {
            "counts": counts,
            "sums": sums,
            "sumsqs": sumsqs,
            "invalid": np.int64(np.count_nonzero(~valid)),
        }

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        total = np.sum(thread_states, axis=0)
        per_bin = total[: 3 * self.K].reshape(self.K, 3)
        return {
            "counts": per_bin[:, 0].astype(np.int64),
            "sums": per_bin[:, 1],
            "sumsqs": per_bin[:, 2],
            "invalid": np.int64(total[3 * self.K]),
        }

    @staticmethod
    def finalize(counts: np.ndarray, sums: np.ndarray, sumsqs: np.ndarray) -> np.ndarray:
        """Host-side finalization: per-bin variance from the reduced sums."""
        n = np.maximum(counts, 1)
        mean = sums / n
        return sumsqs / n - mean * mean
