"""The eight BMLA benchmarks of the paper's Table II / Table IV.

Each workload bundles

* a synthetic data generator (the paper's movie-rating / N-dimensional
  point datasets),
* a Map + partial-Reduce kernel written in the mini ISA (the same kernel
  runs on every architecture),
* a golden NumPy implementation used to validate the *simulated* reduction
  end-to-end (the simulator moves real data), and
* the per-node reduce that combines per-thread partial states.

The suite spans the paper's light-to-heavy range (count ... gda); measured
instructions-per-input-word and branch rates are reported against the
paper's Table IV by the experiment harness.
"""

from repro.workloads.base import BuiltWorkload, Workload, record_loop, compare_results
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__all__ = [
    "BuiltWorkload",
    "Workload",
    "record_loop",
    "compare_results",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
