"""``count``: movie-rating histogram (Table II row 1).

The lightest benchmark: one word per record.  A 70/30 validity check
provides the data-dependent branch the paper attributes to BMLAs (invalid
ratings, encoded as -1, are tallied separately); valid ratings index the
bin counters *indirectly* - the irregular live-state access GPGPUs must
absorb in shared memory.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload


class CountWorkload(Workload):
    name = "count"
    K = 16  #: rating bins
    VALID_P = 0.7
    n_fields = 1
    state_words = K + 1  # bins + invalid counter
    default_records = 128 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        ratings = rng.integers(0, self.K, size=n_records).astype(np.float64)
        invalid = rng.random(n_records) >= self.VALID_P
        ratings[invalid] = -1.0
        return [ratings]

    def kernel_body(self, block_records: int) -> str:
        K = self.K
        return f"""\
    ldg  r13, r10, 0          # rating
    blt  r13, r0, count_inval # 70/30 data-dependent branch
    ldl  r14, r13, 0          # counter[rating]++ (indirect)
    addi r14, r14, 1
    stl  r14, r13, 0
    j    count_next
count_inval:
    ldl  r14, r0, {K}
    addi r14, r14, 1
    stl  r14, r0, {K}
count_next:"""

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        ratings = fields[0]
        valid = ratings >= 0
        return {
            "counts": np.bincount(ratings[valid].astype(np.int64), minlength=self.K),
            "invalid": np.int64(np.count_nonzero(~valid)),
        }

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        total = np.sum(thread_states, axis=0)
        return {
            "counts": total[: self.K].astype(np.int64),
            "invalid": np.int64(total[self.K]),
        }
