"""``gda``: Gaussian Discriminant Analysis sufficient statistics
(Table II row 8) - the heaviest benchmark.

Each record is a class label plus a D-dimensional continuous point; the
Map accumulates *per-class* mean vectors and upper-triangular second
moments (O(D^2) per record), selected through a data-dependent class
branch with the paper's ~70/30 split.  The host finalizes per-class
means/covariances after the global reduce.

State layout (per thread)::

    [0 .. D)                      staged coordinates
    base(c) = D + c*(D + T)       per-class region, c in {0, 1}
      [base .. base+D)            class-c sum vector
      [base+D .. base+D+T)        class-c upper-triangular x_i*x_j sums
    [D + 2*(D+T) + c]             classCount[c]

With D=14 this is 254 words - deliberately sized to the 256-word per-
thread budget every architecture shares (4 KB local memory / 4 contexts;
128 KB shared memory / 128 threads).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import BuiltWorkload, Workload


class GdaWorkload(Workload):
    name = "gda"
    D = 14
    TRI = D * (D + 1) // 2  # 105
    CLASS1_P = 0.7
    n_fields = D + 1  # class label + dims
    state_words = D + 2 * (D + TRI) + 2  # 254
    default_records = 4 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        labels = (rng.random(n_records) < self.CLASS1_P).astype(np.float64)
        shift = labels[:, None] * 0.5  # class-1 points are shifted
        pts = rng.normal(0.0, 1.0, size=(n_records, self.D)) + shift
        return [labels] + [pts[:, d].copy() for d in range(self.D)]

    def kernel_body(self, block_records: int) -> str:
        B = block_records
        D, TRI = self.D, self.TRI
        region = D + TRI  # words per class region
        cc_base = D + 2 * region
        lines = [
            f"    ldg  r13, r10, 0              # class label",
            f"    li   r14, 0                   # region base offset",
            f"    beqz r13, gda_c0              # 70/30 class branch",
            f"    li   r14, {region}",
            f"gda_c0:",
            f"    addi r14, r14, {D}            # r14 = class region base",
            # classCount[class]++
            f"    trunc r15, r13",
            f"    addi r15, r15, {cc_base}",
            f"    ldl  r16, r15, 0",
            f"    addi r16, r16, 1",
            f"    stl  r16, r15, 0",
        ]
        # stage coordinates
        for d in range(D):
            lines.append(f"    ldg  r15, r10, {(d + 1) * B}")
            lines.append(f"    stl  r15, r0, {d}")
        # class mean sums
        for d in range(D):
            lines.append(f"    ldl  r15, r0, {d}")
            lines.append(f"    ldl  r16, r14, {d}")
            lines.append(f"    add  r16, r16, r15")
            lines.append(f"    stl  r16, r14, {d}")
        # class second moments (upper triangular)
        idx = 0
        for i in range(D):
            for j in range(i, D):
                lines.append(f"    ldl  r15, r0, {i}")
                lines.append(f"    ldl  r16, r0, {j}")
                lines.append(f"    mul  r15, r15, r16")
                lines.append(f"    ldl  r16, r14, {D + idx}")
                lines.append(f"    add  r16, r16, r15")
                lines.append(f"    stl  r16, r14, {D + idx}")
                idx += 1
        return "\n".join(lines)

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        labels = fields[0].astype(np.int64)
        pts = np.column_stack(fields[1:])
        iu = np.triu_indices(self.D)
        out = {"class_count": np.bincount(labels, minlength=2)}
        for c in (0, 1):
            sub = pts[labels == c]
            out[f"sums{c}"] = sub.sum(axis=0)
            out[f"tri{c}"] = (sub.T @ sub)[iu]
        return out

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        total = np.sum(thread_states, axis=0)
        D, TRI = self.D, self.TRI
        region = D + TRI
        out = {}
        for c in (0, 1):
            base = D + c * region
            out[f"sums{c}"] = total[base : base + D]
            out[f"tri{c}"] = total[base + D : base + D + TRI]
        cc = D + 2 * region
        out["class_count"] = total[cc : cc + 2].astype(np.int64)
        return out
