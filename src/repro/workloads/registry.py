"""Benchmark registry (the paper's Table IV rows, in its light-to-heavy
order)."""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.count import CountWorkload
from repro.workloads.sample import SampleWorkload
from repro.workloads.variance import VarianceWorkload
from repro.workloads.nbayes import NaiveBayesWorkload
from repro.workloads.classify import ClassifyWorkload
from repro.workloads.kmeans import KmeansWorkload
from repro.workloads.pca import PcaWorkload
from repro.workloads.gda import GdaWorkload
from repro.workloads.varwork import VarWorkWorkload

WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        CountWorkload,
        SampleWorkload,
        VarianceWorkload,
        NaiveBayesWorkload,
        ClassifyWorkload,
        KmeansWorkload,
        PcaWorkload,
        GdaWorkload,
        VarWorkWorkload,  # stress kernel for the flow-control ablation
    )
}


def workload_names() -> list[str]:
    """The paper's eight benchmarks, in its Table IV order (excludes the
    ablation-only stress kernels)."""
    return [n for n in WORKLOADS if n != "varwork"]


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOADS)}"
        ) from None
