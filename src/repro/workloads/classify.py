"""``classify``: supervised classification via Euclidean distance
(Table II row 5): assign each N-dimensional point to the nearest of k
known centroids (O(k) per record) and accumulate per-class counts and
coordinate sums for the new centroids (O(1) amortized per word).

The argmin's strict-< winner update is a data-dependent branch inside the
k-loop - modest divergence, as the paper's Table IV shows (0.05
branches/inst).
"""

from __future__ import annotations

import numpy as np

from repro.workloads._centroid import (
    centroid_state_words,
    golden_centroid_result,
    make_centroids,
    nearest_centroid_body,
    reduce_centroid_states,
)
from repro.workloads.base import BuiltWorkload, Workload


class ClassifyWorkload(Workload):
    name = "classify"
    D = 8
    K_CENTROIDS = 4
    CENTROID_SEED = 20180521
    n_fields = D
    state_words = centroid_state_words(K_CENTROIDS, D)
    default_records = 16 * 1024

    def make_fields(self, n_records: int, rng: np.random.Generator) -> list[np.ndarray]:
        return [rng.uniform(0.0, 1.0, size=n_records) for _ in range(self.D)]

    def initial_state(self):
        st = np.zeros(self.state_words)
        st[: self.K_CENTROIDS * self.D] = make_centroids(
            self.K_CENTROIDS, self.D, self.CENTROID_SEED
        ).reshape(-1)
        return st

    def kernel_body(self, block_records: int) -> str:
        return nearest_centroid_body(self.K_CENTROIDS, self.D, block_records, "cls")

    def golden_result(self, fields: list[np.ndarray], n_threads: int,
                      traversal: str = "chunked") -> dict:
        points = np.column_stack(fields)
        cents = make_centroids(self.K_CENTROIDS, self.D, self.CENTROID_SEED)
        return golden_centroid_result(points, cents)

    def reduce(self, thread_states: list[np.ndarray], built: BuiltWorkload) -> dict:
        return reduce_centroid_states(thread_states, self.K_CENTROIDS, self.D)
