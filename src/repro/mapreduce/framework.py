"""End-to-end MapReduce jobs over the simulated PNM node.

A :class:`MapReduceJob` shards a dataset across cluster nodes, runs the Map
+ partial Reduce of one representative node on the cycle simulator (the
paper does the same: "run the benchmarks to completion on one processor" -
BMLA behaviour is statistically identical across shards), performs the
*real* per-node and final reductions on the simulated states, and budgets
node/cluster time with the host and shuffle cost models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, WORD_BYTES, SystemConfig
from repro.mapreduce.host import node_reduce_seconds
from repro.mapreduce.shuffle import ClusterModel
from repro.sim.driver import RunResult, run
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload


@dataclass
class NodeResult:
    """One node's simulated Map + partial Reduce."""

    run_result: RunResult
    reduced: dict
    map_seconds: float
    node_reduce_seconds: float

    @property
    def node_seconds(self) -> float:
        return self.map_seconds + self.node_reduce_seconds


@dataclass
class JobResult:
    """Whole-cluster MapReduce outcome."""

    node: NodeResult
    final: dict
    final_reduce_seconds: float
    n_nodes: int

    @property
    def total_seconds(self) -> float:
        """Nodes run in parallel; the final reduce follows."""
        return self.node.node_seconds + self.final_reduce_seconds


class MapReduceJob:
    """One BMLA MapReduction over a (simulated) PNM cluster."""

    def __init__(
        self,
        workload: str | Workload,
        arch: str = "millipede",
        config: SystemConfig = DEFAULT_CONFIG,
        cluster: Optional[ClusterModel] = None,
    ):
        self.workload = get_workload(workload) if isinstance(workload, str) else workload
        self.arch = arch
        self.config = config
        self.cluster = cluster or ClusterModel()

    def execute(self, records_per_node: Optional[int] = None, seed: int = 0) -> JobResult:
        """Simulate one node, reduce for real, budget the cluster."""
        rr = run(self.arch, self.workload, config=self.config,
                 n_records=records_per_node, seed=seed)
        if self.arch == "multicore":
            threads = self.config.multicore.n_cores * self.config.multicore.n_threads
        else:
            threads = self.config.core.n_cores * self.config.core.n_threads
        threads *= self.config.n_processors

        reduce_s = node_reduce_seconds(self.workload.state_words, threads)
        node = NodeResult(
            run_result=rr,
            reduced=rr.reduced,
            map_seconds=rr.runtime_s,
            node_reduce_seconds=reduce_s,
        )

        # final reduce: every node contributes a statistically identical
        # shard; combining n identical reduced dicts scales the additive
        # fields, which we do for real on the representative node's output
        final = {}
        for key, value in rr.reduced.items():
            arr = np.asarray(value)
            if key == "elements":  # per-thread kept samples do not add
                final[key] = arr
            elif np.issubdtype(arr.dtype, np.integer):
                final[key] = arr * self.cluster.n_nodes
            else:
                final[key] = arr * float(self.cluster.n_nodes)

        state_bytes = self.workload.state_words * WORD_BYTES
        final_s = self.cluster.final_reduce_seconds(state_bytes)
        return JobResult(
            node=node,
            final=final,
            final_reduce_seconds=final_s,
            n_nodes=self.cluster.n_nodes,
        )
