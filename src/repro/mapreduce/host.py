"""Host-CPU per-node Reduce (section IV-D).

"The host CPU performs the per-node Reduce, as observed in [10], [13]...
Map and partial Reduce of tens of millions of records in each node take a
few seconds versus per-node Reduce across 32 Millipede processors of a
node takes hundreds of microseconds."

The reduce itself is performed for real (NumPy sum over per-thread
states); its *cost* is modelled with a simple host throughput parameter so
Fig. 5 and the cluster model can budget it.
"""

from __future__ import annotations

import numpy as np

#: effective host reduction throughput: words combined per second.  A few
#: GB/s of streaming adds on one host core - deliberately conservative.
HOST_REDUCE_WORDS_PER_S = 2e9
#: fixed per-reduce overhead (kernel launch / driver / copy setup)
HOST_REDUCE_FIXED_S = 10e-6


def node_reduce_seconds(state_words: int, n_threads: int,
                        words_per_s: float = HOST_REDUCE_WORDS_PER_S) -> float:
    """Time for the host to combine ``n_threads`` partial states of
    ``state_words`` words each (the paper: hundreds of microseconds for a
    32-processor node)."""
    return HOST_REDUCE_FIXED_S + state_words * n_threads / words_per_s


def host_reduce(thread_states: list[np.ndarray]) -> np.ndarray:
    """The actual per-node reduce: elementwise sum of partial states.

    Correct for every bundled workload because each keeps additive
    sufficient statistics (counts, sums, sums of products); workloads with
    non-additive slots (sample's kept elements) override
    :meth:`repro.workloads.base.Workload.reduce` instead of using this."""
    return np.sum(thread_states, axis=0)
