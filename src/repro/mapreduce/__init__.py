"""MapReduce execution model (sections III-A, IV-D).

BMLAs are MapReductions: each hardware thread is a Map task with a partial
Reduce into its private live state; the host CPU performs the per-node
Reduce over all processors' thread states; the cluster network carries the
global final Reduce.  The PNM part is simulated cycle-accurately by
:mod:`repro.sim`; this package adds the host/cluster layers as cost models
plus *real* reductions (the data actually gets combined), so end-to-end
MapReduce jobs over the simulated node produce checked results.
"""

from repro.mapreduce.framework import MapReduceJob, NodeResult
from repro.mapreduce.host import host_reduce, node_reduce_seconds
from repro.mapreduce.shuffle import ClusterModel

__all__ = [
    "MapReduceJob",
    "NodeResult",
    "host_reduce",
    "node_reduce_seconds",
    "ClusterModel",
]
