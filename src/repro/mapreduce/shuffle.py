"""Cluster-level shuffle and final Reduce cost model (sections III-A, IV-D).

"The global final Reduce across 5000 nodes of a cluster takes tens of
milliseconds."  We model the cross-cluster shuffle as a reduction tree over
the datacenter network; the numbers only need to support the paper's
qualitative point - the final Reduce is negligible next to the Map phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterModel:
    """Datacenter parameters for the final Reduce."""

    n_nodes: int = 5000
    link_bytes_per_s: float = 10e9 / 8  # 10 Gb/s
    per_hop_latency_s: float = 50e-6
    fanin: int = 16  #: reduction-tree arity

    def tree_depth(self) -> int:
        if self.n_nodes <= 1:
            return 0
        return math.ceil(math.log(self.n_nodes, self.fanin))

    def final_reduce_seconds(self, state_bytes: int) -> float:
        """Latency of the global final Reduce of one ``state_bytes`` blob
        through a ``fanin``-ary reduction tree."""
        depth = self.tree_depth()
        per_level = self.per_hop_latency_s + state_bytes * self.fanin / self.link_bytes_per_s
        return depth * per_level

    def shuffle_bytes(self, state_bytes: int) -> int:
        """Total bytes moved by the final Reduce (every node sends once)."""
        return state_bytes * max(0, self.n_nodes - 1)
