"""Opt-in runtime invariant checking for the simulator.

``SimSanitizer`` attaches read-only observers to the event engine, DRAM
controller, prefetch buffer, SIMT divergence stacks, barrier coordinator,
and DFS clock, and re-derives each mechanism's invariants independently of
the component's own bookkeeping.  A broken invariant raises a structured
:class:`InvariantViolation` carrying the component path and a diagnostic
state snapshot.

Enable it per run with ``RunSpec(..., sanitize=True)``, the ``sanitize=``
keyword of :func:`repro.sim.driver.run`, or the ``--sanitize`` flag of the
experiment runner.  Sanitized runs produce byte-identical statistics and
metrics to unsanitized runs: observers never mutate simulation state and
the sanitizer keeps all of its counters private.

:mod:`repro.sanitize.inject` provides the matching fault injectors that
the test suite uses to prove every invariant class actually fires.
"""

from repro.sanitize.sanitizer import InvariantViolation, SimSanitizer

__all__ = ["InvariantViolation", "SimSanitizer"]
