"""The sanitizer proper: per-component invariant checkers.

Every checker is an *observer*: it receives the hook calls a component
makes at its mechanism points (attached via
:func:`repro.engine.observer.attach_observer`, so it composes with other
observers such as the :mod:`repro.trace` tracer) and keeps its own shadow
state, so corruption of the component's internal bookkeeping is caught by
disagreement rather than trusted.  Checkers never mutate simulation
state, which is what guarantees a sanitized run is bit-identical to an
unsanitized one.

Invariant classes (the ``invariant`` field of a violation):

==============================  =========================================
``time-monotonicity``           events delivered in non-decreasing time
``livelock``                    watchdog: too many events without the
                                clock advancing
``dram-timing``                 tRP/tRCD/tRAS/tCAS ordering legality
``dram-window``                 FR-FCFS picked outside its queue window
``dram-bus-overlap``            two transfers overlapping on the bus
``dram-phantom-completion``     completion of a never-granted request
``pb-capacity``                 circular queue over-allocated
``pb-row-ordering``             rows not allocated sequentially
``pb-double-alloc`` / ``pb-double-fill``  entry lifecycle corruption
``pft-retrigger``               a PFT entry triggered more than once
``df-consistency``              DF counter disagrees with consumption
``df-head-evict``               head re-allocated before DF saturation
``fc-premature-evict``          premature eviction despite flow control
``slab-privacy``                corelet touched another corelet's slab
``simt-dropped-pop``            reconverged frame left on the stack
``simt-unbalanced-stack``       warp halted with stack depth != 1
``simt-mask``                   active mask empty or outside warp width
``barrier-overflow``            more arrivals than expected threads
``barrier-duplicate-arrival``   one thread arrived twice in a generation
``barrier-incomplete-generation``  run ended mid-generation
``dfs-range`` / ``dfs-step`` / ``dfs-debounce``  rate-matching legality
``dfs-unexpected-change``       frequency change without a controller
==============================  =========================================
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.engine.observer import attach_observer
from repro.engine.stats import Stats

#: relative tolerance for floating-point frequency comparisons
_FREQ_EPS = 1e-9


class InvariantViolation(AssertionError):
    """A simulator invariant was broken.

    Carries enough context to debug without re-running: the dotted
    component path, the invariant class, the simulated time, and a
    snapshot of the sanitizer's shadow state at the moment of detection.
    """

    def __init__(self, component: str, invariant: str, message: str,
                 time_ps: int, snapshot: dict):
        self.component = component
        self.invariant = invariant
        self.time_ps = time_ps
        self.snapshot = snapshot
        super().__init__(
            f"[{invariant}] {component} @ t={time_ps}ps: {message}"
        )


class SimSanitizer:
    """Attachment hub + shared violation/bookkeeping machinery.

    >>> from repro.engine.events import Engine
    >>> san = SimSanitizer()
    >>> eng = Engine()
    >>> san.attach_engine(eng)
    >>> _ = eng.schedule(10, lambda: None)
    >>> eng.run()
    1
    >>> san.checks["time-monotonicity"]
    1
    """

    def __init__(self, *, watchdog_events: int = 5_000_000, trace_depth: int = 16):
        #: same-timestamp event deliveries tolerated before the livelock
        #: watchdog fires (progress = simulated time advancing)
        self.watchdog_events = watchdog_events
        #: per-invariant-class count of checks evaluated (not violations)
        self.checks: dict[str, int] = {}
        self._engine = None
        self._checkers: list = []
        self._trace: deque = deque(maxlen=trace_depth)

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def tick(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    @property
    def now(self) -> int:
        return self._engine.now if self._engine is not None else 0

    def snapshot(self) -> dict:
        """Shadow-state summary captured into every violation."""
        snap: dict = {
            "time_ps": self.now,
            "checks": dict(self.checks),
            "recent_events": list(self._trace),
        }
        if self._engine is not None:
            snap["pending_events"] = self._engine.pending
        for c in self._checkers:
            snap[c.component] = c.summary()
        return snap

    def violation(self, component: str, invariant: str, message: str) -> None:
        raise InvariantViolation(component, invariant, message,
                                 self.now, self.snapshot())

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def _register(self, checker, target) -> None:
        attach_observer(target, checker)
        self._checkers.append(checker)

    def attach_engine(self, engine) -> None:
        self._engine = engine
        self._register(_EngineChecker(self, engine), engine)

    def attach_controller(self, mc) -> None:
        """``mc`` is a :class:`repro.dram.controller.MemoryController`."""
        self._register(_DramChecker(self, mc), mc)

    def attach_prefetch_buffer(self, pb, *, private_slabs: bool = True) -> None:
        """``private_slabs`` enforces that each consumption unit touches
        only its own slab slice; disable for interleaved traversals (the
        VWS row-oriented SM shares rows across warps)."""
        self._register(_PbChecker(self, pb, private_slabs), pb)

    def attach_simt(self, sm) -> None:
        """``sm`` is a :class:`repro.arch.gpgpu.GpgpuSM` (or subclass)."""
        self._register(_SimtChecker(self, sm), sm)

    def attach_barrier(self, barrier) -> None:
        self._register(_BarrierChecker(self, barrier), barrier)

    def attach_clock(self, clock, rate_cfg=None) -> None:
        """With ``rate_cfg`` (a :class:`repro.config.MillipedeConfig`),
        frequency changes are checked for range/step/debounce legality;
        without it any post-attach change is itself a violation."""
        self._register(_ClockChecker(self, clock, rate_cfg), clock)

    def attach_processor(self, proc) -> None:
        """Duck-typed attachment to every checkable part of ``proc``."""
        mc = getattr(proc, "mc", None)
        if mc is not None:
            self.attach_controller(mc)
        pb = getattr(proc, "prefetch_buffer", None)
        if pb is not None:
            # chunked-traversal corelets own private slabs; interleaved
            # SIMT consumers (VwsRowSM) legitimately share rows
            self.attach_prefetch_buffer(pb, private_slabs=hasattr(proc, "corelets"))
        if getattr(proc, "warps", None) is not None:
            self.attach_simt(proc)
        barrier = getattr(proc, "barrier", None)
        if barrier is not None:
            self.attach_barrier(barrier)
        clock = getattr(proc, "clock", None)
        if clock is not None:
            rate_cfg = None
            if getattr(proc, "rate_controller", None) is not None:
                rate_cfg = proc.config.millipede
            self.attach_clock(clock, rate_cfg)

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------
    def finalize(self, proc=None) -> None:
        """Invariants only checkable once the event queue has drained."""
        for c in self._checkers:
            c.finalize(proc)

    def report(self) -> dict:
        """Post-run summary: which invariant classes were exercised."""
        return {"checks": dict(self.checks),
                "components": [c.component for c in self._checkers]}


class _Checker:
    """Base: component path + no-op finalize/summary."""

    def __init__(self, san: SimSanitizer, component: str):
        self.san = san
        self.component = component

    def fail(self, invariant: str, message: str) -> None:
        self.san.violation(self.component, invariant, message)

    def finalize(self, proc) -> None:  # pragma: no cover - overridden
        pass

    def summary(self) -> dict:
        return {}


# ----------------------------------------------------------------------
# engine: monotonicity + livelock watchdog
# ----------------------------------------------------------------------
class _EngineChecker(_Checker):
    def __init__(self, san, engine):
        super().__init__(san, "engine")
        self.engine = engine
        self.last_time = engine.now
        self.events_at_time = 0
        self.delivered = 0

    def on_deliver(self, ev) -> None:
        self.san.tick("time-monotonicity")
        self.delivered += 1
        self.san._trace.append(
            (ev.time, getattr(ev.fn, "__qualname__", repr(ev.fn)))
        )
        if ev.time < self.last_time:
            self.fail(
                "time-monotonicity",
                f"event {ev!r} delivered at t={ev.time}ps after "
                f"t={self.last_time}ps",
            )
        if ev.time == self.last_time:
            self.events_at_time += 1
            if self.events_at_time > self.san.watchdog_events:
                self.fail(
                    "livelock",
                    f"{self.events_at_time} events delivered at "
                    f"t={ev.time}ps without time advancing "
                    f"(watchdog horizon {self.san.watchdog_events})",
                )
        else:
            self.last_time = ev.time
            self.events_at_time = 0

    def summary(self) -> dict:
        return {"delivered": self.delivered, "last_time_ps": self.last_time,
                "events_at_time": self.events_at_time}


# ----------------------------------------------------------------------
# DRAM controller: FR-FCFS + bank-timing legality
# ----------------------------------------------------------------------
class _DramChecker(_Checker):
    def __init__(self, san, mc):
        super().__init__(san, f"dram.{mc.stats._prefix}")
        self.mc = mc
        self.t = mc.timing
        #: granted-but-uncompleted transfers: req -> transfer end ps
        self.in_flight: dict = {}
        self.grants = 0
        self.completions = 0

    def on_bank_assign(self, bank_id, bank, req, window_idx,
                       prev_open, prev_act, now) -> None:
        t = self.t
        self.san.tick("dram-window")
        if not (0 <= window_idx < self.mc.cfg.controller_queue_depth):
            self.fail(
                "dram-window",
                f"bank {bank_id} bound queue position {window_idx}, outside "
                f"the {self.mc.cfg.controller_queue_depth}-deep FR-FCFS window",
            )
        self.san.tick("dram-timing")
        if req.bank != bank_id or bank.open_row != req.row:
            self.fail(
                "dram-timing",
                f"bank {bank_id} bound {req!r} but open_row={bank.open_row}",
            )
        # re-derive the activation lower bound from pre-mutation state:
        # precharge may not start before the bank frees and tRAS elapses,
        # and costs tRP only when a row was open
        pre_lb = max(now, bank.busy_until_ps, prev_act + t.t_ras_ps)
        act_lb = pre_lb + (t.t_rp_ps if prev_open is not None else 0)
        if bank.act_ps != act_lb:
            self.fail(
                "dram-timing",
                f"bank {bank_id} activation at {bank.act_ps}ps; tRP/tRAS "
                f"legality requires exactly {act_lb}ps",
            )
        if req.data_ready_ps != bank.act_ps + t.t_rcd_ps + t.t_cas_ps:
            self.fail(
                "dram-timing",
                f"{req!r} data_ready {req.data_ready_ps}ps != "
                f"ACT {bank.act_ps}ps + tRCD + tCAS",
            )

    def on_bus_grant(self, req, bank, data_start, end,
                     prev_bus_free, bound) -> None:
        t = self.t
        self.san.tick("dram-bus-overlap")
        if data_start < prev_bus_free:
            self.fail(
                "dram-bus-overlap",
                f"{req!r} starts its transfer at {data_start}ps while the "
                f"bus is busy until {prev_bus_free}ps",
            )
        self.san.tick("dram-timing")
        cas_lb = bank.act_ps + t.t_rcd_ps + t.t_cas_ps
        if data_start < cas_lb:
            self.fail(
                "dram-timing",
                f"{req!r} transfer at {data_start}ps before its row's "
                f"ACT+tRCD+tCAS bound {cas_lb}ps",
            )
        if data_start < req.arrival_ps:
            self.fail(
                "dram-timing",
                f"{req!r} served at {data_start}ps before its arrival "
                f"at {req.arrival_ps}ps",
            )
        self.grants += 1
        self.in_flight[req] = end

    def on_complete(self, req) -> None:
        self.san.tick("dram-phantom-completion")
        end = self.in_flight.pop(req, None)
        if end is None:
            self.fail(
                "dram-phantom-completion",
                f"{req!r} completed without a recorded bus grant",
            )
        self.completions += 1

    def finalize(self, proc) -> None:
        if self.in_flight:
            self.fail(
                "dram-phantom-completion",
                f"{len(self.in_flight)} granted transfers never completed",
            )

    def summary(self) -> dict:
        return {"grants": self.grants, "completions": self.completions,
                "in_flight": len(self.in_flight),
                "queue_len": len(self.mc.queue)}


# ----------------------------------------------------------------------
# prefetch buffer: circular-queue / PFT / DF / flow-control sanity
# ----------------------------------------------------------------------
class _PbShadow:
    __slots__ = ("consumed", "triggers_done", "filled")

    def __init__(self, consumed: list):
        self.consumed = consumed
        self.triggers_done = 0
        self.filled = False


class _PbChecker(_Checker):
    def __init__(self, san, pb, private_slabs: bool):
        super().__init__(san, f"mem.{pb.stats._prefix}")
        self.pb = pb
        self.private_slabs = private_slabs
        #: row -> shadow state, for every currently-allocated entry
        self.shadow: dict[int, _PbShadow] = {}
        self.allocs = 0
        self.evictions = 0
        self.premature = 0

    # -- lifecycle ------------------------------------------------------
    def on_alloc(self, entry) -> None:
        pb = self.pb
        self.san.tick("pb-capacity")
        if len(pb.entries) > pb.n_entries:
            self.fail(
                "pb-capacity",
                f"{len(pb.entries)} entries allocated in a "
                f"{pb.n_entries}-entry circular queue",
            )
        self.san.tick("pb-double-alloc")
        if entry.row in self.shadow:
            self.fail("pb-double-alloc", f"row {entry.row} allocated twice")
        self.san.tick("pb-row-ordering")
        if len(pb.entries) > 1 and entry.row != pb.entries[-2].row + 1:
            self.fail(
                "pb-row-ordering",
                f"row {entry.row} allocated after row {pb.entries[-2].row}; "
                "the stream must be sequential",
            )
        # entries can be born pre-consumed (fallback demand fetches that
        # raced ahead of allocation fold into the DF accounting)
        self.shadow[entry.row] = _PbShadow(list(entry.consumed))
        self.allocs += 1

    def on_fill(self, entry) -> None:
        self.san.tick("pb-double-fill")
        sh = self.shadow.get(entry.row)
        if sh is None:
            self.fail("pb-double-fill", f"fill for unallocated row {entry.row}")
        if sh.filled:
            self.fail("pb-double-fill", f"row {entry.row} filled twice")
        sh.filled = True

    def on_evict(self, head, premature: bool) -> None:
        pb = self.pb
        self.evictions += 1
        sh = self.shadow.pop(head.row, None)
        if premature:
            self.premature += 1
            self.san.tick("fc-premature-evict")
            if pb.flow_control:
                self.fail(
                    "fc-premature-evict",
                    f"row {head.row} evicted at DF={head.df_count} with flow "
                    "control on; the head may only be re-allocated saturated",
                )
        else:
            self.san.tick("df-head-evict")
            if head.df_count < pb.n_corelets:
                self.fail(
                    "df-head-evict",
                    f"row {head.row} evicted as saturated at "
                    f"DF={head.df_count} < {pb.n_corelets}",
                )
            if sh is not None:
                self._check_df(head, sh)

    # -- consumption ----------------------------------------------------
    def on_demand(self, corelet_id: int, addr: int) -> None:
        pb = self.pb
        if self.private_slabs:
            self.san.tick("slab-privacy")
            slab = (addr % pb.row_words) // pb.slab_words
            if slab != corelet_id:
                self.fail(
                    "slab-privacy",
                    f"corelet {corelet_id} demanded word {addr} in corelet "
                    f"{slab}'s slab of row {addr // pb.row_words}",
                )

    def on_consume(self, corelet_id: int, entry) -> None:
        pb = self.pb
        sh = self.shadow.get(entry.row)
        if sh is None:
            self.fail("df-consistency", f"consume on unallocated row {entry.row}")
        sh.consumed[corelet_id] += 1
        self.san.tick("df-consistency")
        if sh.consumed[corelet_id] != entry.consumed[corelet_id]:
            self.fail(
                "df-consistency",
                f"row {entry.row} corelet {corelet_id}: entry says "
                f"{entry.consumed[corelet_id]} words consumed, shadow says "
                f"{sh.consumed[corelet_id]}",
            )
        if sh.consumed[corelet_id] > pb.slab_words:
            self.fail(
                "df-consistency",
                f"corelet {corelet_id} consumed {sh.consumed[corelet_id]} "
                f"words of its {pb.slab_words}-word slab in row {entry.row}",
            )
        self._check_df(entry, sh)

    def _check_df(self, entry, sh: _PbShadow) -> None:
        expect = sum(1 for c in sh.consumed if c >= self.pb.slab_words)
        if entry.df_count != expect:
            self.fail(
                "df-consistency",
                f"row {entry.row} DF counter is {entry.df_count}; "
                f"{expect} corelets have finished their slabs",
            )

    def on_trigger(self, entry, done: bool) -> None:
        sh = self.shadow.get(entry.row)
        if done:
            self.san.tick("pft-retrigger")
            if sh is not None:
                sh.triggers_done += 1
                if sh.triggers_done > 1:
                    self.fail(
                        "pft-retrigger",
                        f"row {entry.row} fired its prefetch trigger "
                        f"{sh.triggers_done} times; PFT must trigger once",
                    )
        else:
            self.san.tick("fc-premature-evict")
            if not self.pb.flow_control:
                self.fail(
                    "fc-premature-evict",
                    f"row {entry.row} trigger deferred with flow control off",
                )

    def summary(self) -> dict:
        return {"occupancy": self.pb.occupancy, "allocs": self.allocs,
                "evictions": self.evictions, "premature": self.premature,
                "head_row": self.pb.head_row, "tail_row": self.pb.tail_row}


# ----------------------------------------------------------------------
# SIMT divergence stacks
# ----------------------------------------------------------------------
class _SimtChecker(_Checker):
    def __init__(self, san, sm):
        super().__init__(san, "arch.simt")
        self.sm = sm
        self.instrs = 0

    def on_warp_instr(self, warp) -> None:
        self.instrs += 1
        stack = warp.stack
        self.san.tick("simt-dropped-pop")
        if len(stack) > 1 and stack[-1][1] == stack[-1][0]:
            self.fail(
                "simt-dropped-pop",
                f"warp {warp.wid} issued with a reconverged frame on top "
                f"(pc == reconv_pc == {stack[-1][0]}, depth {len(stack)}); "
                "a reconvergence pop was dropped",
            )
        self.san.tick("simt-mask")
        mask = stack[-1][2]
        if mask == 0 or mask & ~warp.full_mask:
            self.fail(
                "simt-mask",
                f"warp {warp.wid} active mask {mask:#x} outside "
                f"(0, {warp.full_mask:#x}]",
            )

    def on_warp_done(self, warp) -> None:
        self.san.tick("simt-unbalanced-stack")
        if len(warp.stack) != 1:
            self.fail(
                "simt-unbalanced-stack",
                f"warp {warp.wid} halted with stack depth {len(warp.stack)}; "
                "divergence pushes were not balanced by reconvergence pops",
            )

    def finalize(self, proc) -> None:
        for warp in self.sm.warps:
            if warp.done and len(warp.stack) != 1:
                self.fail(
                    "simt-unbalanced-stack",
                    f"warp {warp.wid} finished with stack depth "
                    f"{len(warp.stack)}",
                )

    def summary(self) -> dict:
        return {"warp_instrs": self.instrs,
                "stack_depths": [len(w.stack) for w in self.sm.warps]}


# ----------------------------------------------------------------------
# barrier coordinator: generation counting
# ----------------------------------------------------------------------
class _BarrierChecker(_Checker):
    def __init__(self, san, barrier):
        super().__init__(san, "core.barrier")
        self.barrier = barrier
        #: (core id, slot) pairs seen in the current generation
        self.generation: set = set()
        self.generations = 0

    def on_arrive(self, core, slot, n_waiting, expected) -> None:
        self.san.tick("barrier-overflow")
        if n_waiting > expected:
            self.fail(
                "barrier-overflow",
                f"{n_waiting} arrivals waiting on an {expected}-thread barrier",
            )
        self.san.tick("barrier-duplicate-arrival")
        key = (id(core), slot)
        if key in self.generation:
            self.fail(
                "barrier-duplicate-arrival",
                f"core {getattr(core, 'core_id', '?')} slot {slot} arrived "
                f"twice in generation {self.generations}",
            )
        self.generation.add(key)

    def on_release(self, expected) -> None:
        self.san.tick("barrier-incomplete-generation")
        if len(self.generation) != expected:
            self.fail(
                "barrier-incomplete-generation",
                f"generation {self.generations} released with "
                f"{len(self.generation)}/{expected} distinct arrivals",
            )
        self.generation.clear()
        self.generations += 1

    def finalize(self, proc) -> None:
        self.san.tick("barrier-incomplete-generation")
        if self.generation:
            self.fail(
                "barrier-incomplete-generation",
                f"run ended with generation {self.generations} stuck at "
                f"{len(self.generation)} arrivals; the remaining threads "
                "never reached the barrier (deadlock)",
            )

    def summary(self) -> dict:
        return {"generations": self.generations,
                "waiting": len(self.generation)}


# ----------------------------------------------------------------------
# DFS clock: rate-matching legality
# ----------------------------------------------------------------------
class _ClockChecker(_Checker):
    def __init__(self, san, clock, rate_cfg):
        super().__init__(san, f"clock.{clock.name}")
        self.clock = clock
        self.rate_cfg = rate_cfg
        self.changes = 0
        self._last_change_ps: Optional[int] = None

    def on_set_frequency(self, clock, old_hz: float, new_hz: float) -> None:
        self.changes += 1
        cfg = self.rate_cfg
        if cfg is None:
            self.san.tick("dfs-unexpected-change")
            self.fail(
                "dfs-unexpected-change",
                f"frequency changed {old_hz / 1e6:.1f} -> "
                f"{new_hz / 1e6:.1f} MHz on a clock with no rate controller",
            )
            return
        self.san.tick("dfs-range")
        lo, hi = cfg.rate_match_min_hz, cfg.rate_match_max_hz
        if not (lo * (1 - _FREQ_EPS) <= new_hz <= hi * (1 + _FREQ_EPS)):
            self.fail(
                "dfs-range",
                f"frequency {new_hz / 1e6:.1f} MHz outside the DFS range "
                f"[{lo / 1e6:.0f}, {hi / 1e6:.0f}] MHz",
            )
        self.san.tick("dfs-step")
        if old_hz > 0 and abs(new_hz / old_hz - 1.0) > cfg.rate_match_step + _FREQ_EPS:
            self.fail(
                "dfs-step",
                f"frequency stepped {old_hz / 1e6:.1f} -> "
                f"{new_hz / 1e6:.1f} MHz; steps are limited to "
                f"±{cfg.rate_match_step:.0%}",
            )
        self.san.tick("dfs-debounce")
        now = self.san.now
        if (self._last_change_ps is not None
                and now - self._last_change_ps < cfg.rate_match_interval_ps):
            self.fail(
                "dfs-debounce",
                f"frequency changed {now - self._last_change_ps}ps after the "
                f"previous change; debounce interval is "
                f"{cfg.rate_match_interval_ps}ps",
            )
        self._last_change_ps = now

    def summary(self) -> dict:
        return {"freq_hz": self.clock.freq_hz, "changes": self.changes}
