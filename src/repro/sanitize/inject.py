"""Deliberate fault injection for sanitizer verification (tests only).

Each injector corrupts a live component the way a real bug would - by
wrapping one of its bound methods on the *instance* - so the paired test
can prove the matching :mod:`repro.sanitize` invariant class actually
fires.  Injectors are one-shot: they arm once and corrupt at the first
opportunity.

=========================  =======================================
injector                   invariant class it must trip
=========================  =======================================
``skip_df``                ``df-consistency`` / ``df-head-evict``
``reorder_dram_command``   ``dram-timing``
``drop_reconv_pop``        ``simt-dropped-pop``
``stuck_clock``            ``dfs-range`` / ``dfs-unexpected-change``
``drop_barrier_arrival``   ``barrier-incomplete-generation``
``rearm_pft``              ``pft-retrigger``
``corrupt_event_time``     ``time-monotonicity``
``spin_livelock``          ``livelock``
=========================  =======================================

Never import this module from simulation code.
"""

from __future__ import annotations


class FaultInjector:
    """Arms one-shot corruptions against live components.

    ``injected`` records (fault name, detail) pairs once each corruption
    has actually happened, so tests can assert the fault fired at all.
    """

    def __init__(self) -> None:
        self.injected: list[tuple[str, str]] = []

    def _mark(self, name: str, detail: str) -> None:
        self.injected.append((name, detail))

    # ------------------------------------------------------------------
    def skip_df(self, pb) -> None:
        """Lose one DF increment: after the first corelet saturates its
        slab, silently decrement the entry's DF counter."""
        orig = pb._consume
        armed = [True]

        def consume(corelet_id, entry):
            orig(corelet_id, entry)
            if armed[0] and entry.df_count > 0:
                armed[0] = False
                entry.df_count -= 1
                self._mark("skip_df", f"row {entry.row}")

        pb._consume = consume

    def reorder_dram_command(self, mc) -> None:
        """Issue a CAS out of order: pretend a freshly activated bank's
        request had its data ready immediately, before tRCD+tCAS."""
        orig = mc._assign_banks
        armed = [True]

        def assign():
            orig()
            if not armed[0]:
                return
            for bank in mc.banks:
                req = bank.pending
                if req is not None and req.data_ready_ps > mc.engine.now:
                    armed[0] = False
                    req.data_ready_ps = mc.engine.now
                    self._mark("reorder_dram_command", repr(req))
                    return

        mc._assign_banks = assign

    def drop_reconv_pop(self, sm) -> None:
        """Drop one reconvergence pop: leave a reconverged frame on the
        first warp stack that should have popped."""
        orig = sm._pop_reconverged
        armed = [True]

        def pop(warp):
            stack = warp.stack
            if (armed[0] and len(stack) > 1
                    and stack[-1][1] == stack[-1][0]):
                armed[0] = False
                self._mark("drop_reconv_pop", f"warp {warp.wid}")
                return
            orig(warp)

        sm._pop_reconverged = pop

    def stuck_clock(self, engine, clock, *, freq_hz: float = 1.4e9,
                    delay_ps: int = 1000) -> None:
        """Force the compute clock to an out-of-range frequency mid-run."""

        def corrupt():
            self._mark("stuck_clock", f"{freq_hz / 1e6:.0f} MHz")
            clock.set_frequency(freq_hz)

        engine.schedule(delay_ps, corrupt)

    def drop_barrier_arrival(self, barrier) -> None:
        """Swallow the first barrier arrival so its generation can never
        complete (the classic missed-barrier deadlock)."""
        orig = barrier.arrive
        armed = [True]

        def arrive(core, slot):
            if armed[0]:
                armed[0] = False
                self._mark("drop_barrier_arrival", f"slot {slot}")
                return
            orig(core, slot)

        barrier.arrive = arrive

    def rearm_pft(self, pb) -> None:
        """Set an entry's PFT bit back after its trigger fired, so the
        next first-touch demand access re-triggers the prefetch."""
        orig = pb._try_trigger
        armed = [True]

        def trigger(entry):
            orig(entry)
            if armed[0] and not entry.pft:
                armed[0] = False
                entry.pft = True
                self._mark("rearm_pft", f"row {entry.row}")

        pb._try_trigger = trigger

    def corrupt_event_time(self, engine) -> None:
        """Rewind a queued event's timestamp into the past (heap
        corruption): it will be delivered after later-timestamped events."""
        for ev in reversed(engine._heap):
            if not ev.cancelled and ev.time > 0:
                ev.time = -1
                self._mark("corrupt_event_time", repr(ev))
                return
        raise RuntimeError("no future event to corrupt")

    def spin_livelock(self, engine) -> None:
        """Schedule an event that perpetually reschedules itself at the
        same timestamp, so simulated time never advances."""
        self._mark("spin_livelock", f"t={engine.now}ps")

        def spin():
            engine.schedule(0, spin)

        engine.schedule(0, spin)
