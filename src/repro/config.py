"""Hardware configuration (the paper's Table III, plus reproduction knobs).

Every architecture model is constructed from these frozen dataclasses so an
experiment can sweep a parameter (corelet count, prefetch-buffer entries,
channel bandwidth, ...) by calling :func:`dataclasses.replace`.

Calibration note
----------------
The paper runs 128 MB inputs on a modified GPGPU-Sim; we run scaled-down
inputs on a from-scratch simulator.  The preserved quantity is the
*compute-to-memory rate ratio*: the default channel bandwidth is calibrated
so that the compute/memory crossover falls mid-way through the benchmark
suite, which is where the paper's Table IV places it (rate-matched clocks
rise monotonically from `count` toward `gda`).  ``DramConfig.channel_bytes_per_cycle``
is the single knob; see EXPERIMENTS.md for the calibration record.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

WORD_BYTES = 4  #: global memory is word-addressed; one word = 4 bytes.


@dataclass(frozen=True)
class DramConfig:
    """Die-stacked DRAM channel parameters (Table III, bottom half)."""

    channel_clock_hz: float = 1.2e9
    #: bytes transferred per channel clock on the data bus.  128-bit SDR
    #: would be 16; the default 8 is the reproduction's calibrated
    #: compute:memory ratio (see module docstring).
    channel_bytes_per_cycle: int = 8
    row_bytes: int = 2048
    banks_per_channel: int = 4
    #: timing in channel-clock cycles: tCAS-tRP-tRCD-tRAS = 9-9-9-27
    t_cas: int = 9
    t_rp: int = 9
    t_rcd: int = 9
    t_ras: int = 27
    #: FR-FCFS scheduling window depth
    controller_queue_depth: int = 16
    #: aggregate DRAM access energy (paper cites 6 pJ/bit [31])
    access_pj_per_bit: float = 6.0
    #: extra energy per row activation (charged on every row miss/open)
    activate_pj: float = 2000.0

    @property
    def row_words(self) -> int:
        return self.row_bytes // WORD_BYTES

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        return self.channel_clock_hz * self.channel_bytes_per_cycle


@dataclass(frozen=True)
class CoreConfig:
    """Per-corelet/lane/core parameters shared by all PNM architectures."""

    clock_hz: float = 700e6
    n_cores: int = 32  #: corelets per Millipede processor / lanes per SM / SSMC cores
    n_threads: int = 4  #: hardware multithreading contexts
    n_registers: int = 32
    #: cycles before the same thread may issue again (pipeline depth the
    #: 4-way multithreading is there to hide, section IV-A)
    issue_gap_cycles: int = 4
    icache_bytes: int = 4096
    icache_line_bytes: int = 128


@dataclass(frozen=True)
class MillipedeConfig:
    """Millipede-specific resources (Table III)."""

    local_memory_bytes: int = 4096  #: per corelet
    prefetch_entries: int = 16  #: prefetch buffer entries (rows in flight)
    slab_bytes: int = 64  #: per-corelet slice of one prefetch-buffer entry
    #: rows to prefetch ahead of the newest first-touched row (section IV-C
    #: allows software hints about prefetch distance).  8 hides the row
    #: fetch latency across every record's field sweep while leaving half
    #: the 16-entry queue as straying slack - pushing it to 15 starves the
    #: no-flow-control ablation into constant premature eviction
    prefetch_ahead: int = 8
    flow_control: bool = True
    rate_match: bool = False
    #: software-barrier ablation (section IV-C / VI-A "not shown" result)
    record_barriers: bool = False
    rate_match_step: float = 0.05  #: 5% DFS steps
    rate_match_min_hz: float = 200e6
    rate_match_max_hz: float = 700e6
    #: minimum picoseconds between DFS adjustments (debounce; the paper's
    #: controller reacts to individual full/empty observations)
    rate_match_interval_ps: int = 200_000


@dataclass(frozen=True)
class SsmcConfig:
    """Plain sea-of-simple-MIMD-cores baseline (Table III)."""

    l1d_bytes: int = 5120  #: 5 KB per core
    #: 64 B lines match each core's per-row slab exactly; this is SSMC's
    #: best case (128 B lines would fetch every block twice across two
    #: cores' private caches), making Millipede's measured edge conservative
    l1d_line_bytes: int = 64
    l1d_assoc: int = 4
    prefetch_degree: int = 3  #: oracle stream prefetch distance


@dataclass(frozen=True)
class GpgpuConfig:
    """GPGPU SM baseline (Table III)."""

    l1d_bytes: int = 32768
    l1d_line_bytes: int = 128
    l1d_assoc: int = 8
    shared_memory_bytes: int = 131072
    shared_memory_banks: int = 32
    warp_width: int = 32
    #: the SM's single stream feeds 4 concurrent warps, so it prefetches
    #: deeper than the per-core MIMD streams
    prefetch_degree: int = 6
    #: pipeline cycles lost per divergent branch (reconvergence-stack push/
    #: pop, active-mask regeneration); 1-3 cycles in real SIMT hardware
    divergence_penalty_cycles: int = 2


@dataclass(frozen=True)
class VwsConfig:
    """Variable Warp Sizing [41]: dynamically choose 4- or 32-wide warps.

    Like the paper we observe VWS "always chooses 4-wide warps" on BMLAs, so
    the model selects the narrow width whenever the measured divergence rate
    exceeds ``divergence_threshold``."""

    narrow_width: int = 4
    wide_width: int = 32
    divergence_threshold: float = 0.05
    #: VWS-row variant: add Millipede's row-orientedness + flow control
    row_oriented: bool = False


@dataclass(frozen=True)
class MulticoreConfig:
    """Conventional multicore for Fig. 5 (section VI-C)."""

    clock_hz: float = 3.6e9
    n_cores: int = 8
    issue_width: int = 4
    n_threads: int = 4  #: 4-way SMT
    l1_bytes: int = 65536
    l2_bytes_per_core: int = 1 << 20
    line_bytes: int = 64
    #: off-chip memory: one-fourth the die-stacked bandwidth
    offchip_bandwidth_fraction: float = 0.25
    offchip_pj_per_bit: float = 70.0
    offchip_extra_latency_ps: int = 40_000  #: pin/PCB crossing latency
    #: per-instruction dynamic energy of a wide OoO core at 3.6 GHz relative
    #: to a simple in-order corelet (rename/wakeup/bypass networks, larger
    #: structures); order-of-magnitude per published core-energy studies
    core_energy_multiplier: float = 6.0


@dataclass(frozen=True)
class EnergyConfig:
    """Component energies (22 nm, GPUWattch-flavoured magnitudes).

    Only *relative* magnitudes matter for the paper's Fig. 4; these defaults
    follow the usual ordering: DRAM access >> SRAM access > register/ALU op,
    and shared-memory access > scratchpad access (crossbar + banking).
    """

    alu_op_pj: float = 6.0  #: pipeline energy per executed instruction
    regfile_pj: float = 2.0  #: register file access per instruction
    icache_access_pj: float = 8.0  #: per instruction fetch (per core in MIMD)
    local_mem_pj: float = 4.0  #: scratchpad word access
    l1d_access_pj: float = 12.0  #: L1 D-cache word access
    shared_mem_pj: float = 20.0  #: shared-memory bank word access
    shared_mem_crossbar_pj: float = 15.0  #: 32x32 crossbar traversal per access
    prefetch_buffer_pj: float = 3.0  #: prefetch-buffer slab word access
    #: dynamic energy burnt per core per *idle* cycle (imperfect clock
    #: gating, section V); per paper this is what rate-matching recovers.
    idle_cycle_pj: float = 4.0
    #: static leakage power per core (W); leakage energy = power x runtime
    leakage_w_per_core: float = 0.010


@dataclass(frozen=True)
class SystemConfig:
    """Top-level bundle handed to the simulation driver."""

    core: CoreConfig = field(default_factory=CoreConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    millipede: MillipedeConfig = field(default_factory=MillipedeConfig)
    ssmc: SsmcConfig = field(default_factory=SsmcConfig)
    gpgpu: GpgpuConfig = field(default_factory=GpgpuConfig)
    vws: VwsConfig = field(default_factory=VwsConfig)
    multicore: MulticoreConfig = field(default_factory=MulticoreConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    #: number of PNM processors in a node (paper: 32; Figs 3/4/6/7 simulate 1)
    n_processors: int = 32

    def replace(self, **kwargs) -> "SystemConfig":
        """Shallow ``dataclasses.replace`` convenience."""
        return dataclasses.replace(self, **kwargs)

    # ------------------------------------------------------------------
    # canonical dict / hash round-trip (used by RunSpec and the result
    # cache so a config can cross process and disk boundaries losslessly)
    # ------------------------------------------------------------------
    def as_canonical_dict(self) -> dict:
        """Plain nested dict of every field, suitable for JSON/pickling."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Inverse of :meth:`as_canonical_dict`.

        Unknown keys are rejected (they would silently change the
        fingerprint); missing sections fall back to their defaults."""
        kwargs = {}
        for key, value in data.items():
            section = _CONFIG_SECTIONS.get(key)
            if section is not None:
                kwargs[key] = section(**value)
            elif key == "n_processors":
                kwargs[key] = value
            else:
                raise KeyError(f"unknown SystemConfig field {key!r}")
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys) of every field."""
        import json

        return json.dumps(self.as_canonical_dict(), sort_keys=True, default=str)

    def fingerprint(self) -> str:
        """Stable short hash of every config field."""
        import hashlib

        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def with_core(self, **kwargs) -> "SystemConfig":
        return self.replace(core=dataclasses.replace(self.core, **kwargs))

    def with_dram(self, **kwargs) -> "SystemConfig":
        return self.replace(dram=dataclasses.replace(self.dram, **kwargs))

    def with_millipede(self, **kwargs) -> "SystemConfig":
        return self.replace(millipede=dataclasses.replace(self.millipede, **kwargs))

    def with_gpgpu(self, **kwargs) -> "SystemConfig":
        return self.replace(gpgpu=dataclasses.replace(self.gpgpu, **kwargs))

    def with_vws(self, **kwargs) -> "SystemConfig":
        return self.replace(vws=dataclasses.replace(self.vws, **kwargs))

    def with_ssmc(self, **kwargs) -> "SystemConfig":
        return self.replace(ssmc=dataclasses.replace(self.ssmc, **kwargs))

    def with_multicore(self, **kwargs) -> "SystemConfig":
        return self.replace(multicore=dataclasses.replace(self.multicore, **kwargs))

    def scaled_system_size(self, n: int) -> "SystemConfig":
        """Fig. 6 sweep: ``n`` corelets/lanes/cores with proportionally
        scaled memory bandwidth (paper doubles bandwidth at 64 cores).

        The SM's shared memory scales with the lane count so the per-thread
        live-state budget stays constant - the MIMD architectures already
        scale per-core resources (4 KB local memory / 5 KB L1 per core)."""
        base = CoreConfig().n_cores
        scale = n / base
        dram = dataclasses.replace(
            self.dram,
            channel_bytes_per_cycle=max(1, round(self.dram.channel_bytes_per_cycle * scale)),
        )
        gpgpu = dataclasses.replace(
            self.gpgpu,
            shared_memory_bytes=round(self.gpgpu.shared_memory_bytes * scale),
        )
        return self.replace(
            core=dataclasses.replace(self.core, n_cores=n), dram=dram, gpgpu=gpgpu
        )


#: nested dataclass type per SystemConfig section (for from_dict)
_CONFIG_SECTIONS: dict[str, type] = {
    "core": CoreConfig,
    "dram": DramConfig,
    "millipede": MillipedeConfig,
    "ssmc": SsmcConfig,
    "gpgpu": GpgpuConfig,
    "vws": VwsConfig,
    "multicore": MulticoreConfig,
    "energy": EnergyConfig,
}

DEFAULT_CONFIG = SystemConfig()
