"""Roofline model for the PNM processor.

The classic roofline: attainable throughput is
``min(peak_compute, intensity * peak_bandwidth)``.  For BMLAs the natural
operational intensity is *instructions per input byte* (the paper's
"operations per byte", Table II) and the compute roof is
``cores x clock x IPC``.  The model both *predicts* where a workload lands
and *checks* the simulator against first principles - a measured
throughput meaningfully above the roof would indicate an accounting bug
(tested), and the ratio to the roof quantifies the overheads the paper
discusses (row misses, divergence, straying).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, WORD_BYTES
from repro.sim.driver import RunResult


@dataclass(frozen=True)
class RooflinePoint:
    """One run placed on the roofline."""

    workload: str
    arch: str
    intensity_insts_per_byte: float
    measured_insts_per_s: float
    roof_insts_per_s: float
    compute_bound: bool

    @property
    def efficiency(self) -> float:
        """Measured / attainable (1.0 = on the roof)."""
        return self.measured_insts_per_s / self.roof_insts_per_s if self.roof_insts_per_s else 0.0


class RooflineModel:
    """Roofline for one architecture configuration."""

    def __init__(self, config: SystemConfig, arch: str = "millipede",
                 clock_hz: float | None = None):
        self.config = config
        self.arch = arch
        if arch == "multicore":
            mc = config.multicore
            self.peak_compute = mc.n_cores * mc.clock_hz * mc.issue_width
            frac = mc.offchip_bandwidth_fraction
            self.peak_bandwidth = config.dram.peak_bandwidth_bytes_per_s * frac
        else:
            core = config.core
            self.peak_compute = core.n_cores * (clock_hz or core.clock_hz)  # IPC 1
            self.peak_bandwidth = config.dram.peak_bandwidth_bytes_per_s

    @property
    def ridge_intensity(self) -> float:
        """Instructions/byte where the roofs meet; workloads left of the
        ridge are bandwidth-bound.  The calibration (DESIGN.md section 5)
        places this mid-way through the benchmark suite."""
        return self.peak_compute / self.peak_bandwidth

    def attainable(self, intensity: float) -> float:
        """Attainable instruction throughput at ``intensity`` insts/byte."""
        if intensity <= 0:
            return 0.0
        return min(self.peak_compute, intensity * self.peak_bandwidth)

    def predict_bound(self, intensity: float) -> str:
        return "bandwidth" if intensity < self.ridge_intensity else "compute"

    # ------------------------------------------------------------------
    def place(self, result: RunResult) -> RooflinePoint:
        """Place a measured run on this roofline."""
        intensity = result.insts_per_word / WORD_BYTES
        measured = result.collected.get("instructions", 0.0) / result.runtime_s
        roof = self.attainable(intensity)
        return RooflinePoint(
            workload=result.workload,
            arch=result.arch,
            intensity_insts_per_byte=intensity,
            measured_insts_per_s=measured,
            roof_insts_per_s=roof,
            compute_bound=intensity >= self.ridge_intensity,
        )

    def render(self, points: list[RooflinePoint], width: int = 50) -> str:
        """ASCII roofline chart: one row per point, bar = efficiency."""
        lines = [
            f"roofline: peak {self.peak_compute / 1e9:.1f} Ginst/s, "
            f"{self.peak_bandwidth / 1e9:.1f} GB/s, "
            f"ridge @ {self.ridge_intensity:.2f} inst/B",
        ]
        for p in sorted(points, key=lambda p: p.intensity_insts_per_byte):
            n = int(round(p.efficiency * width))
            bound = "BW " if not p.compute_bound else "CPU"
            lines.append(
                f"{p.workload:>9s} {p.intensity_insts_per_byte:6.2f} inst/B "
                f"[{bound}] |{'#' * n:<{width}s}| {p.efficiency * 100:5.1f}% of roof"
            )
        return "\n".join(lines)
