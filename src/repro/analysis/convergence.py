"""Rate-matching convergence diagnostics (section IV-F).

The paper argues the hill-climbing DFS "needs to converge just once at the
start of the application" (e.g. within ~16,000 cycles) and afterwards
oscillates "within a band of the size of the small step".  This module
quantifies both properties from a controller's frequency trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rate_match import RateMatchController


@dataclass
class ConvergenceReport:
    #: time at which the trajectory last left the final band (ps)
    converged_at_ps: int
    #: run length (ps)
    end_ps: int
    #: time-weighted mean frequency after convergence (Hz)
    settled_hz: float
    #: half-width of the post-convergence oscillation band (Hz)
    band_hz: float
    n_adjustments: int

    @property
    def converged_fraction(self) -> float:
        """Fraction of the run spent *before* settling (paper: tiny)."""
        return self.converged_at_ps / self.end_ps if self.end_ps else 0.0

    @property
    def band_steps(self) -> float:
        """Oscillation band in units of the settled frequency (paper:
        within one ~5% step)."""
        return self.band_hz / self.settled_hz if self.settled_hz else 0.0

    def render(self) -> str:
        return (
            f"rate-match convergence: settled at {self.settled_hz / 1e6:.0f} MHz "
            f"after {self.converged_at_ps / 1e6:.1f} us "
            f"({self.converged_fraction * 100:.1f}% of the run), "
            f"band +/-{self.band_hz / 1e6:.0f} MHz "
            f"({self.band_steps * 100:.1f}%), {self.n_adjustments} adjustments"
        )


def analyze_convergence(controller: RateMatchController, end_ps: int,
                        band_tolerance: float = 0.11) -> ConvergenceReport:
    """Analyze a live controller's trajectory (see
    :func:`analyze_history` for the serialized-trajectory variant)."""
    return analyze_history(controller.history, end_ps, band_tolerance)


def analyze_history(history: list, end_ps: int,
                    band_tolerance: float = 0.11) -> ConvergenceReport:
    """Analyze a ``(time_ps, freq_hz)`` trajectory.

    ``band_tolerance`` is the relative band (default: two 5% steps) around
    the final settled frequency; convergence time is when the trajectory
    permanently enters that band.
    """
    history = [tuple(h) for h in history]
    if end_ps <= 0:
        raise ValueError("end_ps must be positive")
    # time-weighted mean frequency over the run
    total = 0.0
    for (t0, f), (t1, _) in zip(history, history[1:]):
        total += f * (min(t1, end_ps) - min(t0, end_ps))
    t_last, f_last = history[-1]
    if end_ps > t_last:
        total += f_last * (end_ps - t_last)
    settled = total / end_ps
    # post-convergence band: the extremes of the trajectory's tail
    lo = settled * (1 - band_tolerance)
    hi = settled * (1 + band_tolerance)

    converged_at = 0
    for t, f in history:
        if not (lo <= f <= hi):
            converged_at = t  # last departure from the band
    # the *next* adjustment after the last departure is the entry point
    for t, f in history:
        if t > converged_at and lo <= f <= hi:
            converged_at = t
            break

    tail = [f for t, f in history if t >= converged_at] or [history[-1][1]]
    band = (max(tail) - min(tail)) / 2

    return ConvergenceReport(
        converged_at_ps=converged_at,
        end_ps=end_ps,
        settled_hz=settled,
        band_hz=band,
        n_adjustments=max(0, len(history) - 1),
    )
