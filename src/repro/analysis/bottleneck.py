"""Bottleneck attribution from run statistics.

Decomposes a run into the fractions the paper's section VI reasons about:
data-bus occupancy (bandwidth pressure), row-activation overhead (the
SSMC penalty), prefetch-related waiting (Millipede's flow-control cost),
divergence waste (the GPGPU penalty), and issue idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.driver import RunResult


@dataclass
class BottleneckReport:
    workload: str
    arch: str
    #: fraction of the run the DRAM data bus was transferring
    bus_utilization: float
    #: activations per kiloword transferred (row-locality quality; 1 row
    #: opened per 512 words = 1.95 is the row-streaming optimum)
    activations_per_kword: float
    #: DRAM traffic amplification: words transferred / input words
    traffic_amplification: float
    #: SIMT lane-efficiency (1.0 for MIMD architectures)
    simt_efficiency: float
    #: core idle cycles per issued instruction
    idle_per_instruction: float
    #: classified primary bottleneck
    verdict: str
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"{self.arch}/{self.workload}: {self.verdict}",
            f"  bus utilization        {self.bus_utilization * 100:6.1f}%",
            f"  activations / kword    {self.activations_per_kword:6.2f}",
            f"  traffic amplification  {self.traffic_amplification:6.2f}x",
            f"  SIMT efficiency        {self.simt_efficiency * 100:6.1f}%",
            f"  idle / instruction     {self.idle_per_instruction:6.3f}",
        ]
        lines += [f"  - {n}" for n in self.notes]
        return "\n".join(lines)


#: bus utilization above which a run is considered bandwidth-bound
_BW_BOUND = 0.75
#: SIMT efficiency below which divergence is called the primary problem
_DIVERGENCE_BAD = 0.85


def attribute_bottleneck(result: RunResult) -> BottleneckReport:
    """Classify where a run's time went."""
    stats = result.stats
    prefix = "offchip" if "offchip.requests" in stats else "dram"
    busy = stats.get(f"{prefix}.bus_busy_ps", 0.0)
    bus_util = busy / result.finish_ps if result.finish_ps else 0.0
    words = stats.get(f"{prefix}.words_transferred", 0.0)
    acts = stats.get(f"{prefix}.activations", 0.0)
    amplification = words / result.input_words if result.input_words else 0.0
    act_per_kword = acts / words * 1000 if words else 0.0
    simt_eff = result.collected.get("simt_efficiency", 1.0)
    instructions = result.collected.get("instructions", 1.0)
    idle = result.collected.get("idle_cycles", 0.0) / instructions

    notes = []
    if amplification > 1.5:
        notes.append(
            f"{amplification:.1f}x DRAM traffic: private-cache refetch or "
            "premature-eviction demand fetches are burning bandwidth"
        )
    if act_per_kword > 8:
        notes.append(
            "poor row locality: block-granular streams are thrashing the "
            "row buffers (the paper's SSMC pathology)"
        )
    if stats.get("pb.premature_evictions", 0) > 0:
        notes.append(
            f"{stats['pb.premature_evictions']:.0f} premature prefetch "
            "evictions (flow control disabled?)"
        )
    if stats.get("pb.flow_defers", 0) > 0 and result.arch.startswith("millipede"):
        notes.append("flow control engaged (deferred prefetch triggers)")

    if bus_util >= _BW_BOUND:
        verdict = "memory-bandwidth-bound"
    elif simt_eff < _DIVERGENCE_BAD:
        verdict = "compute-bound, divergence-limited"
    elif idle > 0.5:
        verdict = "latency-bound (cores idle waiting on memory)"
    else:
        verdict = "compute-bound"

    return BottleneckReport(
        workload=result.workload,
        arch=result.arch,
        bus_utilization=bus_util,
        activations_per_kword=act_per_kword,
        traffic_amplification=amplification,
        simt_efficiency=simt_eff,
        idle_per_instruction=idle,
        verdict=verdict,
        notes=notes,
    )
