"""Post-run analysis: roofline modelling, bottleneck attribution, and
rate-match convergence diagnostics.

These tools answer "*why* did this run perform the way it did" from a
:class:`repro.sim.driver.RunResult` - the same questions the paper's
section VI answers qualitatively (which benchmarks are bandwidth-bound,
where SSMC's cycles go, how fast the DFS converges).
"""

from repro.analysis.roofline import RooflineModel, RooflinePoint
from repro.analysis.bottleneck import BottleneckReport, attribute_bottleneck
from repro.analysis.convergence import ConvergenceReport, analyze_convergence, analyze_history

__all__ = [
    "RooflineModel",
    "RooflinePoint",
    "BottleneckReport",
    "attribute_bottleneck",
    "ConvergenceReport",
    "analyze_convergence",
    "analyze_history",
]
