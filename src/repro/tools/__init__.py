"""Developer tools CLI: kernel disassembly, run inspection, layout dumps.

Usage::

    python -m repro.tools disasm nbayes
    python -m repro.tools inspect millipede count --records 4096
    python -m repro.tools layout gda
    python -m repro.tools arches
"""
