"""``python -m repro.tools`` entry point."""

from repro.tools.cli import main

raise SystemExit(main())
