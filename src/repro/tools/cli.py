"""Developer tools: disassembly, run inspection, layout dumps."""

from __future__ import annotations

import argparse
import sys

from repro.analysis import RooflineModel, analyze_history, attribute_bottleneck
from repro.config import DEFAULT_CONFIG
from repro.isa.instructions import BRANCH_OPS, GLOBAL_MEM_OPS, LOCAL_MEM_OPS
from repro.sim.driver import ARCHITECTURES, run
from repro.workloads.registry import get_workload, workload_names


def cmd_disasm(args: argparse.Namespace) -> int:
    wl = get_workload(args.workload)
    built = wl.build(n_threads=args.threads, n_records=512,
                     traversal=args.traversal)
    prog = built.program
    print(f"# {wl.name}: {len(prog)} instructions "
          f"({prog.code_bytes} B of {DEFAULT_CONFIG.core.icache_bytes} B I-cache)")
    print(f"# static: {prog.static_branches} branches, "
          f"{prog.static_global_accesses} global accesses, "
          f"{prog.static_local_accesses} local accesses")
    print(prog.listing())
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    if args.store is not None and args.trace is None:
        # durable path: serve the spec from the fingerprint store when its
        # record exists, simulate-and-record otherwise (traced runs always
        # simulate, so they take the live path below).  Inspection is not
        # a campaign: it must not write or clobber any manifest.
        from repro.sim.campaign import run_batch
        from repro.sim.options import ExecOptions
        from repro.sim.spec import RunSpec
        from repro.sim.store import FingerprintStore

        spec = RunSpec(args.arch, args.workload, n_records=args.records,
                       options=ExecOptions(sanitize=args.sanitize))
        with FingerprintStore(args.store) as store:
            result = store.get_spec(spec)
            if result is not None:
                print(f"store: hit {spec.content_hash()[:12]} "
                      f"({len(store)} records in {store.root})")
            else:
                result = run_batch([spec], cache=store)[0]
                store.write_index()
                print(f"store: miss {spec.content_hash()[:12]} - simulated "
                      f"and recorded ({len(store)} records in {store.root})")
    else:
        result = run(args.arch, args.workload, n_records=args.records,
                     sanitize=args.sanitize, trace=args.trace is not None,
                     trace_interval_ps=args.trace_interval_ps)
    print(result.summary())
    if result.trace is not None:
        stem = f"{args.arch}-{args.workload}"
        paths = result.trace.write(args.trace, stem)
        print(f"trace: {result.trace.summary()}")
        for kind, path in paths.items():
            print(f"  {kind:>8s}: {path}")
    print()
    print(attribute_bottleneck(result).render())
    print()
    model = RooflineModel(DEFAULT_CONFIG, arch=args.arch)
    print(model.render([model.place(result)]))
    if "rate_match_history" in result.collected:
        print()
        print(analyze_history(result.collected["rate_match_history"],
                              end_ps=result.finish_ps).render())
    if args.stats:
        print("\nraw statistics:")
        for k, v in sorted(result.stats.items()):
            print(f"  {k:40s} {v:.0f}")
    return 0


def cmd_layout(args: argparse.Namespace) -> int:
    wl = get_workload(args.workload)
    built = wl.build(n_threads=args.threads, n_records=512)
    lay = built.layout
    print(f"# {wl.name}: {lay.n_records} records x {lay.n_fields} fields, "
          f"blocks of {lay.block_records}, {lay.total_words} words total")
    print(f"# per-thread live state: {wl.state_words} words")
    print(f"{'record':>7s} {'field':>6s} {'word addr':>10s} {'row':>5s}")
    for r in (0, 1, args.threads, lay.block_records):
        if r >= lay.n_records:
            continue
        for f in range(min(lay.n_fields, 4)):
            a = lay.addr(r, f)
            print(f"{r:7d} {f:6d} {a:10d} {a // 512:5d}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv: list[str] = [str(p) for p in args.paths]
    if args.json:
        argv.append("--json")
    if args.show_suppressed:
        argv.append("--show-suppressed")
    if args.baseline is not None:
        argv.extend(["--baseline", str(args.baseline)])
    if args.update_baseline:
        argv.append("--update-baseline")
    return lint_main(argv)


def cmd_store(args: argparse.Namespace) -> int:
    from repro.sim.store import FingerprintStore

    with FingerprintStore(args.dir) as store:
        if args.action == "info":
            live_claims = sum(
                1 for p in store.claim_dir.glob("*.json")
                if store.claim_holder(p.stem) is not None)
            total_bytes = sum(
                (store.log_dir / name).stat().st_size
                for name in store.segments())
            print(f"store: {store.root}")
            print(f"  records:       {len(store)}")
            print(f"  segments:      {len(store.segments())} "
                  f"({total_bytes} bytes)")
            print(f"  manifests:     {len(store.manifest_names())}")
            print(f"  live claims:   {live_claims}")
            print(f"  corrupt lines: {store.corrupt_lines}")
        elif args.action == "compact":
            summary = store.compact()
            if summary["compacted"]:
                print(f"compacted {summary['records']} records: "
                      f"{summary['segments_before']} -> "
                      f"{summary['segments_after']} segments, "
                      f"{summary['bytes_before']} -> "
                      f"{summary['bytes_after']} bytes "
                      f"({summary['segments_retired']} retired)")
            else:
                print(f"nothing to compact: {summary['records']} records "
                      f"in {summary['segments_after']} segment(s)")
        elif args.action == "gc":
            summary = store.gc()
            print(f"gc: removed {summary['tmp_files_removed']} temp files, "
                  f"{summary['stale_claims_removed']} stale claims, "
                  f"{summary['empty_segments_removed']} empty segments")
    return 0


def cmd_arches(args: argparse.Namespace) -> int:
    print(f"{'key':>16s}  description")
    descriptions = {
        "gpgpu": "SIMT SM, 32-wide warps, L1D + oracle prefetch",
        "vws": "Variable Warp Sizing (4-wide warps)",
        "vws-row": "VWS + row-oriented flow-controlled prefetch buffer",
        "ssmc": "plain sea-of-simple-MIMD-cores, per-core L1D",
        "millipede": "row-oriented MIMD + cross-corelet flow control",
        "millipede-nofc": "Millipede without flow control",
        "millipede-rm": "Millipede + coarse-grain rate matching",
        "millipede-bar": "software record-granularity barriers (ablation)",
        "multicore": "conventional 8-core OoO node, off-chip DRAM",
    }
    for key in ARCHITECTURES:
        print(f"{key:>16s}  {descriptions.get(key, '')}")
    print(f"\nworkloads: {', '.join(workload_names())} (+ varwork)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="python -m repro.tools")
    sub = p.add_subparsers(dest="command", required=True)

    d = sub.add_parser("disasm", help="disassemble a workload kernel")
    d.add_argument("workload")
    d.add_argument("--threads", type=int, default=128)
    d.add_argument("--traversal", choices=["chunked", "interleaved"], default="chunked")
    d.set_defaults(fn=cmd_disasm)

    i = sub.add_parser("inspect", help="run and analyze one simulation")
    i.add_argument("arch", choices=list(ARCHITECTURES))
    i.add_argument("workload")
    i.add_argument("--records", type=int, default=4096)
    i.add_argument("--stats", action="store_true", help="dump raw counters")
    i.add_argument("--sanitize", action="store_true",
                   help="attach runtime invariant checking (repro.sanitize)")
    i.add_argument("--trace", metavar="DIR", nargs="?", const="traces",
                   default=None,
                   help="attach repro.trace and write Chrome trace-event "
                   "JSON + timeline/profile CSVs under DIR (default: "
                   "traces/); composes with --sanitize")
    i.add_argument("--trace-interval-ps", type=int, default=None, metavar="PS",
                   help="timeline sampling cadence in simulated picoseconds")
    i.add_argument("--store", metavar="DIR", default=None,
                   help="serve/record the run through a persistent "
                   "fingerprint store (docs/campaigns.md); a repeated "
                   "inspect is then a store hit, not a re-simulation "
                   "(ignored for --trace runs, which always simulate)")
    i.set_defaults(fn=cmd_inspect)

    l = sub.add_parser("layout", help="dump a workload's address layout")
    l.add_argument("workload")
    l.add_argument("--threads", type=int, default=128)
    l.set_defaults(fn=cmd_layout)

    a = sub.add_parser("arches", help="list architectures and workloads")
    a.set_defaults(fn=cmd_arches)

    st = sub.add_parser(
        "store",
        help="fingerprint-store maintenance: info, segment compaction, "
        "garbage collection (docs/campaigns.md)")
    st.add_argument("dir", help="store directory (the --store path)")
    st.add_argument("action", choices=["info", "compact", "gc"],
                    help="info: record/segment/claim inventory; compact: "
                    "rewrite live records into one fresh segment and "
                    "retire the old ones; gc: drop orphan temp files, "
                    "expired claims, and empty segments")
    st.set_defaults(fn=cmd_store)

    lt = sub.add_parser(
        "lint",
        help="simulator-aware static analysis (determinism, observer-hook "
        "conformance, stats discipline, pickle safety; docs/linting.md)")
    lt.add_argument("paths", nargs="*", default=[],
                    help="files/directories (default: the repro package)")
    lt.add_argument("--json", action="store_true",
                    help="emit findings as JSON")
    lt.add_argument("--show-suppressed", action="store_true",
                    help="also print inline-suppressed findings")
    lt.add_argument("--baseline", default=None,
                    help="JSON baseline: fail only on findings not in it")
    lt.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with current findings")
    lt.set_defaults(fn=cmd_lint)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
