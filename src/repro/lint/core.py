"""Framework for the simulator-aware static analysis pass.

The linter is the static counterpart of the runtime sanitizer
(:mod:`repro.sanitize`): where the sanitizer checks invariants on the
configs we happen to execute, the linter checks whole-codebase properties
on every source file — determinism of sim-reachable code, observer-hook
conformance against the actual dispatch sites, stats-registry discipline,
pickle/multiprocess safety, and observer purity.

Structure
---------
* :class:`Finding` — one structured diagnostic (rule id, location,
  message, suppressed flag).
* :class:`Rule` — base class; subclasses register themselves with
  :func:`register`.  A rule sees each parsed module via
  :meth:`Rule.check_module` and, for cross-file analyses (hook
  conformance, mixed counter semantics), the whole set again via
  :meth:`Rule.finish_project`.
* :class:`LintRunner` — walks ``.py`` files, parses them once, runs every
  selected rule, applies inline suppressions, and returns a
  :class:`LintReport`.

Suppressions
------------
``# repro-lint: disable=RULE1,RULE2`` as a trailing comment suppresses
those rules on that line; on a line of its own it suppresses them on the
next line.  ``disable=all`` suppresses every rule.  Suppressed findings
are retained (so ``--show-suppressed`` can audit them) but do not fail
the run.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str  #: rule id, e.g. ``"DET002"``
    path: str  #: file the finding is in (as given on the command line)
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    message: str
    suppressed: bool = False  #: matched an inline ``repro-lint: disable``

    def text(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


class ModuleInfo:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: Path, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=display_path)
        #: line number -> set of rule ids (or ``{"all"}``) disabled there
        self.suppressions: dict[int, set[str]] = _parse_suppressions(source)

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and ("all" in rules or rule in rules)


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            line = tok.start[0]
            table.setdefault(line, set()).update(rules)
            if tok.line.lstrip().startswith("#"):
                # a comment-only line also covers the line below it
                table.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        pass
    return table


class Rule:
    """Base class: subclasses set ``id``/``name``/``rationale`` and
    override :meth:`check_module` and/or :meth:`finish_project`.

    One instance lives for one :class:`LintRunner` run, so cross-file
    rules may accumulate state in ``check_module`` and report from
    ``finish_project``.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def finish_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule id -> rule class (populated by :func:`register` at import time)
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    REGISTRY[cls.id] = cls
    return cls


def all_rule_classes() -> dict[str, type[Rule]]:
    """The registry with every built-in rule module imported."""
    import repro.lint.rules  # noqa: F401  (imports populate REGISTRY)

    return dict(REGISTRY)


# ----------------------------------------------------------------------
# shared AST helpers used by several rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name an expression hangs off (through attribute,
    subscript, and call chains): ``self`` for ``self.shadow.get(x)``."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Starred):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted module/attribute path for every
    top-level import (``np`` -> ``numpy``, ``randint`` ->
    ``random.randint``)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def canonical_call(node: ast.Call, aliases: dict[str, str]) -> Optional[str]:
    """The called target's canonical dotted path, resolved through the
    module's import aliases (``np.random.rand`` -> ``numpy.random.rand``);
    None when the chain is not rooted at an imported name."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = aliases.get(head)
    if base is None:
        return None
    return f"{base}.{rest}" if rest else base


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)  #: unparsable files

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed and not self.errors

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "files": self.files,
            "ok": self.ok,
            "errors": list(self.errors),
            "summary": self.by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }


def iter_py_files(paths: Iterable[Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into (path, display_path) pairs, sorted
    for deterministic output."""
    out: list[tuple[Path, str]] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                out.append((f, str(f)))
        else:
            out.append((p, str(p)))
    return out


class LintRunner:
    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        classes = all_rule_classes()
        wanted = set(select) if select else set(classes)
        wanted -= set(ignore or ())
        unknown = wanted - set(classes)
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        self.rules: list[Rule] = [classes[rid]() for rid in sorted(wanted)]

    def run(self, paths: Iterable[Path]) -> LintReport:
        report = LintReport()
        modules: list[ModuleInfo] = []
        for path, display in iter_py_files(paths):
            try:
                source = path.read_text()
                modules.append(ModuleInfo(path, display, source))
            except (OSError, SyntaxError, ValueError) as exc:
                report.errors.append(f"{display}: {exc}")
        report.files = len(modules)

        raw: list[Finding] = []
        by_path = {m.display_path: m for m in modules}
        for rule in self.rules:
            for module in modules:
                raw.extend(rule.check_module(module))
            raw.extend(rule.finish_project(modules))

        for f in raw:
            module = by_path.get(f.path)
            if module is not None and module.suppressed(f.rule, f.line):
                f = Finding(f.rule, f.path, f.line, f.col, f.message,
                            suppressed=True)
            report.findings.append(f)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint files/directories with the selected rules (default: all)."""
    return LintRunner(select=select, ignore=ignore).run(paths)
