"""Framework for the simulator-aware static analysis pass.

The linter is the static counterpart of the runtime sanitizer
(:mod:`repro.sanitize`): where the sanitizer checks invariants on the
configs we happen to execute, the linter checks whole-codebase properties
on every source file — determinism of sim-reachable code, observer-hook
conformance against the actual dispatch sites, stats-registry discipline,
pickle/multiprocess safety, observer purity, filesystem crash-safety,
cross-process discipline, and NumPy determinism.

Structure
---------
* :class:`Finding` — one structured diagnostic (rule id, location,
  message, suppressed flag).
* :class:`Rule` — base class; subclasses register themselves with
  :func:`register`.  A rule sees each parsed module via
  :meth:`Rule.check_module` and, for cross-file analyses (hook
  conformance, mixed counter semantics), the whole set again via
  :meth:`Rule.finish_project`.
* **Project layer** — :class:`ModuleFlow` gives every rule an
  intraprocedural view of one module (import aliases, per-scope binding
  tables, value provenance as :class:`Origin`, parent links), and
  :class:`Project` stitches the analyzed modules together (module
  naming, a symbol table of every top-level function/method, and call
  resolution across files).  The runner builds one :class:`Project` per
  run and hands it to every rule as ``rule.project``, which is what lets
  rules see through aliased imports, value-aliased bindings
  (``clock = time.time; clock()``), and one level of helper calls.
* :class:`LintRunner` — walks ``.py`` files, parses them once, runs every
  selected rule, applies inline suppressions, and returns a
  :class:`LintReport`.

Suppressions
------------
``# repro-lint: disable=RULE1,RULE2`` as a trailing comment suppresses
those rules on that line; on a line of its own it suppresses them on the
next line.  ``disable=all`` suppresses every rule.  Suppressed findings
are retained (so ``--show-suppressed`` can audit them) but do not fail
the run.

Baselines
---------
:meth:`LintReport.apply_baseline` demotes findings already present in a
recorded baseline (keyed per ``rule:path``, count-ratcheted) so a new
rule family can land warn-only and be driven to zero finding-by-finding;
``python -m repro.lint --baseline FILE`` / ``--update-baseline`` is the
CLI surface.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str  #: rule id, e.g. ``"DET002"``
    path: str  #: file the finding is in (as given on the command line)
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    message: str
    suppressed: bool = False  #: matched an inline ``repro-lint: disable``
    baselined: bool = False  #: present in the ``--baseline`` snapshot

    def text(self) -> str:
        tag = (" (suppressed)" if self.suppressed
               else " (baselined)" if self.baselined else "")
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


class ModuleInfo:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: Path, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=display_path)
        #: line number -> set of rule ids (or ``{"all"}``) disabled there
        self.suppressions: dict[int, set[str]] = _parse_suppressions(source)
        #: dotted import name derived from the package layout on disk
        self.module_name = module_name_for(path)
        self._flow: "Optional[ModuleFlow]" = None

    @property
    def flow(self) -> "ModuleFlow":
        """The module's intraprocedural dataflow view (built lazily)."""
        if self._flow is None:
            self._flow = ModuleFlow(self)
        return self._flow

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and ("all" in rules or rule in rules)


def module_name_for(path: Path) -> str:
    """Dotted module name from the on-disk package layout: walk up while
    ``__init__.py`` siblings exist (``src/repro/sim/store.py`` ->
    ``repro.sim.store``); a file outside any package is just its stem."""
    path = Path(path)
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            line = tok.start[0]
            table.setdefault(line, set()).update(rules)
            if tok.line.lstrip().startswith("#"):
                # a comment-only line also covers the line below it
                table.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        pass
    return table


class Rule:
    """Base class: subclasses set ``id``/``name``/``rationale`` and
    override :meth:`check_module` and/or :meth:`finish_project`.

    One instance lives for one :class:`LintRunner` run, so cross-file
    rules may accumulate state in ``check_module`` and report from
    ``finish_project``.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    #: the active :class:`Project`, set by :class:`LintRunner` before the
    #: first ``check_module`` call; rules use it for cross-module
    #: resolution (``self.project.called_function(module, call)``)
    project: "Optional[Project]" = None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def finish_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule id -> rule class (populated by :func:`register` at import time)
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    REGISTRY[cls.id] = cls
    return cls


def all_rule_classes() -> dict[str, type[Rule]]:
    """The registry with every built-in rule module imported."""
    import repro.lint.rules  # noqa: F401  (imports populate REGISTRY)

    return dict(REGISTRY)


# ----------------------------------------------------------------------
# shared AST helpers used by several rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name an expression hangs off (through attribute,
    subscript, and call chains): ``self`` for ``self.shadow.get(x)``."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Starred):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted module/attribute path for every
    top-level import (``np`` -> ``numpy``, ``randint`` ->
    ``random.randint``)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def canonical_call(node: ast.Call, aliases: dict[str, str]) -> Optional[str]:
    """The called target's canonical dotted path, resolved through the
    module's import aliases (``np.random.rand`` -> ``numpy.random.rand``);
    None when the chain is not rooted at an imported name."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = aliases.get(head)
    if base is None:
        return None
    return f"{base}.{rest}" if rest else base


# ----------------------------------------------------------------------
# project layer: per-module dataflow + cross-module symbol resolution
# ----------------------------------------------------------------------
#: provenance kinds produced by :meth:`ModuleFlow.origin`
#: ``ref``     an import-rooted dotted path (``clock = time.time``)
#: ``def``     a function/class defined in this module
#: ``call``    the value returned by a call (``p = claim_path(fp)``)
#: ``param``   a parameter of the enclosing function
#: ``const``   a literal constant
#: ``expr``    some other expression (BinOp, comprehension, ...)
#: ``unknown`` an opaque binding (loop target, ``with ... as``, ...)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Origin:
    """Where a value came from, as far as one function can tell."""

    kind: str
    path: Optional[str] = None  #: canonical dotted path (ref/def/call)
    node: Optional[ast.AST] = None  #: the defining value expression

    def is_call_to(self, *paths: str) -> bool:
        return self.kind == "call" and self.path in paths


@dataclass(frozen=True)
class Binding:
    """One assignment of a name within a scope."""

    name: str
    lineno: int
    value: Optional[ast.expr]  #: None for opaque bindings (loop vars, ...)


def call_name_tail(node: ast.AST) -> Optional[str]:
    """The last identifier of a call target (``self._path`` -> ``_path``,
    ``claim_path`` -> ``claim_path``); None for lambdas/subscripts."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


_TOKEN_RE = re.compile(r"[A-Za-z]+")

#: names resolvable to themselves when nothing shadows them (so rules can
#: match ``set``/``open``/``sum`` canonically, same as imported targets)
_BUILTIN_NAMES = frozenset(dir(builtins))


class ModuleFlow:
    """Intraprocedural dataflow for one module: per-scope binding tables,
    parent links, and provenance queries.  This is what lets rules see
    through value-aliased bindings and recognise what produced a value."""

    #: resolution depth bound for alias chains (a = b; b = c; ...)
    MAX_DEPTH = 6

    def __init__(self, module: ModuleInfo):
        self.module = module
        self.aliases = import_aliases(module.tree)
        #: id(child) -> parent node, for scope lookup
        self.parents: dict[int, ast.AST] = {}
        #: id(scope node) -> name -> [Binding, ...] in line order
        self._bindings: dict[int, dict[str, list[Binding]]] = {}
        #: id(scope node) -> set of parameter names
        self._params: dict[int, set[str]] = {}
        #: module-level function/class defs by name
        self.top_defs: dict[str, ast.AST] = {}

        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.top_defs[stmt.name] = stmt
        for node in ast.walk(module.tree):
            if isinstance(node, _SCOPE_NODES):
                a = node.args
                names = {p.arg for p in (a.posonlyargs + a.args + a.kwonlyargs)}
                if a.vararg:
                    names.add(a.vararg.arg)
                if a.kwarg:
                    names.add(a.kwarg.arg)
                self._params[id(node)] = names
            self._collect_bindings(node)

    # -- binding collection --------------------------------------------
    def _collect_bindings(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                self._bind_target(tgt, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind_target(node.target, node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind_target(node.target, None)  # opaque: loop-carried
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    # ``with open(p) as f``: provenance is the ctx manager
                    self._bind_target(item.optional_vars, item.context_expr)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            scope = self.scope_of(node)
            self._scope_table(scope).setdefault(node.name, []).append(
                Binding(node.name, node.lineno, None))
        elif isinstance(node, (ast.NamedExpr,)):
            if isinstance(node.target, ast.Name):
                self._bind_target(node.target, node.value)

    def _bind_target(self, tgt: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._bind_target(elt, None)  # unpacking: opaque pieces
        elif isinstance(tgt, ast.Name):
            scope = self.scope_of(tgt)
            self._scope_table(scope).setdefault(tgt.id, []).append(
                Binding(tgt.id, tgt.lineno, value))

    def _scope_table(self, scope: ast.AST) -> dict[str, list[Binding]]:
        return self._bindings.setdefault(id(scope), {})

    # -- scope navigation ----------------------------------------------
    def scope_of(self, node: ast.AST) -> ast.AST:
        """The innermost function (or the module) enclosing ``node``."""
        cur = self.parents.get(id(node))
        while cur is not None:
            if isinstance(cur, _SCOPE_NODES):
                return cur
            cur = self.parents.get(id(cur))
        return self.module.tree

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        scope = self.scope_of(node)
        return None if isinstance(scope, ast.Module) else scope

    def _scope_chain(self, scope: ast.AST) -> list[ast.AST]:
        chain = [scope]
        while not isinstance(chain[-1], ast.Module):
            nxt = self.scope_of(chain[-1])
            chain.append(nxt)
        return chain

    def binding_of(self, name: str, at: ast.AST) -> Optional[Binding]:
        """The binding of ``name`` visible at node ``at``: the last
        assignment at or before ``at``'s line in the innermost scope that
        has one (params shadow outer scopes and report no binding)."""
        line = getattr(at, "lineno", None)
        for scope in self._scope_chain(self.scope_of(at)):
            if name in self._params.get(id(scope), ()):
                return None  # a parameter: provenance is the caller's
            bindings = self._bindings.get(id(scope), {}).get(name)
            if bindings:
                before = [b for b in bindings
                          if line is None or b.lineno <= line]
                return (before or bindings)[-1]
        return None

    # -- provenance ----------------------------------------------------
    def canonical(self, expr: ast.AST, _depth: int = 0) -> Optional[str]:
        """The canonical dotted path of a name/attribute chain, resolved
        through import aliases, value-aliased bindings, and module-level
        defs: ``clock = time.time; clock`` -> ``"time.time"``."""
        if _depth > self.MAX_DEPTH:
            return None
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        tail = list(reversed(parts))
        origin = self._resolve_name(node, _depth)
        if origin is None or origin.kind not in ("ref", "def"):
            return None
        return ".".join([origin.path] + tail) if tail else origin.path

    def _resolve_name(self, node: ast.Name, _depth: int) -> Optional[Origin]:
        binding = self.binding_of(node.id, node)
        if binding is not None:
            if binding.value is None:
                return Origin("unknown")
            return self.origin(binding.value, _depth + 1)
        base = self.aliases.get(node.id)
        if base is not None:
            return Origin("ref", base)
        if node.id in self.top_defs:
            return Origin("def", f"{self.module.module_name}.{node.id}",
                          self.top_defs[node.id])
        if node.id in _BUILTIN_NAMES:
            return Origin("ref", node.id)
        return None

    def origin(self, expr: ast.AST, _depth: int = 0) -> Origin:
        """Provenance of an arbitrary expression (see the kinds above)."""
        if _depth > self.MAX_DEPTH:
            return Origin("unknown")
        if isinstance(expr, ast.Call):
            return Origin("call", self.canonical(expr.func, _depth), expr)
        if isinstance(expr, ast.Constant):
            return Origin("const", None, expr)
        if isinstance(expr, (ast.Name, ast.Attribute)):
            path = self.canonical(expr, _depth)
            if path is not None:
                return Origin("ref", path, expr)
            root = root_name(expr)
            if root is not None:
                fn = self.enclosing_function(expr)
                if fn is not None and root in self._params.get(id(fn), ()):
                    return Origin("param", root, expr)
                binding = self.binding_of(root, expr)
                if binding is not None and binding.value is not None:
                    if isinstance(expr, ast.Name):
                        return self.origin(binding.value, _depth + 1)
                    # attribute of a tracked value: keep the base's origin
                    base = self.origin(binding.value, _depth + 1)
                    return Origin("expr", base.path, expr)
            return Origin("unknown", None, expr)
        return Origin("expr", None, expr)

    def call_target(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted path of a call's target, through aliases and
        value bindings; None when unresolvable."""
        return self.canonical(call.func)

    def markers(self, expr: ast.AST, _depth: int = 0) -> set[str]:
        """Lowercase identifier/string tokens appearing anywhere in the
        construction of ``expr``, following binding hops for names: the
        fuzzy half of shared-path recognition (``store.claim_path(fp)``
        -> {"store", "claim", "path", "fp"})."""
        if _depth > self.MAX_DEPTH:
            return set()
        out: set[str] = set()
        for node in ast.walk(expr if isinstance(expr, ast.AST) else expr):
            if isinstance(node, ast.Name):
                out.update(_tokens(node.id))
                binding = self.binding_of(node.id, node)
                if binding is not None and binding.value is not None:
                    out |= self.markers(binding.value, _depth + 1)
            elif isinstance(node, ast.Attribute):
                out.update(_tokens(node.attr))
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                out.update(_tokens(node.value))
        return out


def _tokens(text: str) -> set[str]:
    return {t.lower() for t in _TOKEN_RE.findall(text)}


@dataclass(frozen=True)
class FunctionSymbol:
    """One function in the project symbol table."""

    canonical: str  #: ``module.qualname`` (methods: ``module.Class.meth``)
    module: ModuleInfo
    node: "ast.FunctionDef | ast.AsyncFunctionDef"

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in (a.posonlyargs + a.args + a.kwonlyargs)]


class Project:
    """Cross-module view of one lint run: module naming, a symbol table
    of every function, and call resolution from any module to any other.

    Rules receive the active project as ``self.project`` (set by
    :class:`LintRunner` before the first ``check_module`` call), which is
    what powers one-level interprocedural checks: resolve a call with
    :meth:`resolve_call`, fetch the callee's definition with
    :meth:`function`, and analyze its body."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.by_name: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionSymbol] = {}
        for module in self.modules:
            # first module wins a name collision (deterministic: sorted walk)
            self.by_name.setdefault(module.module_name, module)
        for module in self.modules:
            if self.by_name.get(module.module_name) is not module:
                continue
            prefix = module.module_name
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(f"{prefix}.{stmt.name}", module, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    for item in stmt.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            self._add_function(
                                f"{prefix}.{stmt.name}.{item.name}",
                                module, item)

    def _add_function(self, canonical: str, module: ModuleInfo,
                      node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.functions.setdefault(
            canonical, FunctionSymbol(canonical, module, node))

    def function(self, canonical: Optional[str]) -> Optional[FunctionSymbol]:
        """The project-defined function behind a canonical dotted path, or
        None when it resolves outside the analyzed file set."""
        if canonical is None:
            return None
        return self.functions.get(canonical)

    def resolve_call(self, module: ModuleInfo,
                     call: ast.Call) -> Optional[str]:
        """Canonical dotted path of ``call``'s target as seen from
        ``module`` (through import aliases and value bindings)."""
        return module.flow.call_target(call)

    def called_function(self, module: ModuleInfo,
                        call: ast.Call) -> Optional[FunctionSymbol]:
        """The project-defined callee of ``call``, one resolution hop."""
        return self.function(self.resolve_call(module, call))


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)  #: unparsable files

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def failing(self) -> list[Finding]:
        """Findings that fail the run: unsuppressed and not baselined."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined]

    @property
    def ok(self) -> bool:
        return not self.failing and not self.errors

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.failing:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def baseline_counts(self) -> dict[str, int]:
        """Current unsuppressed findings keyed ``"RULE:path"`` — the
        ratchet unit recorded by ``--update-baseline``."""
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            key = f"{f.rule}:{f.path}"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def apply_baseline(self, counts: dict[str, int]) -> int:
        """Demote up to ``counts["RULE:path"]`` unsuppressed findings per
        key to ``baselined`` (earliest lines first, so a *new* finding in
        an already-dirty file still fails).  Returns how many findings
        were demoted.  The ratchet only ever tightens: keys absent from
        ``counts`` stay failing, and fixing a finding shrinks the next
        recorded baseline."""
        budget = dict(counts)
        demoted = 0
        for i, f in enumerate(self.findings):
            if f.suppressed:
                continue
            key = f"{f.rule}:{f.path}"
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                self.findings[i] = dataclasses.replace(f, baselined=True)
                demoted += 1
        return demoted

    def to_dict(self) -> dict:
        return {
            "files": self.files,
            "ok": self.ok,
            "errors": list(self.errors),
            "summary": self.by_rule(),
            "suppressed": sum(1 for f in self.findings if f.suppressed),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "findings": [f.to_dict() for f in self.findings],
        }


def iter_py_files(paths: Iterable[Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into (path, display_path) pairs, sorted
    for deterministic output."""
    out: list[tuple[Path, str]] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                out.append((f, str(f)))
        else:
            out.append((p, str(p)))
    return out


class LintRunner:
    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        classes = all_rule_classes()
        wanted = set(select) if select else set(classes)
        wanted -= set(ignore or ())
        unknown = wanted - set(classes)
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        self.rules: list[Rule] = [classes[rid]() for rid in sorted(wanted)]

    def run(self, paths: Iterable[Path]) -> LintReport:
        report = LintReport()
        modules: list[ModuleInfo] = []
        for path, display in iter_py_files(paths):
            try:
                source = path.read_text()
                modules.append(ModuleInfo(path, display, source))
            except (OSError, SyntaxError, ValueError) as exc:
                report.errors.append(f"{display}: {exc}")
        report.files = len(modules)

        project = Project(modules)
        raw: list[Finding] = []
        by_path = {m.display_path: m for m in modules}
        for rule in self.rules:
            rule.project = project
            for module in modules:
                raw.extend(rule.check_module(module))
            raw.extend(rule.finish_project(modules))

        for f in raw:
            module = by_path.get(f.path)
            if module is not None and module.suppressed(f.rule, f.line):
                f = Finding(f.rule, f.path, f.line, f.col, f.message,
                            suppressed=True)
            report.findings.append(f)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint files/directories with the selected rules (default: all)."""
    return LintRunner(select=select, ignore=ignore).run(paths)
