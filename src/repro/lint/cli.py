"""Command-line front end for :mod:`repro.lint`.

Examples::

    python -m repro.lint                 # lint the repro package itself
    python -m repro.lint src/repro tests
    python -m repro.lint --json src/repro
    python -m repro.lint --list-rules
    repro-lint --select DET001,DET002 src/repro
    repro-lint --baseline lint-baseline.json --update-baseline src/repro
    repro-lint --baseline lint-baseline.json src/repro   # fail only on NEW

The baseline workflow lets a new rule family land warn-only: record the
current findings once with ``--update-baseline``, then subsequent runs
with ``--baseline`` demote exactly those (rule, file) counts to
non-failing and the exit code tracks *new* findings only.  Ratchet the
recorded counts down to zero in follow-up changes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.core import all_rule_classes, lint_paths


def _default_paths() -> list[Path]:
    """``src/repro`` when run from a checkout, else the installed package."""
    checkout = Path("src/repro")
    if checkout.is_dir():
        return [checkout]
    import repro

    return [Path(repro.__file__).parent]


def _split_ids(value: str) -> list[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-aware static analysis: determinism, "
        "observer-hook conformance, stats discipline, pickle safety, and "
        "observer purity (see docs/linting.md).",
    )
    p.add_argument("paths", nargs="*", type=Path,
                   help="files or directories to lint "
                   "(default: src/repro, or the installed repro package)")
    p.add_argument("--json", action="store_true",
                   help="emit findings as a JSON object on stdout")
    p.add_argument("--select", type=_split_ids, metavar="IDS", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--ignore", type=_split_ids, metavar="IDS", default=None,
                   help="comma-separated rule ids to skip")
    p.add_argument("--show-suppressed", action="store_true",
                   help="also print findings silenced by inline "
                   "'# repro-lint: disable=...' comments")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--baseline", type=Path, metavar="FILE", default=None,
                   help="JSON baseline of known findings: matching "
                   "(rule, file) counts are demoted to non-failing, so "
                   "only NEW findings fail the run")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline FILE with the current "
                   "findings and exit 0")
    return p


#: on-disk schema of a ``--baseline`` file
BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> "dict[str, int]":
    """The ``{"RULE:path": count}`` table of a baseline file; a missing
    file is an empty baseline (everything is new)."""
    try:
        data = json.loads(path.read_text())
    except OSError:
        return {}
    except json.JSONDecodeError as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"unreadable baseline {path}: expected an object "
                         f"with schema={BASELINE_SCHEMA}")
    counts = data.get("counts", {})
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(path: Path, counts: "dict[str, int]") -> None:
    path.write_text(json.dumps(
        {"schema": BASELINE_SCHEMA,
         "counts": dict(sorted(counts.items()))},
        indent=1) + "\n")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(all_rule_classes().items()):
            print(f"{rule_id}  {cls.name}")
            print(f"    {cls.rationale}")
        return 0

    paths = args.paths or _default_paths()
    for p in paths:
        if not p.exists():
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2
    if args.update_baseline and args.baseline is None:
        print("error: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2
    try:
        report = lint_paths(paths, select=args.select, ignore=args.ignore)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baselined = 0
    if args.baseline is not None:
        if args.update_baseline:
            write_baseline(args.baseline, report.baseline_counts())
            print(f"baseline written: {args.baseline} "
                  f"({len(report.unsuppressed)} finding(s))")
            return 0
        try:
            baselined = report.apply_baseline(load_baseline(args.baseline))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        shown = (report.findings if args.show_suppressed
                 else report.failing)
        for f in shown:
            print(f.text())
        for err in report.errors:
            print(f"parse error: {err}", file=sys.stderr)
        n = len(report.failing)
        n_sup = sum(1 for f in report.findings if f.suppressed)
        parts = [f"{n_sup} suppressed"]
        if baselined:
            parts.append(f"{baselined} baselined")
        summary = ", ".join(f"{r} x{c}" for r, c in report.by_rule().items())
        print(f"{n} finding(s) ({', '.join(parts)}) across "
              f"{report.files} file(s)" + (f": {summary}" if summary else ""))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
