"""repro.lint — simulator-aware static analysis.

The static counterpart of the runtime sanitizer (:mod:`repro.sanitize`):
AST-based rules that check, over every source file on every run, the
properties the simulator's correctness story depends on — determinism
(DET*), observer-hook conformance (HOOK*), stats-registry discipline
(STAT*), pickle/multiprocess safety (PICK*), and observer purity (PURE*).

Run it as ``python -m repro.lint [paths]``, ``repro-lint`` (installed
entry point), or ``python -m repro.tools lint``.  See ``docs/linting.md``
for the rule catalog and suppression syntax.
"""

from repro.lint.core import (
    Finding,
    LintReport,
    LintRunner,
    REGISTRY,
    Rule,
    all_rule_classes,
    lint_paths,
    register,
)

__all__ = [
    "Finding",
    "LintReport",
    "LintRunner",
    "REGISTRY",
    "Rule",
    "all_rule_classes",
    "lint_paths",
    "register",
]
