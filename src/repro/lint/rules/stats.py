"""Stats-registry discipline rules (STAT).

:class:`repro.engine.stats.Stats` gives one counter namespace two write
verbs with different *merge* semantics: ``inc`` accumulates (summed on
``merge``) while ``set`` writes a gauge (last write wins).  Mixing them on
one key silently corrupts campaign aggregation, and building keys from
runtime values defeats ``sorted_dump`` — the byte-stable canonical form
the determinism regression diffs.

A stats call site is a ``.inc(...)`` / ``.set(...)`` method call whose
receiver name ends in ``stats`` (``self.stats``, ``mc.stats``,
``self._stats``) — the naming convention every component in this codebase
follows — or a local name the flow layer resolves to such an attribute
(``st = self.stats; st.inc(...)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.lint.core import Finding, ModuleInfo, Rule, register


@dataclass(frozen=True)
class StatsWrite:
    path: str
    line: int
    col: int
    method: str  #: "inc" or "set"
    key: Optional[str]  #: literal counter key, None when dynamic


def _stats_named(name: str) -> bool:
    return name.lower().lstrip("_").endswith("stats")


def _is_stats_receiver(func: ast.Attribute,
                       module: "ModuleInfo | None" = None) -> bool:
    recv = func.value
    if isinstance(recv, ast.Name):
        if _stats_named(recv.id):
            return True
        if module is not None:
            # flow hop: ``st = self.stats; st.inc(...)``
            binding = module.flow.binding_of(recv.id, func)
            if (binding is not None
                    and isinstance(binding.value, (ast.Attribute, ast.Name))):
                tail = (binding.value.attr
                        if isinstance(binding.value, ast.Attribute)
                        else binding.value.id)
                return _stats_named(tail)
        return False
    if isinstance(recv, ast.Attribute):
        return _stats_named(recv.attr)
    return False


def collect_stats_writes(module: ModuleInfo) -> list[StatsWrite]:
    writes: list[StatsWrite] = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "set")
                and _is_stats_receiver(node.func, module)
                and node.args):
            continue
        key_node = node.args[0]
        key = (key_node.value
               if isinstance(key_node, ast.Constant)
               and isinstance(key_node.value, str) else None)
        writes.append(StatsWrite(module.display_path, node.lineno,
                                 node.col_offset, node.func.attr, key))
    return writes


@register
class MixedCounterSemanticsRule(Rule):
    id = "STAT001"
    name = "mixed-inc-set"
    rationale = (
        "inc() counters are summed on Stats.merge while set() gauges keep "
        "the last write; one key written both ways aggregates differently "
        "depending on which write lands last"
    )

    def __init__(self) -> None:
        self._writes: list[StatsWrite] = []

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        self._writes.extend(collect_stats_writes(module))
        return iter(())

    def finish_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        by_key: dict[str, list[StatsWrite]] = {}
        for w in self._writes:
            if w.key is not None:
                by_key.setdefault(w.key, []).append(w)
        for key, writes in sorted(by_key.items()):
            methods = {w.method for w in writes}
            if methods != {"inc", "set"}:
                continue
            incs = [w for w in writes if w.method == "inc"]
            sets = [w for w in writes if w.method == "set"]
            for w in sets:
                other = incs[0]
                yield Finding(
                    rule=self.id, path=w.path, line=w.line, col=w.col,
                    message=(
                        f"counter {key!r} is set() here but inc()'d at "
                        f"{other.path}:{other.line}; pick one write verb "
                        "per key (gauges and counters merge differently)"
                    ),
                )


@register
class DynamicCounterKeyRule(Rule):
    id = "STAT002"
    name = "non-literal-counter-key"
    rationale = (
        "counter keys built from runtime values produce unstable "
        "namespaces: sorted_dump diffs break, and typos cannot be caught "
        "statically; keys should be string literals (ScopedStats is the "
        "sanctioned prefixing mechanism)"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for w in collect_stats_writes(module):
            if w.key is None:
                yield Finding(
                    rule=self.id, path=w.path, line=w.line, col=w.col,
                    message=(
                        f"stats.{w.method}() with a non-literal counter key; "
                        "use a string literal (or suppress where the "
                        "construction is provably deterministic)"
                    ),
                )
