"""Execution-options API discipline rules (API).

The PR that introduced the ``backend`` axis consolidated ``RunSpec``'s
accreting scalar knobs (``validate``, ``sanitize``, ``trace``,
``backend``) into one frozen :class:`repro.sim.options.ExecOptions`
value passed as ``options=``.  The flat keywords survive on ``RunSpec``
itself as a compatibility shim for callers and old serialized dicts, but
*this codebase* should construct specs the one canonical way — otherwise
the shim can never be retired and every new option axis re-opens the
question of which spelling call sites use.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleInfo, Rule, register

#: the pre-redesign flat flags now carried by ExecOptions
_FLAT_FLAGS = ("validate", "sanitize", "trace", "backend")


def _is_runspec_ctor(func: ast.expr,
                     module: "ModuleInfo | None" = None) -> bool:
    if isinstance(func, ast.Name) and func.id == "RunSpec":
        return True
    if isinstance(func, ast.Attribute) and func.attr == "RunSpec":
        return True
    if module is not None:
        # flow hop: ``from repro.sim.spec import RunSpec as RS`` or
        # ``Spec = RunSpec; Spec(...)``
        canonical = module.flow.canonical(func)
        if canonical is not None and (
                canonical == "RunSpec" or canonical.endswith(".RunSpec")):
            return True
    return False


@register
class FlatExecFlagsRule(Rule):
    id = "API001"
    name = "runspec-flat-exec-flags"
    rationale = (
        "RunSpec(validate=/sanitize=/trace=/backend=) is the pre-"
        "ExecOptions compatibility shim; in-tree call sites must pass "
        "options=ExecOptions(...) so execution knobs stay one value and "
        "the shim stays retireable"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and _is_runspec_ctor(node.func, module)):
                continue
            flat = [kw.arg for kw in node.keywords if kw.arg in _FLAT_FLAGS]
            if not flat:
                continue
            yield self.finding(
                module, node,
                "RunSpec(" + "=, ".join(flat) + "=) uses deprecated flat "
                "execution flags; pass options=ExecOptions("
                + ", ".join(f"{f}=..." for f in flat) + ") instead",
            )
