"""NumPy determinism rules (NUM).

The vector backend's contract (``tests/test_backends.py``) is *byte*
identity with the reference interpreter, which makes a class of NumPy
habits that are merely sloppy elsewhere into correctness bugs here:

- NUM001 — reducing an integer array whose dtype was never pinned.
  ``np.array([1, 2, 3])`` takes the platform C ``long`` (64-bit on
  Linux, 32-bit on Windows); a ``sum``/``prod`` over it wraps
  differently per platform.  Pass ``dtype=np.int64`` at creation or
  reduction.
- NUM002 — a float-capable reduction over an *unordered* collection
  (``sum(<set>)``, ``np.sum`` of a set-provenance operand).  Float
  addition is not associative; iteration order of a set is not part of
  the result's identity.  Sort first, or use ``math.fsum``.
- NUM003 — reading an ``np.empty`` array before its first write in the
  same function.  ``np.empty`` is uninitialized memory: the read is
  nondeterministic per allocation, the classic heisenbug.
- NUM004 — ``np.argsort`` without ``kind="stable"``: tied keys order by
  introsort internals, which vary across NumPy versions and platforms;
  replay identity needs stable ties.

``DET001`` already covers unseeded ``default_rng``/global RNG draws, so
this family deliberately does not duplicate it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ModuleInfo, Rule, register
from repro.lint.rules.determinism import _is_set_expr

#: reductions whose result dtype follows the operand's
_INT_SENSITIVE_REDUCTIONS = {
    "numpy.sum", "numpy.prod", "numpy.cumsum", "numpy.cumprod", "numpy.dot",
}
#: array constructors that take the platform default int for int input
_DEFAULT_INT_CTORS = {"numpy.array", "numpy.asarray", "numpy.arange"}


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _int_literal_payload(node: ast.AST) -> bool:
    """Does the constructor's data argument consist of int literals (the
    case where numpy silently picks the platform C long)?"""
    saw_int = False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant):
            if isinstance(sub.value, bool):
                return False
            if isinstance(sub.value, float):
                return False
            if isinstance(sub.value, int):
                saw_int = True
    return saw_int


@register
class UnpinnedIntReductionRule(Rule):
    id = "NUM001"
    name = "platform-int-reduction"
    rationale = (
        "np.array of int literals takes the platform C long (64-bit "
        "Linux, 32-bit Windows); reducing it gives platform-dependent "
        "wrap behavior — pin dtype=np.int64 at creation or reduction"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.flow.call_target(node)
            if target not in _INT_SENSITIVE_REDUCTIONS or not node.args:
                continue
            if _has_kwarg(node, "dtype"):
                continue
            ctor = self._unpinned_int_ctor(module, node.args[0])
            if ctor is not None:
                yield self.finding(
                    module, node,
                    f"{target}() over a {ctor}(...) of int literals "
                    "without dtype=; the accumulator width is the "
                    "platform C long — pass dtype=np.int64 to the "
                    "constructor or the reduction",
                )

    @staticmethod
    def _unpinned_int_ctor(module: ModuleInfo,
                           operand: ast.AST) -> Optional[str]:
        node: Optional[ast.AST] = operand
        if isinstance(node, ast.Name):
            binding = module.flow.binding_of(node.id, node)
            node = binding.value if binding is not None else None
        if not isinstance(node, ast.Call):
            return None
        target = module.flow.call_target(node)
        if target not in _DEFAULT_INT_CTORS:
            return None
        if _has_kwarg(node, "dtype"):
            return None
        if target == "numpy.arange" or _int_literal_payload(node):
            return target
        return None


@register
class UnorderedFloatReductionRule(Rule):
    id = "NUM002"
    name = "unordered-float-reduction"
    rationale = (
        "float addition is not associative, and set iteration order is "
        "not part of a result's identity; a reduction over an unordered "
        "collection can differ between runs — reduce sorted(...) or use "
        "math.fsum over a sorted sequence"
    )

    _REDUCERS = {"sum", "numpy.sum", "numpy.prod", "math.prod"}

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            target = module.flow.call_target(node)
            if target not in self._REDUCERS:
                continue
            operand = node.args[0]
            # dict.values() is deliberately NOT matched: dicts iterate in
            # insertion order, which IS part of a run's identity here
            if _is_set_expr(operand, module):
                yield self.finding(
                    module, node,
                    f"{target}() over an unordered collection; float "
                    "accumulation order is unspecified — reduce "
                    "sorted(...) instead",
                )


@register
class EmptyReadBeforeWriteRule(Rule):
    id = "NUM003"
    name = "np-empty-read-before-write"
    rationale = (
        "np.empty returns uninitialized memory; any read before the "
        "array is written observes whatever the allocator left there — "
        "nondeterministic per process and allocation"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_scope(module, fn)

    def _check_scope(self, module: ModuleInfo,
                     fn: ast.AST) -> Iterator[Finding]:
        flow = module.flow
        # names bound to np.empty(...) directly in this scope
        empties: dict[str, int] = {}
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and flow.call_target(node.value) in
                    ("numpy.empty", "numpy.empty_like")):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        empties.setdefault(tgt.id, node.lineno)
        if not empties:
            return
        first_write: dict[str, int] = {}
        reads: dict[str, list[ast.Name]] = {n: [] for n in empties}
        for node in ast.walk(fn):
            for name, write in self._classify_uses(node, empties):
                if flow.scope_of(name) is not fn:
                    continue
                if write:
                    line = first_write.get(name.id)
                    if line is None or name.lineno < line:
                        first_write[name.id] = name.lineno
                else:
                    reads[name.id].append(name)
        for var, bound_line in empties.items():
            write_line = first_write.get(var)
            for name in reads[var]:
                if name.lineno <= bound_line:
                    continue  # the binding itself / earlier unrelated use
                if write_line is None or name.lineno < write_line:
                    yield self.finding(
                        module, name,
                        f"{var!r} (np.empty, line {bound_line}) is read "
                        "before any element is written; np.empty memory "
                        "is uninitialized — use np.zeros/np.full, or "
                        "write the array first",
                    )
                    break  # one finding per array is enough

    @staticmethod
    def _classify_uses(node: ast.AST, names: dict[str, int]):
        """Yield ``(Name, is_write)`` for uses of tracked names where the
        use is a subscript store (``x[...] = v``), a ``.fill()`` call, or
        any other (read) appearance."""
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if (isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id in names):
                    yield tgt.value, True
        elif isinstance(node, ast.AugAssign):
            # x[i] += v reads the uninitialized cell
            if (isinstance(node.target, ast.Subscript)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id in names):
                yield node.target.value, False
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fill"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names):
            yield node.func.value, True
        elif isinstance(node, ast.Name) and node.id in names and \
                isinstance(node.ctx, ast.Load):
            yield node, False


@register
class UnstableArgsortRule(Rule):
    id = "NUM004"
    name = "unstable-argsort-ties"
    rationale = (
        "np.argsort's default introsort orders tied keys by partition "
        "internals that differ across NumPy versions and platforms; "
        "byte-identical replay needs kind='stable'"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.flow.call_target(node)
            is_np_argsort = target in ("numpy.argsort", "numpy.lexsort")
            is_method = (isinstance(node.func, ast.Attribute)
                         and node.func.attr == "argsort")
            if not (is_np_argsort or is_method):
                continue
            if target == "numpy.lexsort":
                continue  # lexsort is stable by construction
            kind = next((kw.value for kw in node.keywords
                         if kw.arg == "kind"), None)
            if (isinstance(kind, ast.Constant)
                    and kind.value in ("stable", "mergesort")):
                continue
            yield self.finding(
                module, node,
                "argsort without kind='stable'; tied keys order by "
                "introsort internals that vary across platforms — pass "
                "kind='stable' for replay identity",
            )
