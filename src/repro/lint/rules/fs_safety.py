"""Crash-safety rules for shared on-disk state (FS).

The campaign arc rests on one filesystem discipline, implemented by
:mod:`repro.sim.store`: shared artifacts (``index.json``, campaign
manifests, ``claims/<fp>.json``) are published by writing a **uniquely
named temp file** in full, flushing and ``os.fsync``-ing it, then
``os.replace``-ing it over the live name — so a reader (or a crash) sees
either the old bytes or the new bytes, never a torn file.  These rules
enforce the idiom everywhere the *path vocabulary* says a file is shared:

- FS001 — a direct write (``.write_text``/``.write_bytes``/``json.dump``
  onto an ``open(..., "w")``) lands on a path whose construction mentions
  index/manifest/claim/lease/segment vocabulary and is not a temp file.
- FS002 — ``os.replace`` publishes a temp file that was never fsynced in
  the enclosing function: the rename can be durable before the data is,
  so a power cut leaves a *complete-looking* empty/torn file (worse than
  no file — it parses as corruption, not absence).
- FS003 — a temp path named with a constant ``tmp`` suffix but no
  uniqueness component (``os.getpid()``/``uuid``/``mkstemp``): two
  writers stage to the same temp name and replace each other's bytes.
- FS004 — check-then-act on a shared path: ``exists()`` guarding a write
  in a multi-writer tree is a race; write unconditionally through the
  atomic idiom (or open with ``O_EXCL``) instead.

Path recognition is *marker-based* (``ModuleFlow.markers``): fuzzy by
design, tuned to this repo's naming.  Sanctioned low-level implementers
(``_atomic_write_text`` itself, tests forging foreign claims) carry
inline suppressions with justifications in ``docs/linting.md``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.core import Finding, ModuleInfo, Rule, register

#: tokens marking a path as shared mutable state (multi-process readers)
_SHARED_TOKENS = {"index", "manifest", "claim", "claims", "lease", "segment"}
#: tokens marking a path as a private staging file
_TEMP_TOKENS = {"tmp", "temp"}
#: tokens marking a temp name as collision-free
_UNIQUE_TOKENS = {"mkstemp", "getpid", "pid", "uuid", "uuid4",
                  "writer", "hex", "namedtemporaryfile", "mktemp"}

_WRITE_METHODS = {"write_text", "write_bytes"}
#: ``open`` / ``Path.open`` modes that truncate in place
_TRUNCATING_MODES = {"w", "wb", "w+", "wb+", "w+b", "wt"}


def _call_markers(module: ModuleInfo, expr: ast.AST) -> set[str]:
    return module.flow.markers(expr)


def _shallow_tokens(expr: ast.AST) -> set[str]:
    """Identifier/string tokens of the expression itself, *without*
    following binding hops — the temp-name exemption must look at the
    path being written, not at whatever store root it derives from."""
    out: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            out.update(_split_tokens(node.id))
        elif isinstance(node, ast.Attribute):
            out.update(_split_tokens(node.attr))
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.update(_split_tokens(node.value))
    return out


_TOKEN_RE = re.compile(r"[A-Za-z]+")


def _split_tokens(text: str) -> set[str]:
    return {t.lower() for t in _TOKEN_RE.findall(text)}


def _is_shared_path(module: ModuleInfo, expr: ast.AST) -> bool:
    if not (_call_markers(module, expr) & _SHARED_TOKENS):
        return False
    return not (_shallow_tokens(expr) & _TEMP_TOKENS)


def _write_mode(call: ast.Call, mode_pos: int) -> Optional[str]:
    """The mode string of an ``open``-style call (positional at
    ``mode_pos`` — 1 for builtin ``open(p, m)``, 0 for ``Path.open(m)`` —
    or the ``mode=`` keyword), or None: no mode defaults to ``"r"``."""
    if len(call.args) > mode_pos:
        arg = call.args[mode_pos]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant) and \
                isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _opened_for_write(module: ModuleInfo, expr: ast.AST) -> Optional[ast.AST]:
    """If ``expr`` is (or is bound to) a truncating ``open``/``.open``
    call, the path expression being opened; else None."""
    node: Optional[ast.AST] = expr
    if isinstance(node, ast.Name):
        binding = module.flow.binding_of(node.id, node)
        node = binding.value if binding is not None else None
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open" and node.args:
        if _write_mode(node, 1) in _TRUNCATING_MODES:
            return node.args[0]
        return None
    if isinstance(func, ast.Attribute) and func.attr == "open":
        if _write_mode(node, 0) in _TRUNCATING_MODES:
            return func.value
    return None


@register
class NonAtomicSharedWriteRule(Rule):
    id = "FS001"
    name = "non-atomic-shared-write"
    rationale = (
        "a direct write truncates the live file first: a crash (or a "
        "concurrent reader) between truncate and final flush observes a "
        "torn index/manifest/claim — publish via write-temp-then-"
        "os.replace instead"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._shared_write_target(module, node)
            if target is None:
                continue
            yield self.finding(
                module, node,
                "direct write to a shared path (index/manifest/claim "
                "vocabulary); a crash mid-write leaves a torn file for "
                "every other process — stage to a unique temp file and "
                "publish with os.replace",
            )

    def _shared_write_target(self, module: ModuleInfo,
                             node: ast.Call) -> Optional[ast.AST]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            if _is_shared_path(module, func.value):
                return func.value
            return None
        # json.dump(obj, fh) where fh was opened "w" on a shared path
        target = module.flow.call_target(node)
        if target in ("json.dump", "pickle.dump") and len(node.args) >= 2:
            opened = _opened_for_write(module, node.args[1])
            if opened is not None and _is_shared_path(module, opened):
                return opened
        return None


@register
class ReplaceWithoutFsyncRule(Rule):
    id = "FS002"
    name = "replace-without-fsync"
    rationale = (
        "os.replace makes the *name* durable, not the data: without a "
        "prior flush+fsync of the temp file a power cut can publish an "
        "empty or torn file under the live name, which readers parse as "
        "corruption rather than absence"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            replaces = []
            fsync_lines = []
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                target = module.flow.call_target(node)
                if target in ("os.replace", "os.rename"):
                    replaces.append(node)
                elif target == "os.fsync" or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "fsync"):
                    fsync_lines.append(node.lineno)
            for rep in replaces:
                if not any(line <= rep.lineno for line in fsync_lines):
                    verb = module.flow.call_target(rep) or "os.replace"
                    yield self.finding(
                        module, rep,
                        f"{verb}() without a prior os.fsync of the staged "
                        "file in this function; the rename can become "
                        "durable before the data — flush+fsync the temp "
                        "file first",
                    )


def _string_constants(module: ModuleInfo, expr: ast.AST,
                      _depth: int = 0) -> list[str]:
    """String constants appearing in the construction of ``expr``
    (including f-string literal parts), following one binding hop for
    names — the *literal* half of temp-name analysis."""
    if _depth > 4:
        return []
    out: list[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.append(node.value)
        elif isinstance(node, ast.Name):
            binding = module.flow.binding_of(node.id, node)
            if binding is not None and binding.value is not None:
                out.extend(_string_constants(module, binding.value,
                                             _depth + 1))
    return out


@register
class PredictableTempNameRule(Rule):
    id = "FS003"
    name = "predictable-temp-name"
    rationale = (
        "a fixed temp name ('x.json.tmp') is shared by every concurrent "
        "writer: one process's os.replace publishes another's half-"
        "written bytes — derive temp names from mkstemp, os.getpid(), or "
        "a uuid"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
                receiver = func.value
            else:
                receiver = _opened_for_write(module, node)
            if receiver is None:
                continue
            constants = " ".join(_string_constants(module, receiver)).lower()
            if "tmp" not in constants and "temp" not in constants:
                continue
            markers = _call_markers(module, receiver)
            if markers & _UNIQUE_TOKENS:
                continue
            yield self.finding(
                module, node,
                "write to a temp path with a constant name and no "
                "uniqueness component; concurrent writers collide — name "
                "it with os.getpid()/uuid4 (or use mkstemp)",
            )


@register
class ExistsThenWriteRule(Rule):
    id = "FS004"
    name = "exists-then-act-race"
    rationale = (
        "if exists() guards a write, two processes both see 'absent' and "
        "both write; the check and the act are not atomic — write "
        "unconditionally via the atomic publish idiom, or open with "
        "O_EXCL and handle FileExistsError"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.If):
                continue
            tested = self._exists_receiver(node.test)
            if tested is None or not _is_shared_path(module, tested):
                continue
            tested_dump = ast.dump(tested)
            for body_node in node.body:
                for call in ast.walk(body_node):
                    if not isinstance(call, ast.Call):
                        continue
                    func = call.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr in _WRITE_METHODS
                            and ast.dump(func.value) == tested_dump):
                        yield self.finding(
                            module, call,
                            "write guarded by exists() on the same shared "
                            "path; check-then-act is racy across "
                            "processes — publish atomically (os.replace) "
                            "or open with O_EXCL",
                        )

    @staticmethod
    def _exists_receiver(test: ast.expr) -> Optional[ast.expr]:
        """The X in ``if not X.exists():`` / ``if X.exists():``."""
        node = test
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            node = node.operand
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "exists"):
            return node.func.value
        return None
