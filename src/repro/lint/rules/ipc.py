"""Cross-process discipline rules (IPC).

The work-stealing campaign runner fans out over ``multiprocessing``
workers that coordinate *only* through the filesystem protocol of
:class:`repro.sim.store.FingerprintStore`: per-writer append-only
segments, advisory lease claims with wall-clock expiry, and read-back
verification after publishing a claim.  Three ways code quietly violates
that model:

- IPC001 — a ``FingerprintStore`` (or raw file handle) opened in the
  parent and shipped into worker arguments.  The store's writer identity,
  open segment fd, and in-memory index are all per-process; a forked or
  pickled copy either fails to pickle or — worse — two processes append
  through one inherited fd and interleave torn records.
- IPC002 — a lease/claim deadline computed or compared with
  ``time.monotonic()``.  Monotonic clocks are per-boot and per-host:
  another shard on another machine cannot interpret the value, so an
  expired lease never becomes reclaimable (or is reclaimed instantly).
  Leases are the one sanctioned *wall-clock* use (``time.time`` with a
  DET002 suppression), precisely because they are cross-host.
- IPC003 — publishing a claim without reading it back.  ``os.replace``
  decides the race, but only the read-back tells you whether *you* won;
  skipping it means two shards both believe they hold the lease and
  duplicate (or double-publish) the work.

Like the FS rules these lean on marker-based path/vocabulary
recognition; ``FingerprintStore.try_claim`` is the no-fire exemplar for
IPC003 (atomic write, then ``read_claim`` compares writer ids).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ModuleInfo, Rule, register
from repro.lint.rules.pickle_safety import UnpicklableWorkerArgRule

#: tokens marking a function/statement as lease-protocol code.  Note
#: "deadline" is deliberately absent: ``deadline = time.monotonic() + t``
#: is the correct single-process polling-timeout idiom.
_LEASE_TOKENS = {"lease", "claim", "claims", "expires", "expiry",
                 "stale", "holder"}
#: call targets that create a per-process resource
_PER_PROCESS_CTORS = ("FingerprintStore", "open")


def _lease_context(module: ModuleInfo, node: ast.AST) -> bool:
    """Is ``node`` inside lease-protocol code?  True when the enclosing
    function's name, or the enclosing statement's construction markers,
    use the lease vocabulary."""
    fn = module.flow.enclosing_function(node)
    if fn is not None:
        name_tokens = {t.lower() for t in fn.name.split("_") if t}
        if name_tokens & _LEASE_TOKENS:
            return True
    # climb to the enclosing statement; for compound statements (While/
    # If/For...) judge only the header expression containing the call,
    # not the whole body — a polling loop must not inherit lease
    # vocabulary from unrelated statements inside it
    prev: ast.AST = node
    stmt = module.flow.parents.get(id(node))
    while stmt is not None and not isinstance(stmt, ast.stmt):
        prev = stmt
        stmt = module.flow.parents.get(id(stmt))
    subject = prev if (stmt is not None
                       and hasattr(stmt, "body")) else stmt
    if subject is not None and module.flow.markers(subject) & _LEASE_TOKENS:
        return True
    return False


@register
class StoreIntoWorkerRule(Rule):
    id = "IPC001"
    name = "per-process-resource-into-worker"
    rationale = (
        "a FingerprintStore or open file handle is a per-process "
        "resource (writer id, segment fd, in-memory index); shipping one "
        "into pool/run_batch workers either fails to pickle or makes two "
        "processes write through one inherited descriptor"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            worker_args = UnpicklableWorkerArgRule._worker_bound_args(
                node, module)
            if worker_args is None:
                continue
            for arg in worker_args:
                for name in ast.walk(arg):
                    if not isinstance(name, ast.Name):
                        continue
                    ctor = self._per_process_ctor(module, name)
                    if ctor is not None:
                        yield self.finding(
                            module, name,
                            f"{name.id!r} (from {ctor}()) is a per-process "
                            "resource and flows into a worker-executed "
                            "path; open it inside the worker instead — "
                            "the store protocol is designed for one "
                            "instance per process",
                        )

    @staticmethod
    def _per_process_ctor(module: ModuleInfo,
                          name: ast.Name) -> Optional[str]:
        origin = module.flow.origin(name)
        if origin.kind != "call" or origin.path is None:
            return None
        tail = origin.path.rsplit(".", 1)[-1]
        return origin.path if tail in _PER_PROCESS_CTORS else None


@register
class MonotonicLeaseClockRule(Rule):
    id = "IPC002"
    name = "monotonic-lease-clock"
    rationale = (
        "lease expiry crosses process and host boundaries; "
        "time.monotonic() is per-boot and means nothing to the shard "
        "that reads the claim file — lease deadlines are the sanctioned "
        "wall-clock (time.time) use"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.flow.call_target(node)
            if target not in ("time.monotonic", "time.monotonic_ns"):
                continue
            if _lease_context(module, node):
                yield self.finding(
                    module, node,
                    f"{target}() used for a lease/claim deadline; "
                    "monotonic clocks are per-boot and per-host, so other "
                    "shards cannot interpret the expiry — use time.time() "
                    "(with a DET002 suppression citing the lease "
                    "protocol)",
                )


@register
class ClaimWithoutReadbackRule(Rule):
    id = "IPC003"
    name = "claim-publish-without-readback"
    rationale = (
        "os.replace decides a claim race but does not report the winner; "
        "without reading the claim back and comparing writer ids, two "
        "shards both believe they hold the lease and duplicate the work"
    )

    _READ_TOKENS = {"read", "load", "loads", "holder", "get", "verify",
                    "check"}

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            publishes = []
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and self._publishes_claim(
                        module, node):
                    publishes.append(node)
            if not publishes:
                continue
            readback_lines = [
                node.lineno for node in ast.walk(fn)
                if isinstance(node, ast.Call)
                and self._reads_claim(module, node)
            ]
            for pub in publishes:
                if not any(line >= pub.lineno for line in readback_lines):
                    yield self.finding(
                        module, pub,
                        "claim published without read-back verification "
                        "in this function; re-read the claim and compare "
                        "writer ids to learn who won the race (see "
                        "FingerprintStore.try_claim)",
                    )

    @staticmethod
    def _publishes_claim(module: ModuleInfo, call: ast.Call) -> bool:
        """A write-flavored call whose path argument speaks the claim
        vocabulary: ``_atomic_write_text(claim_path, ...)``,
        ``claim_path.write_text(...)``, ``os.replace(tmp, claim_path)``."""
        func = call.func
        write_name = None
        if isinstance(func, ast.Name):
            write_name = func.id
        elif isinstance(func, ast.Attribute):
            write_name = func.attr
        if write_name is None:
            return False
        low = write_name.lower()
        if not ("write" in low or "replace" in low or "publish" in low):
            return False
        subject_markers: set[str] = set()
        for arg in call.args:
            subject_markers |= module.flow.markers(arg)
        if isinstance(func, ast.Attribute):
            subject_markers |= module.flow.markers(func.value)
        return bool(subject_markers & {"claim", "claims", "lease"})

    def _reads_claim(self, module: ModuleInfo, call: ast.Call) -> bool:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        name_tokens = {t.lower() for t in name.split("_") if t}
        if not (name_tokens & self._READ_TOKENS):
            return False
        markers = module.flow.markers(call)
        return bool(markers & {"claim", "claims", "lease"})
