"""Observer-hook conformance rules (HOOK).

:class:`repro.engine.observer.ObserverChain` dispatches lazily by name: a
hook nobody implements becomes a cached no-op, and an observer method
nobody dispatches simply never fires.  That is what lets the sanitizer and
tracer compose, but it also means a misspelled ``on_*`` method fails
*silently* — the exact bug class these rules make loud.

The pass works in two sweeps over the analyzed file set:

1. collect every **dispatch site** — a call ``X.on_<hook>(...)`` whose
   receiver is an ``observer`` attribute (``self.observer.on_fill(e)``) or
   a local alias of one (``obs = self.observer; obs.on_deliver(ev)``), plus
   ``getattr(obs, "on_<hook>", ...)`` string-constant dispatches (arity
   unknown);
2. collect every **observer hook** — an ``on_*`` method on a class (hooks
   a class invokes on *itself*, e.g. callback slots like ``on_finished``,
   are exempt), then flag hooks whose name matches no dispatch site
   (HOOK001) or whose signature can accept none of the matching sites'
   argument counts (HOOK002).

Both rules stay silent when the file set contains no dispatch sites at
all (e.g. linting a lone observer module), since the vocabulary is
unknowable there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.lint.core import Finding, ModuleInfo, Rule, register


@dataclass(frozen=True)
class DispatchSite:
    path: str
    line: int
    hook: str
    nargs: Optional[int]  #: None for getattr-based dispatch (arity unknown)


@dataclass(frozen=True)
class HookDef:
    path: str
    line: int
    col: int
    cls: str
    hook: str
    min_args: int  #: required positional args, excluding self
    max_args: Optional[int]  #: None when the hook takes *args


def _observer_receiver(call: ast.Call, module: ModuleInfo) -> bool:
    """Is this ``X.on_*()`` call dispatched through an observer slot?

    Flow-aware: a plain name receiver is resolved through the module's
    binding tables, so ``obs = self.observer; obs.on_deliver(ev)``
    dispatches regardless of which scope the alias lives in — and a name
    bound to something else never does."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    recv = func.value
    if isinstance(recv, ast.Attribute) and recv.attr == "observer":
        return True
    if isinstance(recv, ast.Name):
        binding = module.flow.binding_of(recv.id, call)
        return (binding is not None
                and isinstance(binding.value, ast.Attribute)
                and binding.value.attr == "observer")
    return False


def collect_dispatch_sites(module: ModuleInfo) -> list[DispatchSite]:
    sites: list[DispatchSite] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr.startswith("on_")
                and _observer_receiver(node, module)):
            nargs = (None if any(isinstance(a, ast.Starred) for a in node.args)
                     else len(node.args) + len(node.keywords))
            sites.append(DispatchSite(module.display_path, node.lineno,
                                      func.attr, nargs))
        elif (isinstance(func, ast.Name) and func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and node.args[1].value.startswith("on_")):
            sites.append(DispatchSite(module.display_path, node.lineno,
                                      node.args[1].value, None))
    return sites


def _self_invoked_hooks(cls: ast.ClassDef) -> set[str]:
    """Hook names the class calls on ``self`` (callback-slot pattern like
    ``self.on_finished()`` — not observer hooks)."""
    hooks: set[str] = set()
    for node in ast.walk(cls):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr.startswith("on_")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            hooks.add(node.func.attr)
    return hooks


def collect_hook_defs(module: ModuleInfo) -> list[HookDef]:
    defs: list[HookDef] = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        self_hooks = _self_invoked_hooks(cls)
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not item.name.startswith("on_") or item.name in self_hooks:
                continue
            a = item.args
            positional = len(a.posonlyargs) + len(a.args) - 1  # minus self
            required = positional - len(a.defaults)
            defs.append(HookDef(
                path=module.display_path,
                line=item.lineno,
                col=item.col_offset,
                cls=cls.name,
                hook=item.name,
                min_args=max(0, required),
                max_args=None if a.vararg is not None else positional,
            ))
    return defs


class _HookRuleBase(Rule):
    def __init__(self) -> None:
        self._sites: list[DispatchSite] = []
        self._defs: list[HookDef] = []

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        self._sites.extend(collect_dispatch_sites(module))
        self._defs.extend(collect_hook_defs(module))
        return iter(())


@register
class UndispatchedHookRule(_HookRuleBase):
    id = "HOOK001"
    name = "hook-never-dispatched"
    rationale = (
        "ObserverChain turns unknown hook names into cached no-ops, so an "
        "observer method whose name matches no dispatch site never fires "
        "— silently"
    )

    def finish_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        if not self._sites:
            return
        dispatched = {s.hook for s in self._sites}
        for d in self._defs:
            if d.hook not in dispatched:
                yield Finding(
                    rule=self.id, path=d.path, line=d.line, col=d.col,
                    message=(
                        f"{d.cls}.{d.hook} matches no dispatch site in the "
                        "analyzed files; through ObserverChain it will "
                        "silently never fire (known hooks: "
                        f"{', '.join(sorted(dispatched))})"
                    ),
                )


@register
class HookArityRule(_HookRuleBase):
    id = "HOOK002"
    name = "hook-arity-mismatch"
    rationale = (
        "a hook whose signature cannot accept the arguments any dispatch "
        "site passes raises TypeError mid-simulation (or, with defaults, "
        "silently drops data)"
    )

    def finish_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        if not self._sites:
            return
        by_hook: dict[str, list[DispatchSite]] = {}
        for s in self._sites:
            by_hook.setdefault(s.hook, []).append(s)
        for d in self._defs:
            sites = by_hook.get(d.hook)
            if not sites:
                continue  # HOOK001's finding
            known = [s for s in sites if s.nargs is not None]
            if not known:
                continue  # every site is getattr-based: arity unknowable
            if any(self._compatible(d, s.nargs) for s in known):
                continue
            arities = sorted({s.nargs for s in known})
            where = ", ".join(f"{s.path}:{s.line}" for s in known[:3])
            yield Finding(
                rule=self.id, path=d.path, line=d.line, col=d.col,
                message=(
                    f"{d.cls}.{d.hook} accepts "
                    f"{self._span(d)} argument(s) but every dispatch site "
                    f"passes {'/'.join(map(str, arities))} ({where})"
                ),
            )

    @staticmethod
    def _compatible(d: HookDef, nargs: int) -> bool:
        return d.min_args <= nargs and (d.max_args is None or nargs <= d.max_args)

    @staticmethod
    def _span(d: HookDef) -> str:
        if d.max_args is None:
            return f">={d.min_args}"
        if d.min_args == d.max_args:
            return str(d.min_args)
        return f"{d.min_args}-{d.max_args}"
