"""Built-in rule families.  Importing this package registers every rule
with :data:`repro.lint.core.REGISTRY`."""

from repro.lint.rules import (  # noqa: F401
    api_options,
    determinism,
    fs_safety,
    hooks,
    ipc,
    numpy_det,
    pickle_safety,
    purity,
    stats,
)
