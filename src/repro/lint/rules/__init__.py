"""Built-in rule families.  Importing this package registers every rule
with :data:`repro.lint.core.REGISTRY`."""

from repro.lint.rules import (  # noqa: F401
    api_options,
    determinism,
    hooks,
    pickle_safety,
    purity,
    stats,
)
