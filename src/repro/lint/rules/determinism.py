"""Determinism rules (DET).

The paper's flow-control and rate-matching results rest on bit-identical
re-execution: ``run_batch(specs, workers=N)`` promises the same counters
for any ``N``, the result cache keys on a content hash of the spec, and
the determinism regression diffs ``Stats.sorted_dump`` across runs.  Any
unseeded RNG, wall-clock read, or set-iteration order reaching sim state
silently breaks all three.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Finding,
    ModuleInfo,
    Rule,
    register,
)

#: module-level ``random`` functions that draw from (or reseed) the hidden
#: global Mersenne Twister
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes", "seed",
}

#: legacy ``numpy.random`` module-level functions (hidden global RandomState)
_GLOBAL_NP_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "normal",
    "uniform", "standard_normal", "binomial", "poisson", "exponential",
}

#: wall-clock reads; monotonic host-profiling clocks (``perf_counter``,
#: ``monotonic``, ``process_time``) are deliberately allowed — they cannot
#: reach sim state because sim time is the engine's integer picoseconds
_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


@register
class UnseededRandomRule(Rule):
    id = "DET001"
    name = "unseeded-rng"
    rationale = (
        "module-level random/numpy.random draws use a hidden global RNG "
        "whose state depends on import order and process history; results "
        "stop being a pure function of the RunSpec"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # flow-aware: resolves aliased imports AND value-aliased bindings
        # (``factory = np.random.default_rng; factory()``)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.flow.call_target(node)
            if target is None:
                continue
            msg = self._diagnose(target, node)
            if msg is not None:
                yield self.finding(module, node, msg)

    def _diagnose(self, target: str, node: ast.Call) -> "str | None":
        unseeded = not node.args and not node.keywords
        if target.startswith("random."):
            fn = target.split(".", 1)[1]
            if fn in _GLOBAL_RANDOM_FNS:
                return (f"{target}() draws from the process-global RNG; use a "
                        "per-spec-seeded random.Random(seed) instance")
            if fn == "Random" and unseeded:
                return ("random.Random() without a seed is entropy-seeded; "
                        "pass the spec's seed")
        if target.startswith("numpy.random."):
            fn = target.split(".", 2)[2]
            if fn in _GLOBAL_NP_RANDOM_FNS:
                return (f"{target}() uses numpy's global RandomState; use a "
                        "per-spec-seeded numpy.random.default_rng(seed)")
            if fn in ("default_rng", "RandomState", "Generator") and unseeded:
                return (f"{target}() without a seed is entropy-seeded; "
                        "pass the spec's seed")
        return None


@register
class WallClockRule(Rule):
    id = "DET002"
    name = "wall-clock-read"
    rationale = (
        "wall-clock reads differ across runs and hosts; elapsed-time "
        "reporting should use the monotonic time.perf_counter(), and "
        "simulated time is engine.now (integer picoseconds)"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.flow.call_target(node)
            if target in _WALL_CLOCK:
                yield self.finding(
                    module, node,
                    f"wall-clock read {_WALL_CLOCK[target]}; use the "
                    "monotonic time.perf_counter() for host elapsed time "
                    "(or engine.now for simulated time)",
                )


def _is_set_expr(node: ast.AST, module: "ModuleInfo | None" = None) -> bool:
    """Set display, set comprehension, a set()/frozenset() call, or (with
    flow) a name bound to one (``s = set(xs); for x in s``)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if module is not None and isinstance(node, ast.Name):
        origin = module.flow.origin(node)
        if origin.is_call_to("set", "frozenset"):
            return True
        if origin.node is not None and isinstance(origin.node,
                                                  (ast.Set, ast.SetComp)):
            return True
    return False


@register
class SetIterationRule(Rule):
    id = "DET003"
    name = "set-iteration-order"
    rationale = (
        "set iteration order depends on insertion history and hash "
        "randomization; iterating one into sim state (or into an ordered "
        "container) leaks that order — wrap in sorted()"
    )

    _ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate"}
    #: consumers whose result does not depend on iteration order — a
    #: comprehension fed straight into one of these is fine
    _ORDER_INSENSITIVE_SINKS = {
        "sorted", "set", "frozenset", "sum", "min", "max", "len",
        "any", "all", "dict",
    }

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, (ast.For, ast.AsyncFor))
                    and _is_set_expr(node.iter, module)):
                yield self.finding(
                    module, node.iter,
                    "iteration over a set has nondeterministic order; "
                    "iterate sorted(...) instead",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if self._order_insensitive_sink(module, node):
                    continue
                for gen in node.generators:
                    if _is_set_expr(gen.iter, module):
                        yield self.finding(
                            module, gen.iter,
                            "comprehension over a set has nondeterministic "
                            "order; iterate sorted(...) instead",
                        )
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                  and node.func.id in self._ORDER_SENSITIVE_WRAPPERS
                  and node.args and _is_set_expr(node.args[0], module)):
                yield self.finding(
                    module, node,
                    f"{node.func.id}() of a set captures nondeterministic "
                    "order; use sorted(...) instead",
                )

    def _order_insensitive_sink(self, module: ModuleInfo,
                                node: ast.AST) -> bool:
        parent = module.flow.parents.get(id(node))
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in self._ORDER_INSENSITIVE_SINKS
                and node in parent.args)
