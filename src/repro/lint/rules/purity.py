"""Event-handler purity rules (PURE).

Observer hooks are read-only by contract: that contract is what makes a
sanitized or traced run bit-identical to a bare one (the whole point of
composing them through :class:`repro.engine.observer.ObserverChain`).  A
hook that writes an attribute of the component it observes breaks the
guarantee in the worst possible way — the run still completes, with
slightly different numbers.

The rule flags assignments (plain, augmented, deletions) inside ``on_*``
observer methods whose target is rooted at a *hook parameter* or a local
alias of one.  Writes to ``self`` (the observer's own shadow state) and to
genuinely local values are the normal checker pattern and stay legal.

With the project layer the rule also sees **through one level of helper
calls**: a hook that passes an observed component to a module-level
function which writes through the corresponding parameter is flagged at
the call site (``self._scrub(entry)`` stays out of reach — ``self`` is
opaque — but ``scrub(entry)`` and ``helpers.scrub(entry)`` resolve).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import (
    Finding,
    FunctionSymbol,
    ModuleInfo,
    Rule,
    register,
    root_name,
)
from repro.lint.rules.hooks import _self_invoked_hooks


def function_params(fn: "ast.FunctionDef | ast.AsyncFunctionDef",
                    skip_self: bool = True) -> list[str]:
    a = fn.args
    params = [p.arg for p in (a.posonlyargs + a.args + a.kwonlyargs)]
    if a.vararg:
        params.append(a.vararg.arg)
    if a.kwarg:
        params.append(a.kwarg.arg)
    if skip_self and params and params[0] == "self":
        params = params[1:]
    return params


def _alias_owners(fn: ast.AST, seeds: "dict[str, str]") -> dict[str, str]:
    """Propagate taint through simple local aliases: ``stack = warp.stack``
    makes a write to ``stack[...]`` a write through ``warp``.  Maps each
    tainted local name to the seed (parameter) that owns it."""
    owners = dict(seeds)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(
                node.value, (ast.Name, ast.Attribute)):
            root = root_name(node.value)
            if root in owners:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        owners[tgt.id] = owners[root]
    return owners


def _write_targets(fn: ast.AST) -> Iterator[ast.expr]:
    """Attribute/subscript targets of assignments, augmented assignments,
    and deletions inside ``fn``."""
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for tgt in targets:
            if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                yield tgt


def params_written_through(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    """The parameters ``fn`` mutates: targets of attribute/subscript
    writes rooted at a parameter or a local alias of one."""
    owners = _alias_owners(fn, {p: p for p in function_params(fn)})
    written: set[str] = set()
    for tgt in _write_targets(fn):
        root = root_name(tgt)
        if root in owners:
            written.add(owners[root])
    return written


@register
class HookMutationRule(Rule):
    id = "PURE001"
    name = "hook-mutates-observed-state"
    rationale = (
        "observer hooks must be read-only: a write to the observed "
        "component's state makes sanitized/traced runs diverge from bare "
        "runs, silently invalidating every bit-identity guarantee"
    )

    def __init__(self) -> None:
        #: canonical helper name -> params it writes through (memoized)
        self._helper_writes: dict[str, set[str]] = {}

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            self_hooks = _self_invoked_hooks(cls)
            for item in cls.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name.startswith("on_")
                        and item.name not in self_hooks):
                    yield from self._check_hook(module, cls.name, item)

    def _check_hook(self, module: ModuleInfo, cls_name: str,
                    fn: ast.FunctionDef) -> Iterator[Finding]:
        params = function_params(fn)
        if not params:
            return
        owners = _alias_owners(fn, {p: p for p in params})

        for tgt in _write_targets(fn):
            root = root_name(tgt)
            if root in owners:
                yield self.finding(
                    module, tgt,
                    f"{cls_name}.{fn.name} writes through hook "
                    f"parameter {owners[root]!r}; observer hooks are "
                    "read-only (mutating observed state breaks the "
                    "bit-identity contract) — keep shadow state on self "
                    "instead",
                )

        # one level deeper: a tainted value handed to a project-defined
        # helper that writes through the corresponding parameter
        for call in ast.walk(fn):
            if not isinstance(call, ast.Call):
                continue
            for arg_node, helper_param, sym in self._forwarded_args(
                    module, call):
                root = root_name(arg_node)
                if root in owners:
                    yield self.finding(
                        module, call,
                        f"{cls_name}.{fn.name} passes hook parameter "
                        f"{owners[root]!r} to {sym.canonical}(), which "
                        f"writes through its {helper_param!r} parameter; "
                        "observer hooks are read-only even via helpers",
                    )

    def _forwarded_args(self, module: ModuleInfo, call: ast.Call):
        """(arg expression, helper param, symbol) triples for arguments of
        ``call`` that land on a parameter the callee writes through."""
        sym = None if self.project is None else self.project.called_function(
            module, call)
        if sym is None:
            return
        writes = self._writes_of(sym)
        if not writes:
            return
        params = function_params(sym.node, skip_self=False)
        for i, arg in enumerate(call.args):
            if i < len(params) and params[i] in writes:
                yield arg, params[i], sym
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in writes:
                yield kw.value, kw.arg, sym

    def _writes_of(self, sym: FunctionSymbol) -> set[str]:
        cached = self._helper_writes.get(sym.canonical)
        if cached is None:
            cached = params_written_through(sym.node)
            self._helper_writes[sym.canonical] = cached
        return cached
