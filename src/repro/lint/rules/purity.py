"""Event-handler purity rules (PURE).

Observer hooks are read-only by contract: that contract is what makes a
sanitized or traced run bit-identical to a bare one (the whole point of
composing them through :class:`repro.engine.observer.ObserverChain`).  A
hook that writes an attribute of the component it observes breaks the
guarantee in the worst possible way — the run still completes, with
slightly different numbers.

The rule flags assignments (plain, augmented, deletions) inside ``on_*``
observer methods whose target is rooted at a *hook parameter* or a local
alias of one.  Writes to ``self`` (the observer's own shadow state) and to
genuinely local values are the normal checker pattern and stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleInfo, Rule, register, root_name
from repro.lint.rules.hooks import _self_invoked_hooks


def _expr_root(node: ast.AST) -> "str | None":
    return root_name(node)


@register
class HookMutationRule(Rule):
    id = "PURE001"
    name = "hook-mutates-observed-state"
    rationale = (
        "observer hooks must be read-only: a write to the observed "
        "component's state makes sanitized/traced runs diverge from bare "
        "runs, silently invalidating every bit-identity guarantee"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            self_hooks = _self_invoked_hooks(cls)
            for item in cls.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name.startswith("on_")
                        and item.name not in self_hooks):
                    yield from self._check_hook(module, cls.name, item)

    def _check_hook(self, module: ModuleInfo, cls_name: str,
                    fn: ast.FunctionDef) -> Iterator[Finding]:
        a = fn.args
        params = [p.arg for p in (a.posonlyargs + a.args + a.kwonlyargs)]
        if a.vararg:
            params.append(a.vararg.arg)
        if a.kwarg:
            params.append(a.kwarg.arg)
        tainted = {p for p in params if p != "self"}
        if not tainted:
            return

        for node in ast.walk(fn):
            # propagate taint through simple local aliases:
            #   stack = warp.stack      -> writing stack[...] mutates warp
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           (ast.Name, ast.Attribute)):
                root = _expr_root(node.value)
                if root in tainted:
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            tainted.add(tgt.id)

        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for tgt in targets:
                if not isinstance(tgt, (ast.Attribute, ast.Subscript)):
                    continue
                root = _expr_root(tgt)
                if root in tainted:
                    yield self.finding(
                        module, tgt,
                        f"{cls_name}.{fn.name} writes through hook "
                        f"parameter {root!r}; observer hooks are read-only "
                        "(mutating observed state breaks the bit-identity "
                        "contract) — keep shadow state on self instead",
                    )
