"""Pickle / multiprocess-safety rules (PICK).

``run_batch(specs, workers=N)`` pickles work items into a
``multiprocessing`` pool.  Lambdas, closures, and locally-defined
functions/classes do not pickle; and module-level globals mutated inside a
worker mutate the *worker's* copy only, so the parent silently never sees
the write.  Both failure modes surface far from their cause (or not at
all), which makes them lint material.

``run_batch``'s ``progress=`` and ``cache=`` keywords are exempt from
PICK001: both are documented parent-side-only (workers never receive
them), so closures there are fine.

Flow-aware since the project layer landed: the dispatch point is
recognised through import aliases (``from repro.api import run_batch as
rb``), a name argument bound to a lambda is resolved to it, and a
module-level **wrapper** that forwards a parameter into ``run_batch`` or
a pool method taints that parameter one call level up.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import (
    Finding,
    FunctionSymbol,
    ModuleInfo,
    Rule,
    register,
)

#: pool fan-out methods whose first argument is shipped to workers
_POOL_METHODS = {"imap", "imap_unordered", "map_async", "starmap",
                 "starmap_async", "apply", "apply_async"}
#: ``.map``/``.submit`` are common enough to need a pool-ish receiver name
_POOL_METHODS_GUARDED = {"map", "submit"}
#: run_batch kwargs that stay in the parent process
_PARENT_SIDE_KWARGS = {"progress", "cache"}


def _pool_receiver(func: ast.Attribute) -> bool:
    if func.attr in _POOL_METHODS:
        return True
    if func.attr in _POOL_METHODS_GUARDED:
        recv = func.value
        name = recv.id if isinstance(recv, ast.Name) else (
            recv.attr if isinstance(recv, ast.Attribute) else "")
        low = name.lower()
        return "pool" in low or "executor" in low
    return False


def _local_defs(scope: ast.AST) -> set[str]:
    """Function/class names defined directly inside a function scope
    (nested defs — unpicklable by reference)."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


@register
class UnpicklableWorkerArgRule(Rule):
    id = "PICK001"
    name = "unpicklable-worker-callable"
    rationale = (
        "lambdas and locally-defined functions/classes cannot be pickled "
        "into multiprocessing workers; run_batch and pool fan-out need "
        "module-level callables and plain-data specs"
    )

    def __init__(self) -> None:
        #: canonical wrapper name -> params it forwards into a dispatch
        self._forwarding: dict[str, set[str]] = {}

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # map each call to its innermost enclosing function's local defs
        scopes: list[tuple[ast.AST, set[str]]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, _local_defs(node)))

        def locals_for(call: ast.Call) -> set[str]:
            best: set[str] = set()
            best_span = None
            for scope, names in scopes:
                if (scope.lineno <= call.lineno
                        and call.lineno <= (scope.end_lineno or scope.lineno)):
                    span = (scope.end_lineno or scope.lineno) - scope.lineno
                    if best_span is None or span < best_span:
                        best, best_span = names, span
            return best

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            worker_args = self._worker_bound_args(node, module)
            via = None
            if worker_args is None:
                worker_args, via = self._wrapper_forwarded_args(module, node)
            if worker_args is None:
                continue
            local_names = locals_for(node)
            through = f" (through {via}())" if via else ""
            for arg in worker_args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        module, arg,
                        "lambda flows into a worker-executed path"
                        f"{through}; multiprocessing cannot pickle it — "
                        "use a module-level function",
                    )
                elif isinstance(arg, ast.Name):
                    if arg.id in local_names:
                        yield self.finding(
                            module, arg,
                            f"locally-defined {arg.id!r} flows into a "
                            f"worker-executed path{through}; nested "
                            "functions/classes do not pickle — define it "
                            "at module level",
                        )
                        continue
                    origin = module.flow.origin(arg)
                    if origin.node is not None and isinstance(
                            origin.node, ast.Lambda):
                        yield self.finding(
                            module, arg,
                            f"{arg.id!r} is bound to a lambda and flows "
                            f"into a worker-executed path{through}; "
                            "multiprocessing cannot pickle it — use a "
                            "module-level function",
                        )

    @staticmethod
    def _worker_bound_args(
            node: ast.Call,
            module: "ModuleInfo | None" = None) -> "list[ast.expr] | None":
        """The argument expressions of ``node`` that reach workers, or
        None when the call is not a worker dispatch point."""
        func = node.func
        is_run_batch = (
            (isinstance(func, ast.Name) and func.id == "run_batch")
            or (isinstance(func, ast.Attribute) and func.attr == "run_batch"))
        if not is_run_batch and module is not None:
            # flow hop: ``from repro.api import run_batch as rb; rb(...)``
            target = module.flow.call_target(node)
            is_run_batch = target is not None and (
                target == "run_batch" or target.endswith(".run_batch"))
        if is_run_batch:
            return list(node.args) + [
                kw.value for kw in node.keywords
                if kw.arg not in _PARENT_SIDE_KWARGS
            ]
        if isinstance(func, ast.Attribute) and _pool_receiver(func):
            return list(node.args) + [kw.value for kw in node.keywords]
        return None

    def _wrapper_forwarded_args(
            self, module: ModuleInfo,
            node: ast.Call) -> "tuple[list[ast.expr] | None, str | None]":
        """Arguments of ``node`` that land on parameters its (project-
        resolved) callee forwards into a worker dispatch point."""
        sym = None if self.project is None else self.project.called_function(
            module, node)
        if sym is None:
            return None, None
        forwarded = self._forwarded_params(sym)
        if not forwarded:
            return None, None
        params = sym.params
        out: list[ast.expr] = []
        for i, arg in enumerate(node.args):
            if i < len(params) and params[i] in forwarded:
                out.append(arg)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in forwarded:
                out.append(kw.value)
        return (out, sym.canonical) if out else (None, None)

    def _forwarded_params(self, sym: FunctionSymbol) -> set[str]:
        cached = self._forwarding.get(sym.canonical)
        if cached is not None:
            return cached
        params = set(sym.params)
        forwarded: set[str] = set()
        for call in ast.walk(sym.node):
            if not isinstance(call, ast.Call):
                continue
            wargs = self._worker_bound_args(call, sym.module)
            if wargs is None:
                continue
            for a in wargs:
                if isinstance(a, ast.Name) and a.id in params:
                    forwarded.add(a.id)
        self._forwarding[sym.canonical] = forwarded
        return forwarded


@register
class WorkerGlobalMutationRule(Rule):
    id = "PICK002"
    name = "worker-global-mutation"
    rationale = (
        "a module-level global rebound inside a function mutates only the "
        "current process's copy; under run_batch fan-out the parent never "
        "observes worker-side writes, so results silently diverge from "
        "the serial path"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    module, node,
                    f"function rebinds module global(s) "
                    f"{', '.join(node.names)}; worker processes each mutate "
                    "their own copy — pass state explicitly or keep a "
                    "per-process memo passed as a parameter",
                )
