"""Pickle / multiprocess-safety rules (PICK).

``run_batch(specs, workers=N)`` pickles work items into a
``multiprocessing`` pool.  Lambdas, closures, and locally-defined
functions/classes do not pickle; and module-level globals mutated inside a
worker mutate the *worker's* copy only, so the parent silently never sees
the write.  Both failure modes surface far from their cause (or not at
all), which makes them lint material.

``run_batch``'s ``progress=`` and ``cache=`` keywords are exempt from
PICK001: both are documented parent-side-only (workers never receive
them), so closures there are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleInfo, Rule, register

#: pool fan-out methods whose first argument is shipped to workers
_POOL_METHODS = {"imap", "imap_unordered", "map_async", "starmap",
                 "starmap_async", "apply", "apply_async"}
#: ``.map``/``.submit`` are common enough to need a pool-ish receiver name
_POOL_METHODS_GUARDED = {"map", "submit"}
#: run_batch kwargs that stay in the parent process
_PARENT_SIDE_KWARGS = {"progress", "cache"}


def _pool_receiver(func: ast.Attribute) -> bool:
    if func.attr in _POOL_METHODS:
        return True
    if func.attr in _POOL_METHODS_GUARDED:
        recv = func.value
        name = recv.id if isinstance(recv, ast.Name) else (
            recv.attr if isinstance(recv, ast.Attribute) else "")
        low = name.lower()
        return "pool" in low or "executor" in low
    return False


def _local_defs(scope: ast.AST) -> set[str]:
    """Function/class names defined directly inside a function scope
    (nested defs — unpicklable by reference)."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


@register
class UnpicklableWorkerArgRule(Rule):
    id = "PICK001"
    name = "unpicklable-worker-callable"
    rationale = (
        "lambdas and locally-defined functions/classes cannot be pickled "
        "into multiprocessing workers; run_batch and pool fan-out need "
        "module-level callables and plain-data specs"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # map each call to its innermost enclosing function's local defs
        scopes: list[tuple[ast.AST, set[str]]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, _local_defs(node)))

        def locals_for(call: ast.Call) -> set[str]:
            best: set[str] = set()
            best_span = None
            for scope, names in scopes:
                if (scope.lineno <= call.lineno
                        and call.lineno <= (scope.end_lineno or scope.lineno)):
                    span = (scope.end_lineno or scope.lineno) - scope.lineno
                    if best_span is None or span < best_span:
                        best, best_span = names, span
            return best

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            worker_args = self._worker_bound_args(node)
            if worker_args is None:
                continue
            local_names = locals_for(node)
            for arg in worker_args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        module, arg,
                        "lambda flows into a worker-executed path; "
                        "multiprocessing cannot pickle it — use a "
                        "module-level function",
                    )
                elif isinstance(arg, ast.Name) and arg.id in local_names:
                    yield self.finding(
                        module, arg,
                        f"locally-defined {arg.id!r} flows into a "
                        "worker-executed path; nested functions/classes do "
                        "not pickle — define it at module level",
                    )

    @staticmethod
    def _worker_bound_args(node: ast.Call) -> "list[ast.expr] | None":
        """The argument expressions of ``node`` that reach workers, or
        None when the call is not a worker dispatch point."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "run_batch":
            return list(node.args) + [
                kw.value for kw in node.keywords
                if kw.arg not in _PARENT_SIDE_KWARGS
            ]
        if isinstance(func, ast.Attribute):
            if func.attr == "run_batch":
                return list(node.args) + [
                    kw.value for kw in node.keywords
                    if kw.arg not in _PARENT_SIDE_KWARGS
                ]
            if _pool_receiver(func):
                return list(node.args) + [kw.value for kw in node.keywords]
        return None


@register
class WorkerGlobalMutationRule(Rule):
    id = "PICK002"
    name = "worker-global-mutation"
    rationale = (
        "a module-level global rebound inside a function mutates only the "
        "current process's copy; under run_batch fan-out the parent never "
        "observes worker-side writes, so results silently diverge from "
        "the serial path"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    module, node,
                    f"function rebinds module global(s) "
                    f"{', '.join(node.names)}; worker processes each mutate "
                    "their own copy — pass state explicitly or keep a "
                    "per-process memo passed as a parameter",
                )
