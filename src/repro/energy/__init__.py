"""Component-level energy model (GPUWattch-flavoured, section V)."""

from repro.energy.model import EnergyBreakdown, compute_energy

__all__ = ["EnergyBreakdown", "compute_energy"]
