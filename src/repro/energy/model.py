"""Energy accounting per architecture (reproduces Fig. 4's structure).

Each run's energy is assembled from event counts collected by the
simulator:

* **core dynamic** - pipeline + register file per executed instruction,
  I-cache per fetch (per core-instruction in MIMD, per *warp* instruction
  in SIMT - GPGPU's structural advantage), and the architecture-specific
  live-state storage (scratchpad for Millipede, L1D for SSMC/multicore,
  banked shared memory + crossbar for GPGPU - its structural *dis*advantage).
* **idle dynamic** - imperfect clock gating charged per idle cycle; this
  is the component Millipede's rate-matching recovers and the component
  SIMT divergence inflates on the GPGPU.
* **DRAM** - 6 pJ/bit transferred (70 pJ/bit for the multicore's off-chip
  channel) plus a per-activation charge, so poor row locality (SSMC) costs
  energy even when latency hides it - the paper's PCA/GDA observation.
* **leakage** - static power x runtime; "Millipede incurs the least static
  energy due to its shortest run time".

All constants live in :class:`repro.config.EnergyConfig`; only relative
magnitudes matter for the paper's claims, and the defaults follow the
standard ordering DRAM >> SRAM > regfile/ALU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.engine.stats import Stats

PS_PER_S = 1e12
PJ_PER_J = 1e12


@dataclass
class EnergyBreakdown:
    """Joules per component (Fig. 4's stacked bars)."""

    core_dynamic_j: float
    idle_j: float
    dram_j: float
    leakage_j: float

    @property
    def core_j(self) -> float:
        """Fig. 4's "core energy" bar = dynamic + idle dynamic."""
        return self.core_dynamic_j + self.idle_j

    @property
    def total_j(self) -> float:
        return self.core_dynamic_j + self.idle_j + self.dram_j + self.leakage_j

    def as_dict(self) -> dict[str, float]:
        return {
            "core_dynamic_j": self.core_dynamic_j,
            "idle_j": self.idle_j,
            "dram_j": self.dram_j,
            "leakage_j": self.leakage_j,
            "core_j": self.core_j,
            "total_j": self.total_j,
        }


def _dram_energy_j(cfg: SystemConfig, stats: Stats, prefix: str, pj_per_bit: float) -> float:
    bits = stats.get(f"{prefix}.words_transferred") * 32
    activations = stats.get(f"{prefix}.activations")
    return (bits * pj_per_bit + activations * cfg.dram.activate_pj) / PJ_PER_J


def compute_energy(arch: str, cfg: SystemConfig, stats: Stats,
                   collected: dict[str, float]) -> EnergyBreakdown:
    """Assemble the per-run energy breakdown for architecture ``arch``
    (one of the driver's architecture keys)."""
    e = cfg.energy
    instructions = collected.get("instructions", 0.0)
    idle_cycles = collected.get("idle_cycles", 0.0)
    finish_ps = collected.get("finish_ps", 0.0)
    runtime_s = finish_ps / PS_PER_S

    per_instr = e.alu_op_pj + e.regfile_pj
    core_mult = 1.0
    n_cores = cfg.core.n_cores

    if arch.startswith("multicore"):
        core_mult = cfg.multicore.core_energy_multiplier
        n_cores = cfg.multicore.n_cores

    core_pj = instructions * per_instr * core_mult
    core_pj += collected.get("icache_fetches", 0.0) * e.icache_access_pj

    # live-state / input-path storage energy, by architecture
    if "shared_mem_accesses" in collected:  # GPGPU / VWS family
        core_pj += collected["shared_mem_accesses"] * (
            e.shared_mem_pj + e.shared_mem_crossbar_pj
        )
        core_pj += collected.get("l1d_accesses", 0.0) * e.l1d_access_pj
        if "l1d_accesses" not in collected:
            # VWS-row: input words come from prefetch-buffer slabs
            core_pj += (
                stats.get("pb.hits") + stats.get("pb.fill_waits")
                + stats.get("pb.evicted_misses")
            ) * e.prefetch_buffer_pj
    elif "local_accesses" in collected:  # Millipede
        core_pj += collected["local_accesses"] * e.local_mem_pj
        core_pj += (
            stats.get("pb.hits") + stats.get("pb.fill_waits")
            + stats.get("pb.evicted_misses")
        ) * e.prefetch_buffer_pj
    else:  # SSMC / multicore: everything through the L1D
        core_pj += collected.get("l1d_accesses", 0.0) * e.l1d_access_pj

    idle_pj = idle_cycles * e.idle_cycle_pj

    prefix = "offchip" if f"offchip.requests" in stats.as_dict() else "dram"
    pj_bit = (
        cfg.multicore.offchip_pj_per_bit if prefix == "offchip"
        else cfg.dram.access_pj_per_bit
    )
    dram_j = _dram_energy_j(cfg, stats, prefix, pj_bit)

    leakage_j = e.leakage_w_per_core * n_cores * runtime_s

    return EnergyBreakdown(
        core_dynamic_j=core_pj / PJ_PER_J,
        idle_j=idle_pj / PJ_PER_J,
        dram_j=dram_j,
        leakage_j=leakage_j,
    )
