"""Global-memory backing store.

The die-stacked DRAM holds *real data* (a ``numpy`` float64 word array), so
the full simulation stack is end-to-end checkable: a workload's simulated
reduction must match its golden NumPy implementation bit-for-bit on integer
counters and to float tolerance on accumulators.

Words are 4 bytes for bandwidth accounting (the paper's record fields are
4-byte ints) but stored as float64 so fractional coordinates survive; the
energy/bandwidth model always charges ``WORD_BYTES`` per word.
"""

from __future__ import annotations

import numpy as np

from repro.config import WORD_BYTES


class GlobalMemory:
    """Word-addressed dataset storage.

    >>> m = GlobalMemory(8)
    >>> m.write_word(3, 2.5)
    >>> m.read_word(3)
    2.5
    """

    def __init__(self, n_words: int):
        if n_words <= 0:
            raise ValueError(f"memory size must be positive, got {n_words}")
        self.n_words = int(n_words)
        self.data = np.zeros(self.n_words, dtype=np.float64)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "GlobalMemory":
        """Wrap a 1-D array as the memory image (the host-CPU copy-in of
        section IV-E)."""
        mem = cls(len(arr))
        mem.data[:] = np.asarray(arr, dtype=np.float64)
        return mem

    @property
    def n_bytes(self) -> int:
        return self.n_words * WORD_BYTES

    def read_word(self, addr: int) -> float:
        if not 0 <= addr < self.n_words:
            raise IndexError(f"global read out of range: {addr} (size {self.n_words})")
        return float(self.data[addr])

    def write_word(self, addr: int, value: float) -> None:
        if not 0 <= addr < self.n_words:
            raise IndexError(f"global write out of range: {addr} (size {self.n_words})")
        self.data[addr] = value

    def read_block(self, addr: int, n_words: int) -> np.ndarray:
        """Bulk read (used by prefetch fills); returns a *view*."""
        if addr < 0 or addr + n_words > self.n_words:
            raise IndexError(f"block read out of range: [{addr}, {addr + n_words})")
        return self.data[addr : addr + n_words]
