"""DRAM timing parameters converted to picoseconds."""

from __future__ import annotations

import math

from repro.config import DramConfig
from repro.engine.clock import period_ps


class DramTiming:
    """Precomputed picosecond timings for one channel configuration.

    >>> from repro.config import DramConfig
    >>> t = DramTiming(DramConfig())
    >>> t.t_cas_ps == 9 * t.channel_period_ps
    True
    """

    def __init__(self, cfg: DramConfig):
        self.cfg = cfg
        self.channel_period_ps = period_ps(cfg.channel_clock_hz)
        self.t_cas_ps = cfg.t_cas * self.channel_period_ps
        self.t_rp_ps = cfg.t_rp * self.channel_period_ps
        self.t_rcd_ps = cfg.t_rcd * self.channel_period_ps
        self.t_ras_ps = cfg.t_ras * self.channel_period_ps
        self.t_rcd_cas_ps = self.t_rcd_ps + self.t_cas_ps

    def hit_ready_ps(self, arrival_ps: int, act_ps: int) -> int:
        """CAS-complete time of a row hit: tCAS after the request could
        first be issued (its arrival, or the row finishing activation)."""
        issue = act_ps + self.t_rcd_ps
        if arrival_ps > issue:
            issue = arrival_ps
        return issue + self.t_cas_ps

    def activate_start_ps(self, now: int, busy_until_ps: int, act_ps: int,
                          row_open: bool) -> int:
        """Earliest activate start on a bank: after ``now``, the bank
        freeing, and tRAS since the previous activate — plus a precharge
        when a row is open."""
        start = now
        if busy_until_ps > start:
            start = busy_until_ps
        ras = act_ps + self.t_ras_ps
        if ras > start:
            start = ras
        return start + self.t_rp_ps if row_open else start

    def transfer_ps(self, n_bytes: int) -> int:
        """Data-bus occupancy of an ``n_bytes`` burst."""
        cycles = math.ceil(n_bytes / self.cfg.channel_bytes_per_cycle)
        return cycles * self.channel_period_ps

    @property
    def row_miss_overhead_ps(self) -> int:
        """Extra latency of a row miss over a row hit (precharge+activate)."""
        return self.t_rp_ps + self.t_rcd_ps
