"""Word address -> (bank, row, column) mapping.

Consecutive DRAM rows are interleaved round-robin across banks so that a
sequential row-dense stream (the BMLA access pattern) naturally exposes
bank-level parallelism - the activation of row *k+1* in the next bank can
overlap the data transfer of row *k*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig, WORD_BYTES


@dataclass(frozen=True)
class DramLocation:
    bank: int
    row: int
    col: int  #: word offset within the row


class AddressMapper:
    """Pure-function mapper; shared by the controller and the prefetchers.

    >>> from repro.config import DramConfig
    >>> m = AddressMapper(DramConfig())
    >>> m.locate(0)
    DramLocation(bank=0, row=0, col=0)
    >>> m.locate(512).bank   # next row -> next bank
    1
    """

    def __init__(self, cfg: DramConfig):
        self.row_words = cfg.row_bytes // WORD_BYTES
        self.n_banks = cfg.banks_per_channel

    def locate(self, word_addr: int) -> DramLocation:
        row_index = word_addr // self.row_words
        return DramLocation(
            bank=row_index % self.n_banks,
            row=row_index // self.n_banks,
            col=word_addr % self.row_words,
        )

    def word_addr(self, loc: DramLocation) -> int:
        """Inverse of :meth:`locate`: the word address of ``loc``.

        >>> from repro.config import DramConfig
        >>> m = AddressMapper(DramConfig())
        >>> m.word_addr(m.locate(123457))
        123457
        """
        if not 0 <= loc.bank < self.n_banks:
            raise ValueError(f"bank {loc.bank} outside [0, {self.n_banks})")
        if not 0 <= loc.col < self.row_words:
            raise ValueError(f"column {loc.col} outside [0, {self.row_words})")
        if loc.row < 0:
            raise ValueError(f"negative row {loc.row}")
        return (loc.row * self.n_banks + loc.bank) * self.row_words + loc.col

    def global_row_index(self, word_addr: int) -> int:
        """Sequential row number (bank-agnostic), used by row prefetchers."""
        return word_addr // self.row_words

    def row_base_addr(self, global_row: int) -> int:
        """First word address of sequential row ``global_row``."""
        return global_row * self.row_words

    def same_row(self, a: int, b: int) -> bool:
        return a // self.row_words == b // self.row_words
