"""Die-stacked DRAM model: banks, rows, FR-FCFS controller, backing store.

Timing follows the paper's Table III: tCAS-tRP-tRCD-tRAS = 9-9-9-27 channel
cycles at 1.2 GHz, 2 KB rows, 4 banks per channel, a 16-deep FR-FCFS
controller, and 6 pJ/bit access energy.  The model is event-driven: bank
activations overlap the shared data bus, row hits are preferred by the
scheduler, and every request carries its real data (the backing store is a
NumPy array) so simulated reductions can be validated against golden
results.
"""

from repro.dram.address import AddressMapper, DramLocation
from repro.dram.timing import DramTiming
from repro.dram.dram import GlobalMemory
from repro.dram.controller import MemoryController, DramRequest

__all__ = [
    "AddressMapper",
    "DramLocation",
    "DramTiming",
    "GlobalMemory",
    "MemoryController",
    "DramRequest",
]
