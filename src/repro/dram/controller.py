"""FR-FCFS memory controller for one die-stacked channel.

Model
-----
* One shared data bus per channel; one request in transfer at a time.
* Per-bank row-buffer state with tRP/tRCD/tRAS constraints; activations
  proceed in parallel with transfers on other banks (bank-level
  parallelism), which is what makes a sequential row-dense stream achieve
  near-peak bandwidth.
* Scheduling is first-ready-first-come-first-served: at each scheduling
  point every free bank is assigned its best queued request (row hits
  preferred, then oldest, considering only the ``queue_depth`` oldest
  requests - the FR-FCFS window); the data bus is granted to the pending
  request that can start earliest, tie-broken by age, with an explicit
  anti-starvation age threshold.

Statistics feed the paper's Table IV ("row miss rate" = fraction of
requests that needed an activation) and Fig. 4's DRAM energy.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import DramConfig, WORD_BYTES
from repro.dram.address import AddressMapper
from repro.dram.timing import DramTiming
from repro.engine.events import Engine
from repro.engine.stats import Stats

#: a request older than this is always served next (anti-starvation)
_STARVATION_PS = 3_000_000


_REQ_SEQ = [0]


class DramRequest:
    """One burst read/write of ``n_words`` consecutive words."""

    __slots__ = ("addr", "n_words", "arrival_ps", "callback", "is_write",
                 "bank", "row", "data_ready_ps", "tag", "seq")

    def __init__(self, addr: int, n_words: int, arrival_ps: int,
                 callback: Optional[Callable[["DramRequest"], None]],
                 is_write: bool = False, tag: object = None):
        _REQ_SEQ[0] += 1
        self.seq = _REQ_SEQ[0]  # issue order, breaks equal-arrival ties
        self.addr = addr
        self.n_words = n_words
        self.arrival_ps = arrival_ps
        self.callback = callback
        self.is_write = is_write
        self.bank = -1
        self.row = -1
        self.data_ready_ps = 0  # earliest CAS-complete time once assigned
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DramRequest @{self.addr} x{self.n_words}w bank={self.bank} row={self.row}>"


class _Bank:
    __slots__ = ("open_row", "act_ps", "busy_until_ps", "pending")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.act_ps = 0          # when the open row was activated
        self.busy_until_ps = 0   # bank unavailable before this time
        self.pending: Optional[DramRequest] = None


class MemoryController:
    """One channel's FR-FCFS controller + the channel's banks."""

    def __init__(self, engine: Engine, cfg: DramConfig, stats: Stats, name: str = "dram"):
        self.engine = engine
        self.cfg = cfg
        self.timing = DramTiming(cfg)
        self.mapper = AddressMapper(cfg)
        self.stats = stats.scoped(name)
        self.banks = [_Bank() for _ in range(cfg.banks_per_channel)]
        self.queue: list[DramRequest] = []
        self.bus_free_ps = 0
        self._scheduled_kicks: set[int] = set()
        #: per-epoch candidate buckets (hits, misses, starved), set by
        #: ``_kick`` from one batched window scan; None outside an epoch
        self._window: Optional[tuple[list, list, list]] = None
        #: optional scheduling observer (:mod:`repro.sanitize`); receives
        #: ``on_bank_assign`` / ``on_bus_grant`` / ``on_complete`` events
        #: with enough pre-mutation state to re-derive timing legality.
        #: Must not mutate state.
        self.observer = None

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def access(self, addr: int, n_words: int,
               callback: Optional[Callable[[DramRequest], None]] = None,
               is_write: bool = False, tag: object = None) -> DramRequest:
        """Enqueue a burst request at the current engine time.

        A request must not straddle a row boundary - callers split at rows
        (cache blocks and prefetch rows both satisfy this by construction).
        """
        loc = self.mapper.locate(addr)
        end_loc = self.mapper.locate(addr + n_words - 1)
        if (loc.bank, loc.row) != (end_loc.bank, end_loc.row):
            raise ValueError(
                f"request [{addr}, {addr + n_words}) straddles a row boundary"
            )
        req = DramRequest(addr, n_words, self.engine.now, callback, is_write, tag)
        req.bank, req.row = loc.bank, loc.row
        self.queue.append(req)
        self.stats.inc("requests")
        self.stats.inc("words_requested", n_words)
        # defer scheduling to a same-timestamp event so every request that
        # arrives "this cycle" is visible before any binding decision
        self._request_kick(self.engine.now)
        return req

    @property
    def busy(self) -> bool:
        return bool(self.queue) or any(b.pending for b in self.banks)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _bank_candidates(self, bank_id: int, open_row: Optional[int]):
        """(hits, best_miss) for ``bank_id`` within the FR-FCFS window."""
        window = self.queue[: self.cfg.controller_queue_depth]
        now = self.engine.now
        best_hit: Optional[DramRequest] = None
        best_miss: Optional[DramRequest] = None
        starved: Optional[DramRequest] = None
        for req in window:
            if req.bank != bank_id:
                continue
            if now - req.arrival_ps > _STARVATION_PS:
                if starved is None or req.seq < starved.seq:
                    starved = req
            if req.row == open_row:
                if best_hit is None or req.seq < best_hit.seq:
                    best_hit = req
            elif best_miss is None or req.seq < best_miss.seq:
                best_miss = req
        return best_hit, best_miss, starved

    def _scan_window(self) -> tuple[list, list, list]:
        """One batched pass over the FR-FCFS window, bucketing every
        bank's candidates at once: ``(hits, misses, starved)``, each a
        per-bank list holding the lowest-seq matching request (the queue
        is in seq order, so the first match wins).  Replaces the per-bank
        re-scan of :meth:`_bank_candidates` at epoch scheduling points —
        O(window + banks) instead of O(banks × window) — and is kept
        decision-identical by :meth:`_admit_to_window` as assignments
        shift the window."""
        banks = self.banks
        now = self.engine.now
        n = len(banks)
        hits: list[Optional[DramRequest]] = [None] * n
        misses: list[Optional[DramRequest]] = [None] * n
        starved: list[Optional[DramRequest]] = [None] * n
        for req in self.queue[: self.cfg.controller_queue_depth]:
            b = req.bank
            if now - req.arrival_ps > _STARVATION_PS and starved[b] is None:
                starved[b] = req
            if req.row == banks[b].open_row:
                if hits[b] is None:
                    hits[b] = req
            elif misses[b] is None:
                misses[b] = req
        return hits, misses, starved

    def _admit_to_window(self, window: tuple[list, list, list]) -> None:
        """Account for a removal shifting the FR-FCFS window: the request
        newly exposed at the window's tail has the *highest* seq inside
        it, so it can only fill empty candidate slots — admitting it this
        way reproduces a full re-scan exactly.  A bank that already has a
        pending request is skipped: its candidate slots are never
        consulted again within this epoch."""
        depth = self.cfg.controller_queue_depth
        if len(self.queue) < depth:
            return
        req = self.queue[depth - 1]
        b = req.bank
        bank = self.banks[b]
        if bank.pending is not None:
            return
        hits, misses, starved = window
        if (self.engine.now - req.arrival_ps > _STARVATION_PS
                and starved[b] is None):
            starved[b] = req
        if req.row == bank.open_row:
            if hits[b] is None:
                hits[b] = req
        elif misses[b] is None:
            misses[b] = req

    def _assign_banks(self) -> None:
        """Pre-activate a row miss on every idle bank that has no queued
        row hit left (FR-FCFS: drain hits to the open row before closing
        it).  The activation overlaps other banks' data transfers."""
        now = self.engine.now
        t = self.timing
        obs = self.observer
        window = self._window
        if window is None:  # standalone call outside an epoch kick
            window = self._scan_window()
        hits, misses, starved_by_bank = window
        for bank_id, bank in enumerate(self.banks):
            if bank.pending is not None:
                continue
            best_hit = hits[bank_id]
            starved = starved_by_bank[bank_id]
            req = None
            if starved is not None and starved is not best_hit:
                req = starved  # anti-starvation overrides hit-first
            elif best_hit is None:
                req = misses[bank_id]
            if req is None:
                continue
            window_idx = self.queue.index(req) if obs is not None else -1
            prev_open, prev_act = bank.open_row, bank.act_ps
            self.queue.remove(req)
            bank.pending = req
            self.stats.inc("row_misses")
            self.stats.inc("activations")
            self.stats.inc("row_accesses")
            act_start = t.activate_start_ps(now, bank.busy_until_ps,
                                            bank.act_ps,
                                            bank.open_row is not None)
            bank.open_row = req.row
            bank.act_ps = act_start
            req.data_ready_ps = act_start + t.t_rcd_cas_ps
            if obs is not None:
                obs.on_bank_assign(bank_id, bank, req, window_idx,
                                   prev_open, prev_act, now)
            self._admit_to_window(window)

    def _grant_bus(self) -> Optional[int]:
        """Start the best transfer if the bus is free; returns the transfer
        completion time (ps) or None.  Candidates are each bank's bound
        (activated) request or its oldest row hit."""
        now = self.engine.now
        if self.bus_free_ps > now:
            return self.bus_free_ps
        t = self.timing
        window = self._window
        hits = window[0] if window is not None else None
        best_req: Optional[DramRequest] = None
        best_key = None
        best_bound = False
        for bank_id, bank in enumerate(self.banks):
            if bank.pending is not None:
                req, bound = bank.pending, True
                ready = req.data_ready_ps
            else:
                if hits is not None:
                    hit = hits[bank_id]
                else:  # standalone call outside an epoch kick
                    hit, _, _ = self._bank_candidates(bank_id, bank.open_row)
                if hit is None:
                    continue
                req, bound = hit, False
                # CAS commands pipeline under in-flight transfers: a hit's
                # data is ready tCAS after the request could first be
                # issued (arrival, or the row becoming open), NOT tCAS
                # after the previous transfer drains
                ready = t.hit_ready_ps(req.arrival_ps, bank.act_ps)
            key = (max(now, ready), req.seq)
            if best_req is None or key < best_key:
                best_req, best_key, best_bound = req, key, bound
                best_req.data_ready_ps = ready
        if best_req is None:
            return None
        req = best_req
        bank = self.banks[req.bank]
        if best_bound:
            bank.pending = None
        else:
            self.queue.remove(req)
            self.stats.inc("row_hits")
            self.stats.inc("row_accesses")
        data_start = max(now, req.data_ready_ps)
        end = data_start + self.timing.transfer_ps(req.n_words * WORD_BYTES)
        prev_bus_free = self.bus_free_ps
        self.bus_free_ps = end
        bank.busy_until_ps = end
        if self.observer is not None:
            self.observer.on_bus_grant(req, bank, data_start, end,
                                       prev_bus_free, best_bound)
        self.stats.inc("words_transferred", req.n_words)
        self.stats.inc("bus_busy_ps", end - data_start)
        self.engine.schedule_at(end, self._complete, req)
        return end

    def _complete(self, req: DramRequest) -> None:
        self.stats.inc("completed")
        if self.observer is not None:
            self.observer.on_complete(req)
        if req.callback is not None:
            req.callback(req)
        self._kick()

    def _request_kick(self, at_ps: int) -> None:
        if at_ps not in self._scheduled_kicks:
            self._scheduled_kicks.add(at_ps)
            self.engine.schedule_at(at_ps, self._epoch_kick, at_ps)

    def _epoch_kick(self, at_ps: int) -> None:
        # named so the host profiler (which keys event classes by callback
        # __qualname__) attributes batched-epoch scheduling work to
        # ``MemoryController._epoch_kick`` — see docs/backends.md
        self._scheduled_kicks.discard(at_ps)
        self._kick()

    def _kick(self) -> None:
        """Epoch scheduling point: one batched window scan feeds both the
        bank-assignment and bus-grant decisions, then arrange the next
        scheduling point.  All decisions inside the epoch happen at one
        timestamp (requests arriving later always land at or after the
        completion event that re-kicks), so the scan stays valid for the
        whole pass as long as removals admit the shifted window tail."""
        self._window = self._scan_window()
        self._assign_banks()
        end = self._grant_bus()
        self._window = None
        if end is None:
            # bus idle and nothing pending: next kick happens on arrival
            return
        if end > self.engine.now:
            # re-evaluate when the bus frees (completion also kicks, but a
            # direct kick is needed when _grant_bus declined due to busy bus)
            self._request_kick(end)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def row_miss_rate(self) -> float:
        """Row misses / row accesses - the paper's Table IV column 4."""
        total = self.stats.get("row_accesses")
        return self.stats.get("row_misses") / total if total else 0.0
