"""Discrete-event simulation kernel used by every architecture model.

The engine advances integer picosecond time through a binary heap of events.
Components (corelets, SMs, memory controllers) run *inline* between their
interactions with shared state, and touch shared state only through events
scheduled at their local timestamps; heap ordering therefore preserves
causality across components even though each runs ahead in its own local
time between synchronization points.
"""

from repro.engine.events import Engine, Event
from repro.engine.clock import Clock, PS_PER_SECOND
from repro.engine.observer import ObserverChain, attach_observer, detach_observer
from repro.engine.stats import Stats

__all__ = [
    "Engine",
    "Event",
    "Clock",
    "ObserverChain",
    "Stats",
    "PS_PER_SECOND",
    "attach_observer",
    "detach_observer",
]
