"""Hierarchical statistics registry.

Every simulated component increments named counters on a shared
:class:`Stats` object; the experiment harness reads them to produce the
paper's tables (e.g. Table IV's "SSMC row miss rate" is
``dram.row_misses / dram.row_accesses``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class Stats:
    """A flat namespace of counters with dotted names.

    >>> s = Stats()
    >>> s.inc("dram.row_hits")
    >>> s.inc("dram.row_hits", 2)
    >>> s["dram.row_hits"]
    3
    >>> s.ratio("dram.row_hits", "dram.row_hits")
    1.0
    """

    def __init__(self) -> None:
        self._counters: defaultdict[str, float] = defaultdict(float)

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def ratio(self, num: str, den: str) -> float:
        """``num / den`` counter ratio, 0.0 when the denominator is 0."""
        d = self._counters.get(den, 0.0)
        return self._counters.get(num, 0.0) / d if d else 0.0

    def scoped(self, prefix: str) -> "ScopedStats":
        """A view that prepends ``prefix.`` to every counter name."""
        return ScopedStats(self, prefix)

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose dotted name starts with ``prefix.``."""
        p = prefix + "."
        return {k: v for k, v in self._counters.items() if k.startswith(p)}

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def as_dict(self) -> dict[str, float]:
        return dict(self._counters)

    def merge(self, other: "Stats") -> None:
        """Add every counter of ``other`` into this registry."""
        for k, v in other._counters.items():
            self._counters[k] += v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stats {len(self._counters)} counters>"


class ScopedStats:
    """Prefix-applying proxy so a component can write ``inc("hits")`` and
    land on ``"l1d.hits"``."""

    __slots__ = ("_stats", "_prefix")

    def __init__(self, stats: Stats, prefix: str):
        self._stats = stats
        self._prefix = prefix

    def inc(self, name: str, amount: float = 1) -> None:
        self._stats.inc(f"{self._prefix}.{name}", amount)

    def set(self, name: str, value: float) -> None:
        self._stats.set(f"{self._prefix}.{name}", value)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._stats.get(f"{self._prefix}.{name}", default)

    def __getitem__(self, name: str) -> float:
        return self._stats[f"{self._prefix}.{name}"]
