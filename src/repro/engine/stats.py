"""Hierarchical statistics registry.

Every simulated component increments named counters on a shared
:class:`Stats` object; the experiment harness reads them to produce the
paper's tables (e.g. Table IV's "SSMC row miss rate" is
``dram.row_misses / dram.row_accesses``).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterator


class Stats:
    """A flat namespace of counters with dotted names.

    >>> s = Stats()
    >>> s.inc("dram.row_hits")
    >>> s.inc("dram.row_hits", 2)
    >>> s["dram.row_hits"]
    3
    >>> s.ratio("dram.row_hits", "dram.row_hits")
    1.0
    """

    def __init__(self) -> None:
        self._counters: defaultdict[str, float] = defaultdict(float)
        #: names written via :meth:`set` - point-in-time gauges (final
        #: frequency, finish timestamp) that must not be summed on merge
        self._gauges: set[str] = set()

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Write ``name`` as a *gauge*: a point-in-time value rather than
        an accumulating count.  Gauges keep last-write semantics under
        :meth:`merge` instead of being summed."""
        self._counters[name] = value
        self._gauges.add(name)

    def is_gauge(self, name: str) -> bool:
        return name in self._gauges

    def gauges(self) -> set[str]:
        """Names with gauge (last-write) merge semantics."""
        return set(self._gauges)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def ratio(self, num: str, den: str) -> float:
        """``num / den`` counter ratio; 0.0 when the denominator is zero,
        missing, or non-finite (a NaN counter must not poison reports).

        >>> s = Stats()
        >>> s.ratio("missing", "also_missing")
        0.0
        >>> s.set("bad", float("nan"))
        >>> s.ratio("bad", "bad")
        0.0
        """
        d = self._counters.get(den, 0.0)
        n = self._counters.get(num, 0.0)
        if not d or not math.isfinite(d) or not math.isfinite(n):
            return 0.0
        return n / d

    def scoped(self, prefix: str) -> "ScopedStats":
        """A view that prepends ``prefix.`` to every counter name."""
        return ScopedStats(self, prefix)

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose dotted name starts with ``prefix.``."""
        p = prefix + "."
        return {k: v for k, v in self._counters.items() if k.startswith(p)}

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def as_dict(self) -> dict[str, float]:
        return dict(self._counters)

    @classmethod
    def from_dict(cls, counters: dict[str, float],
                  gauges: "set[str] | tuple[str, ...]" = ()) -> "Stats":
        """Rebuild a registry from :meth:`as_dict` output (e.g. the
        ``stats`` field of a deserialized :class:`RunResult`).  Pass the
        original registry's :meth:`gauges` to preserve last-write merge
        semantics across the round trip."""
        s = cls()
        for k, v in counters.items():
            s._counters[k] = v
        s._gauges.update(gauges)
        return s

    def sorted_dump(self) -> str:
        """Canonical text form: one ``name value`` line per counter, in
        sorted name order, with ``repr`` floats.  Equal registries always
        dump byte-identically regardless of counter insertion order, so
        this is what the determinism regression compares.

        >>> a, b = Stats(), Stats()
        >>> a.inc("x"); a.inc("y", 2.5)
        >>> b.inc("y", 2.5); b.inc("x")
        >>> a.sorted_dump() == b.sorted_dump()
        True
        """
        return "\n".join(f"{k} {v!r}" for k, v in sorted(self._counters.items()))

    def merge(self, other: "Stats") -> None:
        """Fold ``other`` into this registry: counters add, gauges take
        the incoming value (last write wins).  Summing gauge-style values
        written via :meth:`set` (e.g. final/mean DFS frequencies) would
        double-count them on aggregation.

        >>> a, b = Stats(), Stats()
        >>> a.inc("events", 3); b.inc("events", 2)
        >>> a.set("final_hz", 650e6); b.set("final_hz", 700e6)
        >>> a.merge(b)
        >>> a["events"], a["final_hz"]
        (5.0, 700000000.0)
        """
        for k, v in other._counters.items():
            if k in other._gauges or k in self._gauges:
                self._counters[k] = v
                self._gauges.add(k)
            else:
                self._counters[k] += v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stats {len(self._counters)} counters>"


class ScopedStats:
    """Prefix-applying proxy so a component can write ``inc("hits")`` and
    land on ``"l1d.hits"``."""

    __slots__ = ("_stats", "_prefix")

    def __init__(self, stats: Stats, prefix: str):
        self._stats = stats
        self._prefix = prefix

    # ScopedStats is the sanctioned prefixing mechanism: the prefix is
    # fixed at construction and callers pass literal names, so the
    # composed keys are deterministic even though they are not literals
    def inc(self, name: str, amount: float = 1) -> None:
        self._stats.inc(f"{self._prefix}.{name}", amount)  # repro-lint: disable=STAT002

    def set(self, name: str, value: float) -> None:
        self._stats.set(f"{self._prefix}.{name}", value)  # repro-lint: disable=STAT002

    def get(self, name: str, default: float = 0.0) -> float:
        return self._stats.get(f"{self._prefix}.{name}", default)

    def __getitem__(self, name: str) -> float:
        return self._stats[f"{self._prefix}.{name}"]
