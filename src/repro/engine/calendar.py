"""Calendar-queue event scheduler (R. Brown, CACM 1988).

An alternative to the binary heap in :class:`repro.engine.events.Engine`,
selected with ``Engine(scheduler="calendar")`` (which the ``calendar`` and
``vector`` execution backends do).  A calendar queue buckets events by
timestamp like the days of a desk calendar: bucket ``(t // width) %
n_buckets`` holds every event whose time falls on that "day" of any
"year".  Enqueue is O(1); dequeue scans forward from the current day and
pops the first event dated within the day being examined, giving O(1)
amortized behavior when event times are roughly uniform (they are here:
core issue chunks, DRAM bank timings, and prefetch completions all recur
on few-nanosecond scales).

Delivery order is **identical** to the heap's: within one bucket events
order by ``(time, seq)`` (the heap invariant of :class:`Event`), equal
timestamps always land in the same bucket, and the day-by-day scan visits
disjoint, increasing time windows — so the global pop sequence is the
same total order the binary heap produces.  ``tests/test_engine.py`` and
``tests/test_backends.py`` hold this equivalence down to byte-identical
simulation results.

Trade-offs vs. the heap: pops touch more memory per call when the queue
is sparse or strongly clustered (empty-day scans, bounded by the direct
search fallback), and a skewed time distribution degrades toward O(n) —
the classic calendar-queue failure mode.  The queue grows its bucket
count when occupancy warrants; width stays fixed (simulator event spacing
is set by clock periods, which vary by at most the DFS range).
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.engine.events import Event

#: default bucket width: ~0.7 compute cycles at 700 MHz, so consecutive
#: core issue chunks land in nearby buckets
_DEFAULT_WIDTH_PS = 1024
_DEFAULT_BUCKETS = 256


class CalendarQueue:
    """Bucketed priority queue over :class:`Event`, heap-order compatible.

    Cancelled events are skipped lazily at pop time, mirroring the
    engine's heap behavior; ``len`` counts events still stored (live or
    cancelled-but-unpopped).
    """

    def __init__(self, width_ps: int = _DEFAULT_WIDTH_PS,
                 n_buckets: int = _DEFAULT_BUCKETS):
        if width_ps <= 0 or n_buckets <= 0:
            raise ValueError("width_ps and n_buckets must be positive")
        self.width = int(width_ps)
        self.nb = int(n_buckets)
        self.buckets: list[list[Event]] = [[] for _ in range(self.nb)]
        self._n = 0      # stored events (incl. not-yet-popped cancelled)
        self._slot = 0   # absolute day index the scan resumes from

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def push(self, ev: Event) -> None:
        if self._n >= 2 * self.nb:
            self._grow()
        heapq.heappush(self.buckets[(ev.time // self.width) % self.nb], ev)
        self._n += 1

    def _grow(self) -> None:
        events = [ev for b in self.buckets for ev in b if not ev.cancelled]
        self.nb *= 2
        self.buckets = [[] for _ in range(self.nb)]
        self._n = 0
        for ev in events:
            heapq.heappush(self.buckets[(ev.time // self.width) % self.nb], ev)
            self._n += 1

    # ------------------------------------------------------------------
    def _purge_top(self, bucket: list[Event]) -> None:
        while bucket and bucket[0].cancelled:
            heapq.heappop(bucket)
            self._n -= 1

    def _find(self, pop: bool) -> Optional[Event]:
        """The next live event in (time, seq) order; optionally remove it."""
        if self._n == 0:
            return None
        width, nb, buckets = self.width, self.nb, self.buckets
        slot = self._slot
        # day-by-day scan over one full calendar year
        for _ in range(nb):
            bucket = buckets[slot % nb]
            self._purge_top(bucket)
            if bucket and bucket[0].time < (slot + 1) * width:
                ev = bucket[0]
                if pop:
                    heapq.heappop(bucket)
                    self._n -= 1
                    self._slot = ev.time // width
                return ev
            slot += 1
        if self._n == 0:
            return None
        # sparse queue: no event dated within the next year — direct
        # search across bucket tops (each bucket's top is its minimum, and
        # no two buckets can hold equal timestamps, so the min is unique)
        best: Optional[Event] = None
        for bucket in buckets:
            self._purge_top(bucket)
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        if best is None:
            return None
        self._slot = best.time // width
        if pop:
            bucket = buckets[self._slot % nb]
            heapq.heappop(bucket)
            self._n -= 1
        return best

    def peek_min(self) -> Optional[Event]:
        return self._find(pop=False)

    def pop_min(self) -> Optional[Event]:
        return self._find(pop=True)
