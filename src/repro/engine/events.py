"""Event heap with integer-picosecond resolution.

Design notes
------------
* Time is an ``int`` number of picoseconds.  Integer time makes the two
  clock domains of the paper (700 MHz compute, 1.2 GHz memory channel, plus
  DFS-scaled compute clocks) compose without floating-point drift.
* Events at equal timestamps are delivered in scheduling order (a
  monotonically increasing sequence number breaks ties), which keeps runs
  deterministic.
* ``cancel`` is O(1): cancelled events stay in the heap but are skipped on
  pop (standard lazy deletion).
* The queue implementation is pluggable: ``Engine(scheduler="calendar")``
  swaps the binary heap for the calendar queue
  (:mod:`repro.engine.calendar`), which delivers the *identical* event
  order (the ``calendar``/``vector`` execution backends rely on this; see
  docs/backends.md).  The default heap path is kept inlined and untouched
  — selecting a scheduler costs nothing when you don't.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule` so the
    caller can cancel it later."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time}ps fn={getattr(self.fn, '__qualname__', self.fn)}{state}>"


class Engine:
    """Minimal discrete-event kernel.

    >>> eng = Engine()
    >>> out = []
    >>> _ = eng.schedule(100, out.append, "b")
    >>> _ = eng.schedule(50, out.append, "a")
    >>> eng.run()
    2
    >>> out
    ['a', 'b']
    >>> eng.now
    100
    """

    def __init__(self, scheduler: str = "heap") -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._live: int = 0  # number of non-cancelled events in the heap
        self.scheduler = scheduler
        if scheduler == "heap":
            self._queue = None
        elif scheduler == "calendar":
            from repro.engine.calendar import CalendarQueue

            self._queue = CalendarQueue()
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; available: heap, calendar"
            )
        #: optional delivery observer: ``on_deliver(ev)`` fires before each
        #: callback and ``on_return(ev)`` (if defined) after it returns.
        #: Used by :mod:`repro.sanitize` for monotonicity checking / the
        #: livelock watchdog and by :mod:`repro.trace` for host profiling;
        #: attach via :func:`repro.engine.observer.attach_observer` so
        #: several observers compose.  Must not mutate state.
        self.observer = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute picosecond ``time``.

        ``time`` must not be in the engine's past; shared-state causality
        relies on it.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at t={time}ps; engine is at t={self.now}ps")
        ev = Event(int(time), self._seq, fn, args)
        self._seq += 1
        if self._queue is None:
            heapq.heappush(self._heap, ev)
        else:
            self._queue.push(ev)
        self._live += 1
        return ev

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + int(delay), fn, *args)

    def cancel(self, ev: Event) -> None:
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle."""
        if self._queue is not None:
            ev = self._queue.peek_min()
            return ev.time if ev is not None else None
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def _deliver(self, ev: Event) -> None:
        """Fire one event's callback, bracketed by the observer hooks."""
        obs = self.observer
        if obs is None:
            ev.fn(*ev.args)
            return
        obs.on_deliver(ev)
        ev.fn(*ev.args)
        hook = getattr(obs, "on_return", None)
        if hook is not None:
            hook(ev)

    def step(self) -> bool:
        """Deliver the next live event.  Returns ``False`` when idle."""
        if self._queue is not None:
            ev = self._queue.pop_min()
            if ev is None:
                return False
            self._live -= 1
            self.now = ev.time
            self._deliver(ev)
            return True
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._live -= 1
            self.now = ev.time
            self._deliver(ev)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` ps is reached, or
        ``max_events`` events have been delivered.  Returns the number of
        events delivered.

        With ``until`` given, the engine always finishes at ``max(now,
        until)`` - including when the heap drains early or was empty to
        begin with - so idle time is accounted consistently with the
        next-event-beyond-``until`` case.  Hitting ``max_events`` does not
        advance to ``until``: undelivered events remain in the window.
        """
        if self._queue is not None:
            return self._run_calendar(until, max_events)
        delivered = 0
        heap = self._heap
        while heap:
            ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and ev.time > until:
                break
            if max_events is not None and delivered >= max_events:
                return delivered
            heapq.heappop(heap)
            self._live -= 1
            self.now = ev.time
            obs = self.observer
            if obs is None:
                ev.fn(*ev.args)
            else:
                obs.on_deliver(ev)
                ev.fn(*ev.args)
                hook = getattr(obs, "on_return", None)
                if hook is not None:
                    hook(ev)
            delivered += 1
        if until is not None and self.now < until:
            self.now = until
        return delivered

    def _run_calendar(self, until: Optional[int], max_events: Optional[int]) -> int:
        """The :meth:`run` loop over the calendar queue (same contract)."""
        delivered = 0
        queue = self._queue
        if until is None and max_events is None:
            # unbounded drain (the main `engine.run()` loop): pop directly.
            # The general path below peeks before every pop to check the
            # `until`/`max_events` bounds, and each of peek/pop walks the
            # calendar's day scan — with no bounds to check, popping
            # directly halves that work on the hottest engine path.
            while True:
                ev = queue.pop_min()
                if ev is None:
                    return delivered
                self._live -= 1
                self.now = ev.time
                obs = self.observer
                if obs is None:
                    ev.fn(*ev.args)
                else:
                    obs.on_deliver(ev)
                    ev.fn(*ev.args)
                    hook = getattr(obs, "on_return", None)
                    if hook is not None:
                        hook(ev)
                delivered += 1
        while True:
            ev = queue.peek_min()
            if ev is None:
                break
            if until is not None and ev.time > until:
                break
            if max_events is not None and delivered >= max_events:
                return delivered
            queue.pop_min()
            self._live -= 1
            self.now = ev.time
            obs = self.observer
            if obs is None:
                ev.fn(*ev.args)
            else:
                obs.on_deliver(ev)
                ev.fn(*ev.args)
                hook = getattr(obs, "on_return", None)
                if hook is not None:
                    hook(ev)
            delivered += 1
        if until is not None and self.now < until:
            self.now = until
        return delivered
