"""Clock domains.

A :class:`Clock` converts cycle counts to picoseconds.  Millipede's
rate-matching (paper section IV-F) changes the compute clock at run time, so
conversions always use the *current* frequency; cumulative cycle counts are
tracked per frequency so energy accounting can attribute time correctly.
"""

from __future__ import annotations

PS_PER_SECOND = 1_000_000_000_000


def period_ps(freq_hz: float) -> int:
    """Integer picosecond period of ``freq_hz`` (rounded to nearest ps)."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return max(1, round(PS_PER_SECOND / freq_hz))


class Clock:
    """A (possibly DFS-scaled) clock domain.

    >>> c = Clock(1.2e9)
    >>> c.period_ps
    833
    >>> c.cycles_to_ps(3)
    2499
    """

    def __init__(self, freq_hz: float, name: str = "clk"):
        self.name = name
        self._freq_hz = 0.0
        self._period_ps = 0
        #: optional frequency-change observer (``on_set_frequency(clock,
        #: old_hz, new_hz)``); used by :mod:`repro.sanitize` to check DFS
        #: range/step/debounce legality.  Must not mutate state.
        self.observer = None
        self.set_frequency(freq_hz)
        #: (frequency, cycles) samples accumulated via :meth:`charge_cycles`
        self.cycle_log: dict[float, int] = {}

    # ------------------------------------------------------------------
    @property
    def freq_hz(self) -> float:
        return self._freq_hz

    @property
    def period_ps(self) -> int:
        return self._period_ps

    def set_frequency(self, freq_hz: float) -> None:
        if self.observer is not None:
            self.observer.on_set_frequency(self, self._freq_hz, float(freq_hz))
        self._freq_hz = float(freq_hz)
        self._period_ps = period_ps(freq_hz)

    # ------------------------------------------------------------------
    def cycles_to_ps(self, cycles: int) -> int:
        """Duration of ``cycles`` cycles at the current frequency."""
        return cycles * self._period_ps

    def ps_to_cycles(self, ps: int) -> int:
        """Number of whole cycles that fit in ``ps`` at the current frequency."""
        return ps // self._period_ps

    def charge_cycles(self, cycles: int) -> int:
        """Record ``cycles`` cycles spent at the current frequency (for
        frequency-resolved energy/time attribution) and return the elapsed
        picoseconds."""
        self.cycle_log[self._freq_hz] = self.cycle_log.get(self._freq_hz, 0) + cycles
        return cycles * self._period_ps

    @property
    def total_cycles(self) -> int:
        return sum(self.cycle_log.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Clock {self.name} {self._freq_hz / 1e6:.1f} MHz>"
