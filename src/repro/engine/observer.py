"""Composable observer fan-out for the simulator's instrumentation points.

Every instrumented component (event engine, DFS clock, DRAM controller,
prefetch buffer, SIMT front end, barrier coordinator) exposes a single
``observer`` attribute that receives hook calls at the component's
mechanism points.  The original protocol was single-slot: whoever attached
first owned the slot, so the sanitizer (:mod:`repro.sanitize`) and any
other observability layer (:mod:`repro.trace`) could not watch the same
run.  :class:`ObserverChain` removes that restriction by multiplexing each
hook call to any number of children.

Rules of the protocol:

* Hooks are *read-only*: no child may mutate simulation state.  This is
  what guarantees an observed run is bit-identical to an unobserved one.
* A child only receives the hooks it defines.  Observers written against a
  subset of a component's hook vocabulary (e.g. an engine observer that
  wants ``on_deliver`` but not ``on_return``) compose freely with children
  that implement more.
* Children are invoked in attachment order.

Use :func:`attach_observer` rather than assigning ``component.observer``
directly; it composes with whatever is already attached.

>>> class A:
...     def on_ping(self, x): print("A", x)
>>> class B:
...     def on_ping(self, x): print("B", x)
...     def on_pong(self): print("B pong")
>>> chain = ObserverChain(A(), B())
>>> chain.on_ping(1)
A 1
B 1
>>> chain.on_pong()          # only B implements it
B pong
>>> chain.on_absent()        # nobody implements it: a cached no-op
"""

from __future__ import annotations

from typing import Any


def _noop(*args: Any, **kwargs: Any) -> None:
    return None


class ObserverChain:
    """Fan-out observer: forwards each hook to every child that defines it.

    Dispatchers are built lazily per hook name and cached on the instance,
    so steady-state dispatch costs one attribute lookup plus the child
    calls; with a single interested child the cached dispatcher *is* that
    child's bound method (zero fan-out overhead), and a hook no child
    implements costs one cached no-op call.
    """

    def __init__(self, *observers) -> None:
        self._observers: list = [obs for obs in observers if obs is not None]

    # ------------------------------------------------------------------
    @property
    def observers(self) -> tuple:
        """The attached children, in dispatch order."""
        return tuple(self._observers)

    def add(self, observer) -> None:
        if observer is None:
            raise TypeError("cannot attach None as an observer")
        self._observers.append(observer)
        self._invalidate()

    def remove(self, observer) -> None:
        self._observers.remove(observer)
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop cached dispatchers (the child set changed)."""
        for name in [k for k in self.__dict__ if not k.startswith("_")]:
            del self.__dict__[name]

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # only hook names reach here (cached dispatchers live in __dict__);
        # refuse private/dunder lookups so pickling & introspection behave
        if name.startswith("_"):
            raise AttributeError(name)
        targets = []
        for obs in self._observers:
            hook = getattr(obs, name, None)
            if callable(hook):
                targets.append(hook)
        if not targets:
            fn = _noop
        elif len(targets) == 1:
            fn = targets[0]
        else:
            bound = tuple(targets)

            def fn(*args: Any, **kwargs: Any) -> None:
                for t in bound:
                    t(*args, **kwargs)

        self.__dict__[name] = fn
        return fn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(type(o).__name__ for o in self._observers)
        return f"<ObserverChain [{kinds}]>"


def attach_observer(target, observer) -> ObserverChain:
    """Attach ``observer`` to ``target.observer``, composing with whatever
    is already attached (a bare observer is promoted into a chain).
    Returns the chain so callers can add siblings directly."""
    if observer is None:
        raise TypeError("cannot attach None as an observer")
    current = target.observer
    if isinstance(current, ObserverChain):
        current.add(observer)
        return current
    chain = ObserverChain(current, observer)
    target.observer = chain
    return chain


def detach_observer(target, observer) -> None:
    """Remove ``observer`` from ``target.observer``; clears the slot when
    it was the last (or only, possibly un-chained) observer."""
    current = target.observer
    if current is observer:
        target.observer = None
        return
    if isinstance(current, ObserverChain):
        current.remove(observer)
        if not current.observers:
            target.observer = None
