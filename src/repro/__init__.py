"""repro: a full reproduction of *Millipede: Die-Stacked Memory
Optimizations for Big Data Machine Learning Analytics* (IPDPS 2018).

Quick start
-----------
>>> from repro import run
>>> result = run("millipede", "count", n_records=2048)   # doctest: +SKIP
>>> result.validated                                     # doctest: +SKIP
True

Batches of runs are described by frozen :class:`RunSpec` values and fanned
out over worker processes (deduplicated + disk-cached) by ``run_batch``:

>>> from repro import RunSpec, run_batch
>>> specs = [RunSpec(a, "count") for a in ("ssmc", "millipede")]
>>> results = run_batch(specs, workers=4)                # doctest: +SKIP

Execution knobs (validation, sanitizer, tracer, and the fast ``vector``
backend - see ``docs/backends.md``) travel as one frozen
:class:`ExecOptions` value; :mod:`repro.api` is the facade built around
it:

>>> from repro import ExecOptions, api
>>> r = api.run("millipede", "count",
...             options=ExecOptions(backend="vector"))   # doctest: +SKIP

The package layers:

* :mod:`repro.engine`    - discrete-event simulation kernel
* :mod:`repro.isa`       - the mini RISC ISA kernels are written in
* :mod:`repro.dram`      - die-stacked DRAM (banks, FR-FCFS controller)
* :mod:`repro.mem`       - caches, scratchpads, the row prefetch buffer
* :mod:`repro.core`      - the Millipede processor (the paper's contribution)
* :mod:`repro.arch`      - GPGPU / VWS / SSMC / multicore baselines
* :mod:`repro.layout`    - interleaved record layouts
* :mod:`repro.workloads` - the eight BMLA benchmarks + golden models
* :mod:`repro.mapreduce` - host / cluster MapReduce layers
* :mod:`repro.energy`    - component energy model
* :mod:`repro.sim`       - one-call run driver
* :mod:`repro.sanitize`  - opt-in runtime invariant checking
* :mod:`repro.trace`     - opt-in timeline tracing + host profiling
* :mod:`repro.experiments` - regenerates every table and figure
"""

from repro import api
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sanitize import InvariantViolation, SimSanitizer
from repro.sim.campaign import (
    BatchProgress,
    CampaignPlan,
    CampaignReport,
    plan_campaign,
    run_batch,
    run_campaign,
    shard_specs,
)
from repro.sim.driver import ARCHITECTURES, RunResult, run, run_many
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.sim.store import FingerprintStore
from repro.trace import SimTracer, TraceResult
from repro.workloads.registry import get_workload, workload_names

__version__ = "1.6.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SystemConfig",
    "ARCHITECTURES",
    "BatchProgress",
    "CampaignPlan",
    "CampaignReport",
    "ExecOptions",
    "FingerprintStore",
    "InvariantViolation",
    "RunResult",
    "RunSpec",
    "SimSanitizer",
    "SimTracer",
    "TraceResult",
    "api",
    "plan_campaign",
    "run",
    "run_batch",
    "run_campaign",
    "run_many",
    "shard_specs",
    "get_workload",
    "workload_names",
    "__version__",
]
