"""Instruction-cache accounting.

BMLA kernels are tiny (the paper: under 4 KB, broadcast once at launch), so
the I-cache never misses after warm-up and has no timing effect.  What it
*does* affect is energy: MIMD architectures (Millipede, SSMC) pay one
I-cache access per core per instruction, while SIMT amortizes one access
over all active lanes of a warp - one of GPGPU's two structural energy
advantages the paper calls out in section III-E and accounts for in Fig. 4.
"""

from __future__ import annotations


class ICacheModel:
    """Counts instruction fetches; warns if the kernel exceeds capacity."""

    def __init__(self, capacity_bytes: int, code_bytes: int):
        self.capacity_bytes = capacity_bytes
        self.code_bytes = code_bytes
        self.fetches = 0
        #: a kernel bigger than the I-cache would stream misses; the BMLA
        #: premise (compute-light) says this never happens - make it loud.
        self.fits = code_bytes <= capacity_bytes

    def fetch(self, n: int = 1) -> None:
        self.fetches += n
