"""Sequential cache-block prefetching into an L1 D-cache.

This is the input-data path of the *baseline* architectures (GPGPU, VWS,
SSMC - section V: "the GPGPU, VWS, and SSMC use sequential cache-block
prefetch").  On every demand access to input block *B* the prefetcher
issues fills for *B+1 .. B+degree* that are not present or in flight.
Prefetching hides latency but does not change DRAM bandwidth or row
locality - exactly the property the paper leans on when arguing that
"100%-accurate cache-block prefetching does not help" the baselines.

An MSHR table merges demand misses with in-flight fills so concurrent
threads never duplicate DRAM traffic for the same block.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dram.controller import MemoryController, DramRequest
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.mem.dcache import SetAssocCache


class BlockStream:
    """Bounds of the streamed input region, in words."""

    __slots__ = ("base", "end")

    def __init__(self, base: int, end: int):
        if end <= base:
            raise ValueError(f"empty input region [{base}, {end})")
        self.base = base
        self.end = end

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


def core_block_schedule(
    *,
    base_word: int,
    n_fields: int,
    block_records: int,
    n_blocks: int,
    core_id: int,
    n_cores: int,
    line_words: int,
) -> list[int]:
    """The ordered distinct cache-block sequence one MIMD core demands
    under the chunked traversal: per record block, fields in kernel order,
    the core's contiguous ``B/n_cores``-word slice of each field row.

    This is what a "100%-accurate sequential prefetch" (section V) follows;
    it is fully determined by the layout, not by the data.
    """
    span = block_records // n_cores
    lo = core_id * span
    schedule: list[int] = []
    for bl in range(n_blocks):
        for f in range(n_fields):
            start = base_word + bl * n_fields * block_records + f * block_records + lo
            first = start // line_words
            last = (start + span - 1) // line_words
            for b in range(first, last + 1):
                if not schedule or schedule[-1] != b:
                    schedule.append(b)
    return schedule


def sm_block_schedule(
    *,
    base_word: int,
    n_fields: int,
    block_records: int,
    n_blocks: int,
    n_threads: int,
    line_words: int,
) -> list[int]:
    """The ordered distinct cache-block sequence one SM demands under the
    word-interleaved traversal: per record block, per T-record group, the
    warps sweep each field's T consecutive words before the next field."""
    schedule: list[int] = []
    groups = block_records // n_threads
    for bl in range(n_blocks):
        for k in range(groups):
            for f in range(n_fields):
                start = (base_word + bl * n_fields * block_records
                         + f * block_records + k * n_threads)
                first = start // line_words
                last = (start + n_threads - 1) // line_words
                for b in range(first, last + 1):
                    if not schedule or schedule[-1] != b:
                        schedule.append(b)
    return schedule


class SequentialPrefetcher:
    """L1D + sequential prefetcher + MSHRs for one core (or one SM).

    With ``schedule=None`` the prefetcher is next-block sequential (the SM
    case: coalesced SIMT traffic is address-sequential within each field
    region).  With a per-core block ``schedule`` it is the 100%-accurate
    stream prefetcher the paper grants the MIMD baselines: it runs
    ``degree`` blocks ahead of the core's own demand stream - accuracy and
    timeliness are perfect, but bandwidth and row locality are whatever
    the stream's DRAM behaviour gives (the paper's point).
    """

    def __init__(
        self,
        engine: Engine,
        mc: MemoryController,
        cache: SetAssocCache,
        stream: BlockStream,
        stats: Stats,
        name: str,
        degree: int = 2,
        max_inflight: int = 8,
        schedule: Optional[list[int]] = None,
    ):
        self.engine = engine
        self.mc = mc
        self.cache = cache
        self.stream = stream
        self.stats = stats.scoped(name)
        self.degree = degree
        self.max_inflight = max_inflight
        #: block tag -> list of waiter callbacks (None entries = prefetches)
        self._inflight: dict[int, list[Callable[[int], None]]] = {}
        self.schedule = schedule
        self._sched_pos: dict[int, int] = (
            {b: i for i, b in enumerate(schedule)} if schedule else {}
        )
        self._ptr = 0  # consumption pointer into the schedule

    # ------------------------------------------------------------------
    def demand_access(self, word_addr: int, on_ready: Callable[[int], None]) -> None:
        """Demand load at the current engine time.  ``on_ready(ready_ps)``
        fires when the block is (or already was) present."""
        block = self.cache.block_of(word_addr)
        if self.cache.access(word_addr):
            self.stats.inc("demand_hits")
            self._prefetch_ahead(block)
            on_ready(self.engine.now)
            return
        self.stats.inc("demand_misses")
        waiters = self._inflight.get(block)
        if waiters is not None:
            # merged into an in-flight fill (MSHR hit)
            self.stats.inc("mshr_merges")
            waiters.append(on_ready)
        else:
            self._inflight[block] = [on_ready]
            self._issue(block, demand=True)
        self._prefetch_ahead(block)

    def demand_access_multi(self, word_addrs: list[int], on_all_ready: Callable[[int], None]) -> int:
        """Coalesced warp access: wait for every distinct block of
        ``word_addrs``.  Returns the number of distinct blocks (transactions)
        for port-serialization accounting."""
        blocks = sorted({self.cache.block_of(a) for a in word_addrs})
        remaining = len(blocks)
        latest = self.engine.now

        def one_ready(ready_ps: int) -> None:
            nonlocal remaining, latest
            remaining -= 1
            latest = max(latest, ready_ps)
            if remaining == 0:
                on_all_ready(latest)

        for block in blocks:
            self.demand_access(self.cache.block_base(block), one_ready)
        return len(blocks)

    # ------------------------------------------------------------------
    def _next_blocks(self, block: int) -> list[int]:
        """Prefetch candidates after a demand to ``block``."""
        if self.schedule is None:
            return list(range(block + 1, block + 1 + self.degree))
        pos = self._sched_pos.get(block)
        if pos is None:
            return []
        self._ptr = max(self._ptr, pos)
        return self.schedule[self._ptr + 1 : self._ptr + 1 + self.degree]

    def _prefetch_ahead(self, block: int) -> None:
        for b in self._next_blocks(block):
            if len(self._inflight) >= self.max_inflight:
                break
            base = self.cache.block_base(b)
            if not self.stream.contains(base):
                break
            if b in self._inflight or self.cache.contains(base):
                continue
            self._inflight[b] = []
            self.stats.inc("prefetches")
            self._issue(b, demand=False)

    def _issue(self, block: int, demand: bool) -> None:
        base = self.cache.block_base(block)
        n_words = min(self.cache.line_words, self.stream.end - base)
        self.mc.access(base, n_words, callback=self._fill, tag=block)
        if demand:
            self.stats.inc("demand_fills")

    def _fill(self, req: DramRequest) -> None:
        block = req.tag
        self.cache.insert(self.cache.block_base(block))
        waiters = self._inflight.pop(block, [])
        now = self.engine.now
        for cb in waiters:
            cb(now)
