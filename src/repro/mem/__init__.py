"""On-processor-die memory structures.

All three PNM architectures get the same 160 KB on-die budget (Table III):

* Millipede: 4 KB local memory + 1 KB prefetch-buffer slice per corelet
  (:mod:`local_memory`, :mod:`prefetch_buffer`)
* SSMC: 5 KB L1 D-cache per core (:mod:`dcache` + :mod:`prefetcher`)
* GPGPU SM: 32 KB L1-D + 128 KB banked shared memory
  (:mod:`dcache`, :mod:`shared_memory`)
"""

from repro.mem.local_memory import LocalMemory
from repro.mem.icache import ICacheModel
from repro.mem.dcache import SetAssocCache
from repro.mem.shared_memory import BankedSharedMemory
from repro.mem.prefetcher import SequentialPrefetcher, BlockStream
from repro.mem.prefetch_buffer import PrefetchBuffer, PBAccessResult

__all__ = [
    "LocalMemory",
    "ICacheModel",
    "SetAssocCache",
    "BankedSharedMemory",
    "SequentialPrefetcher",
    "BlockStream",
    "PrefetchBuffer",
    "PBAccessResult",
]
