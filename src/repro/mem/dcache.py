"""Set-associative L1 D-cache with LRU replacement.

Used for input-data cache blocks in SSMC (5 KB/core) and the GPGPU SM
(32 KB/SM).  The cache tracks *presence and recency* only; data values are
read from the global backing store at consumption time (input data is
read-only during the Map phase, so presence tracking is value-exact).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class SetAssocCache:
    """Block-granular set-associative cache.

    Addresses are *word* addresses; the cache works on block-aligned tags.

    >>> c = SetAssocCache(total_bytes=512, line_bytes=128, assoc=2)
    >>> c.access(0)
    False
    >>> c.insert(0)
    >>> c.access(0)
    True
    """

    def __init__(self, total_bytes: int, line_bytes: int, assoc: int, word_bytes: int = 4):
        if total_bytes % (line_bytes * assoc):
            raise ValueError(
                f"cache geometry invalid: {total_bytes}B total, "
                f"{line_bytes}B lines, {assoc}-way"
            )
        self.line_words = line_bytes // word_bytes
        self.assoc = assoc
        self.n_sets = total_bytes // (line_bytes * assoc)
        # per-set OrderedDict acting as an LRU list: oldest first
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def block_of(self, word_addr: int) -> int:
        """Block tag (block index) containing ``word_addr``."""
        return word_addr // self.line_words

    def block_base(self, block: int) -> int:
        return block * self.line_words

    def _set_of(self, block: int) -> OrderedDict:
        return self._sets[block % self.n_sets]

    # ------------------------------------------------------------------
    def access(self, word_addr: int) -> bool:
        """Demand lookup; updates LRU and hit/miss counters."""
        block = self.block_of(word_addr)
        s = self._set_of(block)
        if block in s:
            s.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, word_addr: int) -> bool:
        """Probe without perturbing LRU or counters."""
        block = self.block_of(word_addr)
        return block in self._set_of(block)

    def insert(self, word_addr: int) -> Optional[int]:
        """Fill the block containing ``word_addr``; returns the evicted
        block tag, if any."""
        block = self.block_of(word_addr)
        s = self._set_of(block)
        if block in s:
            s.move_to_end(block)
            return None
        victim = None
        if len(s) >= self.assoc:
            victim, _ = s.popitem(last=False)
            self.evictions += 1
        s[block] = None
        return victim

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0
