"""Millipede's flow-controlled cross-corelet row prefetch buffer (§IV-B/C).

Mechanism (paper terminology):

* The buffer is a circular queue of entries; each entry holds one full DRAM
  row, split into one 64 B *slab* per corelet so every corelet accesses only
  its private slice (full parallel bandwidth, simple interconnect).
* Each entry carries a *prefetch-trigger (PFT)* full-empty bit: the first
  demand access to an entry clears it and triggers the prefetch of the next
  sequential row into a newly allocated tail entry; later demand accesses
  do not re-trigger (like an MSHR).
* Each entry carries a *demand-fetch (DF)* counter that saturates at the
  corelet count.  We increment it when a corelet finishes consuming its
  slab (the paper: saturation "indicat[es] that the entry has been consumed
  fully").  The head entry may be re-allocated only when saturated.
* **Flow control**: when the queue is full and the head is unsaturated, a
  trigger is *deferred* - the PFT bit stays set and a later demand fetch to
  the tail entry retries (Fig. 2's timeline).  Because corelets consume
  rows in order, the last corelet to saturate the head still has tail
  accesses ahead of it, so a deferred trigger is always eventually retried.
* **Without flow control** (`Millipede-no-flow-control`): the trigger
  evicts the head even when unsaturated; lagging corelets that still
  needed the evicted row fall back to block-granular demand fetches from
  DRAM (exposed latency + extra activations), which is precisely the
  pathology the paper's Fig. 3 isolates.

Rate-matching hooks: ``on_empty_wait`` fires when a demand access finds its
entry's fill still in flight (memory-bound → clock down), ``on_full_defer``
fires on a flow-control deferral (compute lagging consumption → clock up).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.dram.controller import MemoryController, DramRequest
from repro.engine.events import Engine
from repro.engine.stats import Stats

#: result codes for demand accesses (returned to the corelet via callback
#: arguments; kept as a class for self-documenting stats)
class PBAccessResult:
    HIT = "hit"
    FILL_WAIT = "fill_wait"
    ALLOC_WAIT = "alloc_wait"
    EVICTED_MISS = "evicted_miss"


class _Entry:
    __slots__ = ("row", "fill_done_ps", "pft", "df_count", "consumed", "fill_waiters")

    def __init__(self, row: int, n_corelets: int):
        self.row = row
        self.fill_done_ps: Optional[int] = None  # None while the fill is in flight
        self.pft = True
        self.df_count = 0
        self.consumed = [0] * n_corelets
        #: (corelet_id, callback) pairs blocked on this entry's fill
        self.fill_waiters: list[tuple[int, Callable[[int, str], None]]] = []


class PrefetchBuffer:
    """One Millipede processor's prefetch buffer (all corelets' slices)."""

    def __init__(
        self,
        engine: Engine,
        mc: MemoryController,
        stats: Stats,
        *,
        n_corelets: int,
        n_entries: int,
        row_words: int,
        flow_control: bool = True,
        demand_block_words: int = 16,
        init_depth: int = 4,
        prefetch_ahead: int = 4,
        record_row_span: int = 1,
        name: str = "pb",
    ):
        if row_words % n_corelets:
            raise ValueError(
                f"row of {row_words} words not divisible into {n_corelets} slabs"
            )
        self.engine = engine
        self.mc = mc
        self.stats = stats.scoped(name)
        self.n_corelets = n_corelets
        self.n_entries = n_entries
        self.row_words = row_words
        self.slab_words = row_words // n_corelets
        self.flow_control = flow_control
        self.demand_block_words = demand_block_words
        self.init_depth = max(1, min(init_depth, n_entries))
        #: rows to run ahead of the newest first-touched row ("we can
        #: prefetch one more row ahead... hints from software about how far
        #: ahead to prefetch", section IV-C); must hide one row's fetch time
        self.prefetch_ahead = max(1, min(prefetch_ahead, n_entries - 1))
        #: rows one record's field sweep spans (= field count with the
        #: row-sized interleaved blocks).  When the buffer can hold a whole
        #: sweep plus slack, a corelet that outruns allocation may safely
        #: *wait* (the paper's "short waiting"); otherwise it must fall back
        #: to a demand fetch or the whole processor can deadlock.
        self.record_row_span = max(1, record_row_span)
        self._wait_is_safe = n_entries > self.record_row_span
        self._alloc_waiters: list[tuple[int, int, Callable[[int, str], None]]] = []

        self.entries: deque[_Entry] = deque()
        self._by_row: dict[int, _Entry] = {}
        self.first_row = 0
        self.last_row = -1
        self._next_row = 0  # next sequential row to prefetch
        #: MSHRs for fallback demand fetches: block -> callbacks
        self._demand_inflight: dict[int, list[Callable[[int, str], None]]] = {}
        #: per-corelet consumption of rows demand-fetched *before* their
        #: allocation (multi-row records can outrun a small buffer); folded
        #: into the entry's DF accounting when the row is finally allocated
        self._preconsumed: dict[int, list[int]] = {}

        # rate-matching signal hooks
        self.on_empty_wait: Optional[Callable[[], None]] = None
        self.on_full_defer: Optional[Callable[[], None]] = None

        #: optional mechanism observer (:mod:`repro.sanitize`); receives
        #: ``on_demand`` / ``on_consume`` / ``on_trigger`` / ``on_evict`` /
        #: ``on_alloc`` / ``on_fill`` events.  Must not mutate state.
        self.observer = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def start(self, first_row: int, last_row: int) -> None:
        """Begin streaming rows ``first_row..last_row`` (inclusive)."""
        if last_row < first_row:
            raise ValueError(f"empty row range [{first_row}, {last_row}]")
        self.first_row = first_row
        self.last_row = last_row
        self._next_row = first_row
        for _ in range(self.init_depth):
            if self._next_row > last_row:
                break
            self._allocate_next()

    # ------------------------------------------------------------------
    # the corelet-facing demand path (must be called as an engine event)
    # ------------------------------------------------------------------
    def demand_access(self, corelet_id: int, addr: int,
                      on_ready: Callable[[int, str], None]) -> None:
        """Demand fetch of global word ``addr`` by ``corelet_id``.

        ``on_ready(ready_ps, result_code)`` fires when the data is
        available (possibly immediately).
        """
        if self.observer is not None:
            self.observer.on_demand(corelet_id, addr)
        row = addr // self.row_words
        entry = self._by_row.get(row)
        if entry is not None:
            # rate-matching "full" observation: memory is comfortably ahead
            # when even the newest allocated row is already filled (checked
            # before triggering, which allocates fresh in-flight rows)
            if (self.on_full_defer is not None
                    and self.entries[-1].fill_done_ps is not None
                    and self.entries[-1].fill_done_ps <= self.engine.now):
                self.on_full_defer()
            if entry.pft:
                # first demand access to this entry: clear PFT (possibly
                # deferred under flow control) and trigger the next prefetch
                self._try_trigger(entry)
            if entry.fill_done_ps is not None and entry.fill_done_ps <= self.engine.now:
                self.stats.inc("hits")
                self._consume(corelet_id, entry)
                on_ready(self.engine.now, PBAccessResult.HIT)
            else:
                # prefetch in flight: the corelet has outrun memory
                self.stats.inc("fill_waits")
                if self.on_empty_wait is not None:
                    self.on_empty_wait()
                entry.fill_waiters.append((corelet_id, on_ready))
            return

        if row > self.last_row or row < self.first_row:
            raise IndexError(
                f"demand access to row {row} outside streamed range "
                f"[{self.first_row}, {self.last_row}]"
            )
        head_row = self.entries[0].row if self.entries else self._next_row
        if row >= head_row:
            # ahead of the allocated window: try to pull allocation forward
            # (this is the leading corelet's short wait when the queue has
            # room), otherwise fall back to a direct DRAM demand fetch - a
            # multi-row record can legitimately outrun a small buffer, and
            # the buffer is an optimization, never the only path to memory
            self._advance_allocation(row)
            entry = self._by_row.get(row)
            if entry is not None:
                if entry.fill_done_ps is not None and entry.fill_done_ps <= self.engine.now:
                    self.stats.inc("hits")
                    self._consume(corelet_id, entry)
                    on_ready(self.engine.now, PBAccessResult.HIT)
                else:
                    self.stats.inc("alloc_waits")
                    entry.fill_waiters.append((corelet_id, on_ready))
            elif self._wait_is_safe:
                # the leading corelet's short wait (Fig. 2): a laggard can
                # always drain the head because the buffer holds a whole
                # record sweep, so allocation is guaranteed to advance
                self.stats.inc("alloc_waits")
                if self.flow_control and self.on_full_defer is not None:
                    self.on_full_defer()
                self._alloc_waiters.append((corelet_id, row, on_ready))
            else:
                self.stats.inc("ahead_misses")
                if self.flow_control and self.on_full_defer is not None:
                    self.on_full_defer()
                pre = self._preconsumed.setdefault(row, [0] * self.n_corelets)
                pre[corelet_id] += 1
                self._demand_fetch(addr, on_ready)
        else:
            # the row was (prematurely) evicted: fall back to DRAM
            self.stats.inc("evicted_misses")
            self._demand_fetch(addr, on_ready)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _consume(self, corelet_id: int, entry: _Entry) -> None:
        c = entry.consumed[corelet_id] = entry.consumed[corelet_id] + 1
        if c > self.slab_words:
            raise AssertionError(
                f"corelet {corelet_id} consumed {c} words of its "
                f"{self.slab_words}-word slab in row {entry.row}: kernels "
                "must read each input word exactly once"
            )
        if c == self.slab_words:
            entry.df_count += 1
        if self.observer is not None:
            self.observer.on_consume(corelet_id, entry)
        if c == self.slab_words:
            # head saturation may unblock waiting leading corelets even if
            # no further demand fetch retries the (still-set) PFT trigger
            if (entry.df_count >= self.n_corelets and self._alloc_waiters
                    and self.entries and entry is self.entries[0]):
                self._advance_allocation(max(w[1] for w in self._alloc_waiters))

    def _try_trigger(self, entry: _Entry) -> None:
        """First-touch (or retried) prefetch trigger from ``entry``:
        allocate until the tail runs ``prefetch_ahead`` rows past it."""
        done = self._advance_allocation(entry.row + self.prefetch_ahead)
        if done:
            entry.pft = False  # else: deferred, a later demand retries
        if self.observer is not None:
            self.observer.on_trigger(entry, done)

    def _advance_allocation(self, target_row: int) -> bool:
        """Allocate rows up to ``target_row`` (clamped); returns False if
        flow control deferred before reaching the target."""
        target = min(target_row, self.last_row)
        while self._next_row <= target:
            if len(self.entries) >= self.n_entries:
                head = self.entries[0]
                if head.df_count < self.n_corelets:
                    if self.flow_control:
                        # defer: PFT stays set so a later demand fetch retries
                        self.stats.inc("flow_defers")
                        if self.on_full_defer is not None:
                            self.on_full_defer()
                        return False
                    self._evict_head(premature=True)
                else:
                    self._evict_head(premature=False)
            self._allocate_next()
        return True

    def _evict_head(self, premature: bool) -> None:
        head = self.entries.popleft()
        if self.observer is not None:
            self.observer.on_evict(head, premature)
        del self._by_row[head.row]
        if premature:
            self.stats.inc("premature_evictions")
            # threads blocked on the evicted entry's fill fall back to DRAM
            for corelet_id, cb in head.fill_waiters:
                slab_base = head.row * self.row_words + corelet_id * self.slab_words
                self._demand_fetch(slab_base, cb)
            head.fill_waiters.clear()

    def _allocate_next(self) -> None:
        row = self._next_row
        self._next_row += 1
        entry = _Entry(row, self.n_corelets)
        # words of this row already consumed through fallback demand
        # fetches count toward the DF accounting
        pre = self._preconsumed.pop(row, None)
        if pre is not None:
            entry.consumed = pre
            entry.df_count = sum(1 for c in pre if c >= self.slab_words)
        self.entries.append(entry)
        self._by_row[row] = entry
        if self.observer is not None:
            self.observer.on_alloc(entry)
        self.stats.inc("rows_prefetched")
        base = row * self.row_words
        self.mc.access(base, self.row_words, callback=self._fill, tag=entry)
        # leading corelets waiting for this allocation become fill waiters
        if self._alloc_waiters:
            still = []
            for corelet_id, wrow, cb in self._alloc_waiters:
                if wrow == row:
                    entry.fill_waiters.append((corelet_id, cb))
                else:
                    still.append((corelet_id, wrow, cb))
            self._alloc_waiters = still

    def _fill(self, req: DramRequest) -> None:
        entry = req.tag
        entry.fill_done_ps = self.engine.now
        if self.observer is not None:
            self.observer.on_fill(entry)
        waiters, entry.fill_waiters = entry.fill_waiters, []
        for corelet_id, cb in waiters:
            self._consume(corelet_id, entry)
            cb(self.engine.now, PBAccessResult.FILL_WAIT)

    # ------------------------------------------------------------------
    # evicted-row fallback path (block-granular, MSHR-merged)
    # ------------------------------------------------------------------
    def _demand_fetch(self, addr: int, on_ready: Callable[[int, str], None]) -> None:
        block = addr // self.demand_block_words
        waiters = self._demand_inflight.get(block)
        if waiters is not None:
            waiters.append(on_ready)
            return
        self._demand_inflight[block] = [on_ready]
        base = block * self.demand_block_words
        self.stats.inc("demand_fetches")
        self.mc.access(base, self.demand_block_words, callback=self._demand_fill, tag=block)

    def _demand_fill(self, req: DramRequest) -> None:
        waiters = self._demand_inflight.pop(req.tag, [])
        now = self.engine.now
        for cb in waiters:
            cb(now, PBAccessResult.EVICTED_MISS)

    # ------------------------------------------------------------------
    # introspection (used by tests and the rate controller)
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.entries)

    @property
    def head_row(self) -> Optional[int]:
        return self.entries[0].row if self.entries else None

    @property
    def tail_row(self) -> Optional[int]:
        return self.entries[-1].row if self.entries else None
