"""Per-corelet scratchpad (Millipede local memory, Cell-style, section IV-A).

Holds the partially-reduced live state.  Word-addressed, single-cycle, no
tags - the compiler (here: the workload's ABI setup) guarantees the state
fits, which the constructor enforces.
"""

from __future__ import annotations

import numpy as np

from repro.config import WORD_BYTES


class LocalMemory:
    """Word-addressed scratchpad.

    >>> lm = LocalMemory(64)
    >>> lm.write(3, 7)
    >>> lm.read(3)
    7.0
    """

    def __init__(self, n_words: int):
        if n_words <= 0:
            raise ValueError(f"scratchpad size must be positive, got {n_words}")
        self.n_words = n_words
        self.data = np.zeros(n_words, dtype=np.float64)
        self.reads = 0
        self.writes = 0

    @property
    def n_bytes(self) -> int:
        return self.n_words * WORD_BYTES

    def read(self, addr: int) -> float:
        if not 0 <= addr < self.n_words:
            raise IndexError(f"local read out of range: {addr} (size {self.n_words})")
        self.reads += 1
        return float(self.data[addr])

    def write(self, addr: int, value: float) -> None:
        if not 0 <= addr < self.n_words:
            raise IndexError(f"local write out of range: {addr} (size {self.n_words})")
        self.writes += 1
        self.data[addr] = value

    def snapshot(self) -> np.ndarray:
        """Copy of the contents (the host copy-out of section IV-E)."""
        return self.data.copy()

    @property
    def accesses(self) -> int:
        return self.reads + self.writes
