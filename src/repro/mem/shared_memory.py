"""GPGPU banked shared memory (section III-E / V).

The live state of lane *i*'s threads is striped so it lives entirely in
bank *i* ("the i-th thread's state in the i-th bank"); the SM translates a
thread-private local address ``a`` of the thread on lane ``l`` to physical
word ``a * n_banks + l``, so a warp's 32 simultaneous *irregular* accesses
are conflict-free - this is how the paper's GPGPU sidesteps uncoalesced
indirect accesses.  The model still detects conflicts generically (a
property test asserts the striping really is conflict-free) and charges the
crossbar energy that makes shared memory "power-hungry" in Fig. 4.
"""

from __future__ import annotations

import numpy as np


class BankedSharedMemory:
    """Word-interleaved multi-banked scratchpad with conflict accounting.

    >>> sm = BankedSharedMemory(n_words=64, n_banks=4)
    >>> sm.conflict_cycles([0, 1, 2, 3])   # four distinct banks
    1
    >>> sm.conflict_cycles([0, 4, 8])      # all in bank 0
    3
    """

    def __init__(self, n_words: int, n_banks: int):
        if n_words % n_banks:
            raise ValueError(f"{n_words} words not divisible by {n_banks} banks")
        self.n_words = n_words
        self.n_banks = n_banks
        self.data = np.zeros(n_words, dtype=np.float64)
        self.accesses = 0
        self.conflict_extra_cycles = 0

    # ------------------------------------------------------------------
    def translate(self, thread_local_addr: int, lane: int) -> int:
        """Thread-private local address -> physical word (bank striping)."""
        return thread_local_addr * self.n_banks + (lane % self.n_banks)

    def bank_of(self, phys_addr: int) -> int:
        return phys_addr % self.n_banks

    # ------------------------------------------------------------------
    def conflict_cycles(self, phys_addrs: list[int]) -> int:
        """Cycles to serve one warp's simultaneous accesses: the maximum
        number of accesses landing in any single bank."""
        if not phys_addrs:
            return 0
        counts: dict[int, int] = {}
        for a in phys_addrs:
            b = a % self.n_banks
            counts[b] = counts.get(b, 0) + 1
        worst = max(counts.values())
        self.accesses += len(phys_addrs)
        self.conflict_extra_cycles += worst - 1
        return worst

    def read(self, phys_addr: int) -> float:
        if not 0 <= phys_addr < self.n_words:
            raise IndexError(f"shared-memory read out of range: {phys_addr}")
        return float(self.data[phys_addr])

    def write(self, phys_addr: int, value: float) -> None:
        if not 0 <= phys_addr < self.n_words:
            raise IndexError(f"shared-memory write out of range: {phys_addr}")
        self.data[phys_addr] = value
