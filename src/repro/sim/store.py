"""FingerprintStore: a persistent, crash-safe, content-addressed result store.

Campaigns (fig3-fig7, table4, and the design-space sweeps of ROADMAP item
4) are hundreds of independent simulations, each a pure function of its
:class:`~repro.sim.spec.RunSpec`.  The store makes that purity durable:
every completed result is recorded on disk under the spec's
:meth:`~repro.sim.spec.RunSpec.content_hash` fingerprint, so a killed
campaign resumes with zero re-simulation, independent shard processes
merge through one directory, and a config change re-simulates only the
specs whose fingerprints changed (see :mod:`repro.sim.campaign` and
``docs/campaigns.md``).

On-disk layout (all paths under the store root)::

    log/<writer>.jsonl     append-only record segments, one per writer
    index.json             atomic snapshot: fingerprint -> (segment, offset)
    manifests/<name>.json  campaign checkpoints (planned fingerprint lists)
    claims/<fp>.json       advisory work-stealing leases (see below)

Crash and concurrency model
---------------------------
* Each :class:`FingerprintStore` instance appends complete JSON lines to
  its **own** segment file, so concurrent writer processes never share a
  file descriptor and cannot interleave bytes.
* A record is one ``write()`` of one newline-terminated line; a writer
  killed mid-append leaves at most one torn tail line, which every reader
  skips (it is not newline-terminated / not valid JSON).  Records are
  flushed to the OS per append, so a SIGKILL'd process loses nothing it
  reported finished.
* ``index.json`` and manifests are written with the write-temp-then-
  ``os.replace`` idiom, so readers observe either the old or the new
  snapshot, never a partial file.  The index is purely an accelerator:
  :meth:`refresh` (and :meth:`rebuild_index`) recover the exact same
  mapping by scanning the append-only log.
* Duplicate fingerprints are legal (re-simulation, racing shards);
  deterministic simulations make the payloads interchangeable, and the
  scan order (segments sorted by name, offsets ascending, later wins) makes
  the served record deterministic.
* Claim files (``claims/<fingerprint>.json``) are **advisory** leases
  used by work-stealing campaigns (:func:`~repro.sim.campaign.run_campaign`
  with ``steal=True``): a shard claims a fingerprint before simulating it
  so other shards skip it, and a claim whose lease has expired (a
  SIGKILL'd shard) is re-claimable.  They use the same
  write-temp-then-``os.replace`` crash model as ``index.json``; a lost
  claim race duplicates work (benign, see above) but never corrupts.
* :meth:`compact` rewrites every live record into one fresh segment and
  retires the old ones.  The new segment appears atomically (temp +
  ``os.replace``), so a reader observes either the old segments, the
  duplicated intermediate state, or the compacted store - all equivalent.
  A SIGKILL mid-compaction leaves at most duplicates plus a stale index,
  both of which :meth:`rebuild_index` recovers from.  Compaction assumes
  no *writer* is appending concurrently (it is a maintenance operation:
  ``python -m repro.tools store <dir> compact``); a segment that grows
  while compaction runs is left in place, not retired.

The store is duck-compatible with the parent-process-only
:class:`~repro.sim.cache.ResultCache` (``get_spec``/``put_spec``) and
replaces it as the durable tier of :func:`~repro.sim.campaign.run_batch`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
import uuid
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.energy.model import EnergyBreakdown
from repro.sim.driver import RunResult
from repro.sim.spec import RunSpec

#: on-disk schema version stamped into records, index, and manifests
SCHEMA = 1

#: default work-stealing lease duration; must comfortably exceed one
#: spec's simulation time so live shards are not raided mid-run
DEFAULT_LEASE_S = 300.0

_LOG_DIR = "log"
_MANIFEST_DIR = "manifests"
_CLAIM_DIR = "claims"
_INDEX_NAME = "index.json"
_NAME_RE = re.compile(r"[^A-Za-z0-9_.-]+")


# ----------------------------------------------------------------------
# result serialization (shared with repro.sim.cache.ResultCache)
# ----------------------------------------------------------------------
def result_to_payload(result: RunResult) -> dict:
    """JSON-portable dict of everything durable in a :class:`RunResult`.

    ``reduced`` (numpy arrays) and ``trace`` (artifacts written by
    :mod:`repro.trace`) are dropped - they are re-derivable or stored
    elsewhere, and traced specs bypass the store entirely."""
    payload = dataclasses.asdict(result)
    payload.pop("reduced", None)
    payload.pop("trace", None)
    payload["energy"] = {
        "core_dynamic_j": result.energy.core_dynamic_j,
        "idle_j": result.energy.idle_j,
        "dram_j": result.energy.dram_j,
        "leakage_j": result.energy.leakage_j,
    }
    return payload


def result_from_payload(payload: dict) -> RunResult:
    """Inverse of :func:`result_to_payload` (``reduced``/``trace`` empty)."""
    payload = dict(payload)
    payload["energy"] = EnergyBreakdown(**payload["energy"])
    payload.pop("reduced", None)
    payload.pop("trace", None)
    return RunResult(reduced={}, trace=None, **payload)


def canonical_result_blob(result: "RunResult | dict") -> bytes:
    """Byte-stable identity of a simulation *outcome*: sorted JSON of the
    stored payload minus ``host_seconds`` - the only field allowed to
    differ between bit-identical re-executions.  Two runs of the same
    fingerprint must produce equal blobs (the resume/shard/delta tests
    assert exactly this)."""
    payload = (result_to_payload(result) if isinstance(result, RunResult)
               else dict(result))
    payload.pop("host_seconds", None)
    return json.dumps(payload, sort_keys=True).encode()


def plan_fingerprint(fingerprints: Sequence[str]) -> str:
    """Stable short hash of an ordered fingerprint list (campaign identity)."""
    blob = "\n".join(fingerprints).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` crash-safely: write a uniquely-named
    temp file in full, flush+fsync it, then ``os.replace`` it over the
    live name.  The sanctioned implementation of the shared-path write
    discipline the FS lint rules enforce (``docs/linting.md``)."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    with tmp.open("w") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class FingerprintStore:
    """Append-only, multi-writer result store keyed by RunSpec fingerprints.

    >>> with FingerprintStore("campaign_store") as store:  # doctest: +SKIP
    ...     store.put_spec(spec, result)                   # doctest: +SKIP
    ...     store.get_spec(spec).finish_ps                 # doctest: +SKIP
    """

    def __init__(self, root: "Path | str",
                 max_segment_bytes: Optional[int] = None):
        self.root = Path(root)
        self.log_dir = self.root / _LOG_DIR
        self.manifest_dir = self.root / _MANIFEST_DIR
        self.claim_dir = self.root / _CLAIM_DIR
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        self.claim_dir.mkdir(parents=True, exist_ok=True)
        #: stable identity of this writer instance: names its log segment
        #: and signs its work-stealing claims
        self.writer_id = f"w{os.getpid()}-{uuid.uuid4().hex[:8]}"
        #: roll to a fresh segment once the current one would exceed this
        #: (None = unbounded); a size cap bounds per-segment scan/compact
        #: cost for long-lived stores
        self.max_segment_bytes = max_segment_bytes
        #: fingerprint -> (segment name, byte offset, byte length)
        self._index: dict[str, tuple[str, int, int]] = {}
        #: segment name -> bytes scanned so far (complete lines only)
        self._scanned: dict[str, int] = {}
        #: fingerprint -> parsed record (records read or written this process)
        self._records: dict[str, dict] = {}
        #: complete-but-unparseable lines seen while scanning (corruption)
        self.corrupt_lines = 0
        self._segment_name: Optional[str] = None
        self._segment_file = None
        self._load_index()
        self.refresh()

    def __enter__(self) -> "FingerprintStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        """Seed the in-memory index from the atomic snapshot, dropping
        entries the log can no longer back (defensive; the snapshot is an
        accelerator, never the source of truth)."""
        path = self.root / _INDEX_NAME
        try:
            snap = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(snap, dict) or snap.get("schema") != SCHEMA:
            return
        sizes: dict[str, int] = {}
        for name, scanned in sorted(snap.get("segments", {}).items()):
            seg = self.log_dir / name
            try:
                size = seg.stat().st_size
            except OSError:
                continue
            if size >= scanned:  # append-only: shorter means a foreign reset
                sizes[name] = size
                self._scanned[name] = int(scanned)
        for fp, loc in snap.get("records", {}).items():
            name, offset, length = loc
            if name in sizes and offset + length <= sizes[name]:
                self._index[fp] = (name, int(offset), int(length))

    def refresh(self) -> int:
        """Scan log segments for records appended since the last scan
        (other writers' segments included).  Returns how many new records
        were indexed.  Torn tail lines (a writer killed mid-append, or one
        still writing) are left unscanned and retried on the next call."""
        found = 0
        for seg in sorted(self.log_dir.glob("*.jsonl")):
            name = seg.name
            start = self._scanned.get(name, 0)
            try:
                with seg.open("rb") as f:
                    f.seek(start)
                    data = f.read()
            except OSError:
                continue
            offset = start
            for line in data.split(b"\n")[:-1]:  # last chunk: torn or empty
                length = len(line) + 1
                if line:
                    fp = self._index_line(name, offset, line)
                    if fp is not None:
                        found += 1
                offset += length
            self._scanned[name] = offset
        return found

    def _index_line(self, name: str, offset: int, line: bytes) -> Optional[str]:
        try:
            rec = json.loads(line)
            fp = rec["fingerprint"]
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
            self.corrupt_lines += 1
            return None
        self._index[fp] = (name, offset, len(line) + 1)
        self._records[fp] = rec
        return fp

    def get_record(self, fingerprint: str) -> Optional[dict]:
        """The full stored record (``fingerprint``/``spec``/``result``)."""
        rec = self._records.get(fingerprint)
        if rec is not None:
            return rec
        loc = self._index.get(fingerprint)
        if loc is None:
            return None
        name, offset, length = loc
        try:
            with (self.log_dir / name).open("rb") as f:
                f.seek(offset)
                line = f.read(length)
            rec = json.loads(line)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        self._records[fingerprint] = rec
        return rec

    def get(self, fingerprint: str) -> Optional[RunResult]:
        rec = self.get_record(fingerprint)
        if rec is None:
            return None
        try:
            return result_from_payload(rec["result"])
        except (KeyError, TypeError):
            return None

    def get_spec(self, spec: RunSpec) -> Optional[RunResult]:
        return self.get(spec.content_hash())

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _own_segment(self):
        """This writer's append-only segment (created on first write, and
        re-opened - same name, append mode - after a :meth:`close`, so one
        store instance never scatters records over multiple segments)."""
        if self._segment_file is None:
            if self._segment_name is None:
                self._segment_name = f"{self.writer_id}.jsonl"
            self._segment_file = (self.log_dir / self._segment_name).open("ab")
        return self._segment_file

    def put(self, spec: RunSpec, result: RunResult) -> str:
        """Append one record; returns the fingerprint.  The line is flushed
        to the OS before returning, so a subsequent SIGKILL cannot lose it."""
        fp = spec.content_hash()
        rec = {
            "schema": SCHEMA,
            "fingerprint": fp,
            "spec": spec.to_dict(),
            "result": result_to_payload(result),
        }
        line = (json.dumps(rec, sort_keys=True) + "\n").encode()
        f = self._own_segment()
        offset = f.tell()
        if (self.max_segment_bytes is not None and offset > 0
                and offset + len(line) > self.max_segment_bytes):
            # size cap: retire this segment and start a fresh one
            self.close()
            self._segment_name = f"w{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
            f = self._own_segment()
            offset = f.tell()
        f.write(line)
        f.flush()
        self._index[fp] = (self._segment_name, offset, len(line))
        self._scanned[self._segment_name] = offset + len(line)
        self._records[fp] = rec
        return fp

    def put_spec(self, spec: RunSpec, result: RunResult) -> str:
        """ResultCache-compatible spelling of :meth:`put`."""
        return self.put(spec, result)

    def close(self) -> None:
        """Close the open segment file descriptor (idempotent).  Reading
        still works afterwards, and a later :meth:`put` re-opens the same
        segment in append mode."""
        if self._segment_file is not None:
            self._segment_file.close()
            self._segment_file = None

    # ------------------------------------------------------------------
    # work-stealing claims (advisory leases; docs/campaigns.md)
    # ------------------------------------------------------------------
    def claim_path(self, fingerprint: str) -> Path:
        return self.claim_dir / f"{fingerprint}.json"

    def read_claim(self, fingerprint: str) -> Optional[dict]:
        """The raw claim record for a fingerprint, or None."""
        try:
            claim = json.loads(self.claim_path(fingerprint).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(claim, dict) or claim.get("schema") != SCHEMA:
            return None
        return claim

    def claim_holder(self, fingerprint: str) -> Optional[str]:
        """Writer id of a live (unexpired) claim on ``fingerprint``, or
        None when unclaimed / expired / unreadable."""
        claim = self.read_claim(fingerprint)
        if claim is None:
            return None
        try:
            expires = float(claim["expires_unix"])
        except (KeyError, TypeError, ValueError):
            return None
        # leases are cross-host wall-clock deadlines, never simulation input
        now = time.time()  # repro-lint: disable=DET002
        if expires <= now:
            return None
        writer = claim.get("writer")
        return writer if isinstance(writer, str) else None

    def try_claim(self, fingerprint: str,
                  lease_s: float = DEFAULT_LEASE_S,
                  resimulate: bool = False) -> bool:
        """Claim ``fingerprint`` for this writer for ``lease_s`` seconds.

        Returns False when the record already exists (unless
        ``resimulate``, the ``resume=False`` campaign path) or another
        writer holds a live lease.  The claim is **advisory**: the atomic
        write-then-read-back narrows the claim race to a tiny window, and
        a lost race merely duplicates one deterministic simulation (the
        store's duplicate model makes the payloads interchangeable)."""
        if fingerprint in self._index and not resimulate:
            return False
        holder = self.claim_holder(fingerprint)
        if holder is not None and holder != self.writer_id:
            return False
        now = time.time()  # repro-lint: disable=DET002
        claim = {
            "schema": SCHEMA,
            "fingerprint": fingerprint,
            "writer": self.writer_id,
            "claimed_unix": now,
            "expires_unix": now + float(lease_s),
        }
        try:
            atomic_write_text(self.claim_path(fingerprint),
                               json.dumps(claim, indent=1, sort_keys=True))
        except OSError:
            return False
        winner = self.read_claim(fingerprint)
        return winner is not None and winner.get("writer") == self.writer_id

    def release_claim(self, fingerprint: str) -> None:
        """Drop this writer's claim on ``fingerprint`` (no-op for claims
        held by others - their lease must expire on its own)."""
        claim = self.read_claim(fingerprint)
        if claim is not None and claim.get("writer") == self.writer_id:
            try:
                self.claim_path(fingerprint).unlink()
            except OSError:
                pass

    def clear_stale_claims(self) -> int:
        """Remove claims whose lease expired or whose record now exists;
        returns how many were removed (the ``gc`` path)."""
        removed = 0
        for path in sorted(self.claim_dir.glob("*.json")):
            fingerprint = path.stem
            if (fingerprint in self._index
                    or self.claim_holder(fingerprint) is None):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # ------------------------------------------------------------------
    # index snapshot
    # ------------------------------------------------------------------
    def write_index(self) -> Path:
        """Atomically snapshot the in-memory index to ``index.json``."""
        snap = {
            "schema": SCHEMA,
            "segments": dict(sorted(self._scanned.items())),
            "records": {
                fp: list(loc) for fp, loc in sorted(self._index.items())
            },
        }
        path = self.root / _INDEX_NAME
        atomic_write_text(path, json.dumps(snap, indent=1, sort_keys=True))
        return path

    def rebuild_index(self) -> Path:
        """Drop every in-memory/on-disk index structure and rebuild the
        mapping from the append-only log alone (recovery path)."""
        self._index.clear()
        self._scanned.clear()
        self._records.clear()
        self.corrupt_lines = 0
        self.refresh()
        return self.write_index()

    # ------------------------------------------------------------------
    # hygiene: compaction and garbage collection
    # ------------------------------------------------------------------
    def segments(self) -> list[str]:
        """Names of every log segment on disk, in scan order."""
        return sorted(p.name for p in self.log_dir.glob("*.jsonl"))

    def compact(self) -> dict:
        """Rewrite every live record into one fresh segment and retire the
        old segments.  Returns a summary dict.

        The compacted segment is written to a temp file and published with
        ``os.replace``, so readers never observe a partial segment; a
        crash between publish and retirement leaves duplicates, which the
        normal scan model tolerates and a second ``compact()`` removes.
        Assumes no concurrent *writer* (maintenance operation); any
        segment that grows while compaction runs is left in place."""
        self.close()
        self.refresh()
        old: dict[str, int] = {}
        for name in self.segments():
            try:
                old[name] = (self.log_dir / name).stat().st_size
            except OSError:
                continue
        bytes_before = sum(old.values())
        live_bytes = sum(loc[2] for loc in self._index.values())
        if len(old) <= 1 and live_bytes == bytes_before:
            # a single fully-live segment: nothing to collapse
            return {
                "compacted": False,
                "records": len(self._index),
                "segments_before": len(old),
                "segments_after": len(old),
                "bytes_before": bytes_before,
                "bytes_after": bytes_before,
                "segments_retired": 0,
            }
        new_name = f"c{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        tmp = self.log_dir / (
            f"{new_name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        with tmp.open("wb") as f:
            for fingerprint in sorted(self._index):
                rec = self.get_record(fingerprint)
                if rec is None:
                    continue
                f.write((json.dumps(rec, sort_keys=True) + "\n").encode())
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.log_dir / new_name)
        retired = 0
        for name, size in old.items():
            path = self.log_dir / name
            try:
                if path.stat().st_size != size:
                    continue  # grew mid-compaction: a live writer owns it
                path.unlink()
                retired += 1
            except OSError:
                continue
        # the old in-memory offsets are dead; rebuild from the log
        self._index.clear()
        self._scanned.clear()
        self._records.clear()
        self.corrupt_lines = 0
        self._segment_name = None  # a later put starts a fresh segment
        self.refresh()
        self.clear_stale_claims()
        self.write_index()
        bytes_after = sum(
            (self.log_dir / name).stat().st_size for name in self.segments())
        return {
            "compacted": True,
            "records": len(self._index),
            "segments_before": len(old),
            "segments_after": len(self.segments()),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "segments_retired": retired,
        }

    def gc(self) -> dict:
        """Light hygiene pass: drop orphan temp files (crashed atomic
        writes), expired/satisfied claims, and empty segments.  Unlike
        :meth:`compact` this never rewrites records."""
        self.refresh()
        tmp_removed = 0
        for directory in (self.root, self.log_dir, self.manifest_dir,
                          self.claim_dir):
            for tmp in directory.glob("*.tmp-*"):
                try:
                    tmp.unlink()
                    tmp_removed += 1
                except OSError:
                    pass
        claims_removed = self.clear_stale_claims()
        empty_removed = 0
        for name in self.segments():
            if name == self._segment_name:
                continue
            path = self.log_dir / name
            try:
                if path.stat().st_size == 0:
                    path.unlink()
                    self._scanned.pop(name, None)
                    empty_removed += 1
            except OSError:
                pass
        return {
            "tmp_files_removed": tmp_removed,
            "stale_claims_removed": claims_removed,
            "empty_segments_removed": empty_removed,
        }

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def fingerprints(self) -> frozenset[str]:
        return frozenset(self._index)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._index

    def __len__(self) -> int:
        return len(self._index)

    def records(self) -> Iterator[dict]:
        """Every stored record, in deterministic fingerprint order."""
        for fp in sorted(self._index):
            rec = self.get_record(fp)
            if rec is not None:
                yield rec

    # ------------------------------------------------------------------
    # campaign manifests
    # ------------------------------------------------------------------
    @staticmethod
    def safe_name(name: str) -> str:
        return _NAME_RE.sub("-", name) or "campaign"

    def manifest_path(self, name: str) -> Path:
        return self.manifest_dir / f"{self.safe_name(name)}.json"

    def write_manifest(self, name: str, specs: Sequence[RunSpec],
                       shard: Optional[tuple[int, int]] = None) -> Path:
        """Checkpoint a campaign plan: the ordered fingerprint list plus
        each spec's dict, so a later process can resume or delta-plan the
        campaign without re-deriving the spec list.  Atomic (replace)."""
        import datetime

        order: list[str] = []
        by_fp: dict[str, dict] = {}
        for spec in specs:
            fp = spec.content_hash()
            if fp not in by_fp:
                order.append(fp)
                by_fp[fp] = spec.to_dict()
        # operational metadata for failure recovery, never simulation input
        stamp = datetime.datetime.now(datetime.timezone.utc)  # repro-lint: disable=DET002
        manifest = {
            "schema": SCHEMA,
            "name": self.safe_name(name),
            "plan": plan_fingerprint(order),
            "total": len(order),
            "order": order,
            "specs": by_fp,
            "shard": list(shard) if shard is not None else None,
            "saved_iso": stamp.isoformat(timespec="seconds"),
        }
        path = self.manifest_path(name)
        atomic_write_text(path, json.dumps(manifest, indent=1, sort_keys=True))
        return path

    def read_manifest(self, name: str) -> Optional[dict]:
        try:
            manifest = json.loads(self.manifest_path(name).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(manifest, dict) or manifest.get("schema") != SCHEMA:
            return None
        return manifest

    def manifest_names(self) -> list[str]:
        return sorted(p.stem for p in self.manifest_dir.glob("*.json"))

    def manifest_specs(self, name: str) -> Optional[list[RunSpec]]:
        """Reconstruct the planned spec list from a manifest (resume
        without the original command line)."""
        manifest = self.read_manifest(name)
        if manifest is None:
            return None
        return [RunSpec.from_dict(manifest["specs"][fp])
                for fp in manifest["order"]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FingerprintStore({str(self.root)!r}, records={len(self)})"
