"""One-call simulation runs.

``run("millipede", "count")`` builds the workload, instantiates the
architecture on a fresh event engine, executes to completion, validates
the simulated reduction against the golden NumPy result, and returns a
:class:`RunResult` with timing, counters, and the energy breakdown.

Entry points
------------
==================================  ===================================
call                                use case
==================================  ===================================
``run(RunSpec(...))``               one run from a frozen, serializable
                                    spec (the canonical form)
``run(arch, workload, ...)``        legacy positional form; builds the
                                    ``RunSpec`` for you
``run_many(arches, workload)``      one workload across architectures,
                                    sharing the built dataset/kernel
``campaign.run_batch(specs, ...)``  deduplicated, cached, multiprocess
                                    fan-out over arbitrary spec lists
==================================  ===================================

Architecture keys
-----------------
===================  =====================================================
key                  paper configuration
===================  =====================================================
``gpgpu``            GPGPU SM with cache-block prefetch (Fig. 3 baseline)
``vws``              Variable Warp Sizing (4-wide warps)
``vws-row``          VWS + row-orientedness + flow control
``ssmc``             plain sea-of-simple-MIMD-cores with prefetch
``millipede-nofc``   Millipede without flow control
``millipede``        Millipede (row prefetch + flow control)
``millipede-rm``     Millipede + coarse-grain rate matching
``millipede-bar``    no flow control, software barriers per record (§VI-A)
``multicore``        conventional 8-core OoO node (Fig. 5)
===================  =====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Callable, Optional, Union

from repro.arch.gpgpu import GpgpuSM
from repro.arch.multicore import MulticoreProcessor
from repro.arch.ssmc import SsmcProcessor
from repro.arch.vws import VwsRowSM, VwsSM
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.millipede import MillipedeProcessor
from repro.dram.dram import GlobalMemory
from repro.energy.model import EnergyBreakdown, compute_energy
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.workloads.base import BuiltWorkload, Workload
from repro.workloads.registry import WORKLOADS, get_workload


def _millipede_cfg(cfg: SystemConfig, **kw) -> SystemConfig:
    return cfg.with_millipede(**kw)


#: SIMT architectures use the word-interleaved thread->record mapping for
#: coalescing; MIMD architectures use the chunked (slab) mapping so each
#: core's per-row footprint is private and contiguous (section IV-C)
TRAVERSAL: dict[str, str] = {
    "gpgpu": "interleaved",
    "vws": "interleaved",
    "vws-row": "interleaved",
}

#: key -> (processor class, config transform, needs record barriers,
#: supports the vector trace-replay backend).  Every architecture is
#: vectorizable: the MIMD cores replay per-thread traces
#: (:class:`repro.core.replay.ReplayMixin`), and the SIMT SMs replay
#: per-warp traces from the PDOM divergence engine
#: (:class:`repro.core.replay.SimtReplay`).
ARCHITECTURES: dict[str, tuple[type, Callable[[SystemConfig], SystemConfig], bool, bool]] = {
    "gpgpu": (GpgpuSM, lambda c: c, False, True),
    "vws": (VwsSM, lambda c: c, False, True),
    "vws-row": (VwsRowSM, lambda c: _millipede_cfg(c, flow_control=True), False, True),
    "ssmc": (SsmcProcessor, lambda c: c, False, True),
    "millipede": (
        MillipedeProcessor,
        lambda c: _millipede_cfg(c, flow_control=True, rate_match=False),
        False,
        True,
    ),
    "millipede-nofc": (
        MillipedeProcessor,
        lambda c: _millipede_cfg(c, flow_control=False, rate_match=False),
        False,
        True,
    ),
    "millipede-rm": (
        MillipedeProcessor,
        lambda c: _millipede_cfg(c, flow_control=True, rate_match=True),
        False,
        True,
    ),
    "millipede-bar": (
        MillipedeProcessor,
        lambda c: _millipede_cfg(c, flow_control=False, record_barriers=True),
        True,
        True,
    ),
    "multicore": (MulticoreProcessor, lambda c: c, False, True),
}


@dataclass
class RunResult:
    """Everything one simulation produced."""

    arch: str
    workload: str
    n_records: int
    input_words: int
    finish_ps: int
    energy: EnergyBreakdown
    collected: dict[str, float]
    stats: dict[str, float]
    validated: bool
    host_seconds: float
    reduced: dict = dc_field(default_factory=dict)
    #: :class:`repro.trace.TraceResult` when the spec had ``trace=True``;
    #: None otherwise (and always None for cache-served results)
    trace: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def runtime_s(self) -> float:
        return self.finish_ps / 1e12

    @property
    def throughput_words_per_s(self) -> float:
        return self.input_words / self.runtime_s if self.finish_ps else 0.0

    @property
    def insts_per_word(self) -> float:
        return self.collected.get("instructions", 0.0) / self.input_words

    @property
    def branches_per_inst(self) -> float:
        i = self.collected.get("instructions", 0.0)
        return self.collected.get("branches", 0.0) / i if i else 0.0

    @property
    def row_miss_rate(self) -> float:
        acc = self.stats.get("dram.row_accesses", 0.0) or self.stats.get(
            "offchip.row_accesses", 0.0
        )
        miss = self.stats.get("dram.row_misses", 0.0) or self.stats.get(
            "offchip.row_misses", 0.0
        )
        return miss / acc if acc else 0.0

    @property
    def energy_per_word_j(self) -> float:
        return self.energy.total_j / self.input_words

    @property
    def energy_delay(self) -> float:
        return self.energy.total_j * self.runtime_s

    def speedup_over(self, other: "RunResult") -> float:
        """Throughput ratio (robust to differing record counts)."""
        return self.throughput_words_per_s / other.throughput_words_per_s

    def summary(self) -> str:
        return (
            f"{self.arch:>15s}/{self.workload:<9s} "
            f"{self.runtime_s * 1e6:9.1f} us  "
            f"{self.throughput_words_per_s / 1e9:6.3f} Gword/s  "
            f"{self.energy.total_j * 1e6:8.2f} uJ  "
            f"rowmiss {self.row_miss_rate:5.3f}"
        )


def run(
    arch: Union[str, RunSpec],
    workload: Union[str, Workload, None] = None,
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    validate: bool = True,
    built: Optional[BuiltWorkload] = None,
    sanitize: bool = False,
    trace: bool = False,
    backend: str = "reference",
    options: Optional[ExecOptions] = None,
    trace_interval_ps: Optional[int] = None,
    probe: Optional[Callable] = None,
) -> RunResult:
    """Simulate one :class:`RunSpec` (or the legacy positional form) and
    validate the result.

    This is the legacy entry point kept for compatibility; new code
    should prefer :func:`repro.api.run`, which takes an
    :class:`~repro.sim.options.ExecOptions`.  Passing ``options=`` here
    supersedes the flat ``validate``/``sanitize``/``trace``/``backend``
    flags (mixing non-default flags with ``options`` is an error).

    ``run(RunSpec(...))`` is the canonical entry point;
    ``run("millipede", "count", ...)`` builds the spec for you and also
    accepts an unregistered :class:`Workload` *object*.  Pass ``built``
    to reuse a prepared workload (e.g. across the architectures of one
    figure) - it must have been built with the matching thread count.

    ``sanitize=True`` attaches :class:`repro.sanitize.SimSanitizer`
    runtime invariant checking; violations raise
    :class:`repro.sanitize.InvariantViolation`.  ``trace=True`` attaches
    :class:`repro.trace.SimTracer` timeline sampling + host profiling
    (both observers compose in one run) and fills the result's ``trace``
    field; ``trace_interval_ps`` overrides the sampling cadence.
    ``probe(proc, engine, sanitizer)`` is called after construction and
    before the first event (tests use it to install fault injectors); it
    keeps ``run`` usable from tests without exposing internals.
    """
    if isinstance(arch, RunSpec):
        if workload is not None:
            raise TypeError(
                "run(RunSpec) takes no separate workload argument; "
                "put the workload name in the spec"
            )
        spec = arch
        wl = get_workload(spec.workload)
    else:
        wl = get_workload(workload) if isinstance(workload, str) else workload
        if wl is None:
            raise TypeError("run(arch, workload): workload is required")
        if options is None:
            options = ExecOptions(validate=validate, sanitize=sanitize,
                                  trace=trace, backend=backend)
        elif not (validate, sanitize, trace, backend) == (True, False, False, "reference"):
            raise TypeError("run(): pass either options= or flat flags, not both")
        spec = RunSpec(
            arch=arch,
            workload=wl.name,
            config=config,
            n_records=n_records,
            seed=seed,
            options=options,
        )
    return _execute(spec, wl, built, probe=probe,
                    trace_interval_ps=trace_interval_ps)


def _execute(
    spec: RunSpec, wl: Workload, built: Optional[BuiltWorkload] = None,
    probe: Optional[Callable] = None,
    trace_interval_ps: Optional[int] = None,
) -> RunResult:
    """Run one spec with an already-resolved workload object."""
    proc_cls, transform, needs_barriers, vectorizable = ARCHITECTURES[spec.arch]
    cfg = transform(spec.config)
    arch, validate = spec.arch, spec.validate
    n_threads = spec.n_threads
    traversal = spec.traversal

    if built is None:
        built = wl.build(
            n_threads,
            n_records=spec.n_records,
            block_records=cfg.dram.row_words,
            seed=spec.seed,
            record_barrier=needs_barriers,
            traversal=traversal,
        )
    elif built.n_threads != n_threads or built.traversal != traversal:
        raise ValueError(
            f"prebuilt workload has {built.n_threads} threads / "
            f"{built.traversal} traversal; {arch} needs {n_threads} / {traversal}"
        )

    engine = Engine(scheduler=spec.options.scheduler)
    stats = Stats()
    sanitizer = None
    if spec.sanitize:
        from repro.sanitize import SimSanitizer

        sanitizer = SimSanitizer()
        sanitizer.attach_engine(engine)
    tracer = None
    if spec.trace:
        from repro.trace import DEFAULT_INTERVAL_PS, SimTracer

        tracer = SimTracer(interval_ps=trace_interval_ps
                           or DEFAULT_INTERVAL_PS)
        tracer.attach_engine(engine)
    gm = GlobalMemory.from_array(built.memory_image)
    # layout metadata enables oracle stream prefetch (baselines) and the
    # safe-wait record-span hint (prefetch buffer)
    extra_kwargs = {"layout": built.layout}
    if spec.backend == "vector" and vectorizable:
        extra_kwargs["backend"] = "vector"
    proc = proc_cls(
        engine,
        cfg,
        built.program,
        gm,
        stats,
        input_base_word=built.input_base_word,
        input_end_word=built.input_end_word,
        **extra_kwargs,
    )
    if built.initial_state is not None:
        proc.load_initial_state(built.initial_state)
    proc.set_thread_args(built.thread_args)
    if sanitizer is not None:
        sanitizer.attach_processor(proc)
    if tracer is not None:
        tracer.attach_processor(proc)
    if probe is not None:
        probe(proc, engine, sanitizer)

    t0 = time.perf_counter()
    proc.start()
    engine.run()
    host_seconds = time.perf_counter() - t0
    if sanitizer is not None:
        # end-of-run invariants first: a stuck barrier generation is a
        # better diagnosis than the generic never-finished error below
        sanitizer.finalize(proc)
    if not proc.done:
        raise RuntimeError(
            f"{arch}/{wl.name}: event queue drained but the processor never "
            "finished (likely a blocked-thread deadlock)"
        )

    reduced = {}
    if validate:
        reduced = built.validate(proc.thread_states())

    trace_result = None
    if tracer is not None:
        trace_result = tracer.result(meta={
            "arch": arch,
            "workload": wl.name,
            "n_records": built.n_records,
            "seed": spec.seed,
            "finish_ps": proc.finish_ps,
        })

    collected = proc.collect()
    energy = compute_energy(arch, cfg, stats, collected)
    return RunResult(
        arch=arch,
        workload=wl.name,
        n_records=built.n_records,
        input_words=built.input_words,
        finish_ps=proc.finish_ps,
        energy=energy,
        collected=collected,
        stats=stats.as_dict(),
        validated=validate,
        host_seconds=host_seconds,
        reduced=reduced,
        trace=trace_result,
    )


def run_many(
    arches: list[str],
    workload: Union[str, Workload],
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    validate: bool = True,
) -> dict[str, RunResult]:
    """Run one workload across several architectures, reusing the built
    dataset/kernel wherever thread counts agree.

    Registered workloads route through :func:`repro.sim.campaign.run_batch`
    (serially), so they share its dedup/build-reuse machinery; unregistered
    :class:`Workload` objects keep the in-process shared-build loop.
    """
    wl = get_workload(workload) if isinstance(workload, str) else workload
    if wl.name in WORKLOADS:
        from repro.sim.campaign import run_batch

        specs = [
            RunSpec(a, wl.name, config=config, n_records=n_records,
                    seed=seed, options=ExecOptions(validate=validate))
            for a in arches
        ]
        return dict(zip(arches, run_batch(specs, workers=1)))

    results: dict[str, RunResult] = {}
    shared: dict[tuple[int, bool, str], BuiltWorkload] = {}
    for arch in arches:
        _, transform, needs_barriers, _ = ARCHITECTURES[arch]
        cfg = transform(config)
        if arch == "multicore":
            n_threads = cfg.multicore.n_cores * cfg.multicore.n_threads
        else:
            n_threads = cfg.core.n_cores * cfg.core.n_threads
        traversal = TRAVERSAL.get(arch, "chunked")
        key = (n_threads, needs_barriers, traversal)
        if key not in shared:
            shared[key] = wl.build(
                n_threads,
                n_records=n_records,
                block_records=cfg.dram.row_words,
                seed=seed,
                record_barrier=needs_barriers,
                traversal=traversal,
            )
        results[arch] = run(
            arch, wl, config=config, seed=seed, validate=validate, built=shared[key]
        )
    return results
