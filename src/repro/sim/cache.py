"""Disk cache for experiment results.

Full-figure sweeps re-run dozens of simulations; the cache keys each run
by (architecture, workload, record count, seed, config fingerprint) so the
experiment harness and the benchmark suite never repeat identical runs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional

from repro.config import SystemConfig
from repro.energy.model import EnergyBreakdown
from repro.sim.driver import RunResult
from repro.sim.spec import RunSpec


def config_fingerprint(cfg: SystemConfig) -> str:
    """Stable short hash of every config field."""
    return cfg.fingerprint()


class ResultCache:
    """JSON-file-per-result cache under ``root``."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, arch: str, workload: str, n_records: Optional[int],
              seed: int, cfg: SystemConfig) -> Path:
        key = f"{arch}-{workload}-{n_records}-{seed}-{config_fingerprint(cfg)}"
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, arch: str, workload: str, n_records: Optional[int],
            seed: int, cfg: SystemConfig) -> Optional[RunResult]:
        path = self._path(arch, workload, n_records, seed, cfg)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        payload["energy"] = EnergyBreakdown(**payload["energy"])
        payload.pop("reduced", None)
        payload.pop("trace", None)
        return RunResult(reduced={}, trace=None, **payload)

    def put(self, result: RunResult, n_records: Optional[int],
            seed: int, cfg: SystemConfig) -> Path:
        path = self._path(result.arch, result.workload, n_records, seed, cfg)
        payload = dataclasses.asdict(result)
        payload.pop("reduced", None)  # numpy arrays are not JSON-portable
        payload.pop("trace", None)    # trace artifacts are written to disk
        #                               by repro.trace, not the result cache
        payload["energy"] = {
            "core_dynamic_j": result.energy.core_dynamic_j,
            "idle_j": result.energy.idle_j,
            "dram_j": result.energy.dram_j,
            "leakage_j": result.energy.leakage_j,
        }
        path.write_text(json.dumps(payload))
        return path

    # ------------------------------------------------------------------
    # RunSpec-keyed interface (same on-disk scheme as get/put, so entries
    # written by either interface are shared)
    # ------------------------------------------------------------------
    def get_spec(self, spec: RunSpec) -> Optional[RunResult]:
        return self.get(spec.arch, spec.workload, spec.n_records, spec.seed,
                        spec.config)

    def put_spec(self, spec: RunSpec, result: RunResult) -> Path:
        return self.put(result, spec.n_records, spec.seed, spec.config)

    def clear(self) -> int:
        n = 0
        for p in self.root.glob("*.json"):
            p.unlink()
            n += 1
        return n
