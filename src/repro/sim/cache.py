"""Disk cache for experiment results.

Full-figure sweeps re-run dozens of simulations; the cache keys each run
by (architecture, workload, record count, seed, config fingerprint) so the
experiment harness and the benchmark suite never repeat identical runs.

This is the *session* tier: one JSON file per result, written only from
the campaign parent process (never from pool workers), with no
crash-consistency story.  The *durable* tier - append-only records, an
atomic index, safe concurrent writers, resume/shard/delta campaigns - is
:class:`repro.sim.store.FingerprintStore`; both serialize results through
the same :func:`~repro.sim.store.result_to_payload` /
:func:`~repro.sim.store.result_from_payload` pair, so they store
interchangeable payloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.config import SystemConfig
from repro.sim.driver import RunResult
from repro.sim.spec import RunSpec
from repro.sim.store import result_from_payload, result_to_payload


def config_fingerprint(cfg: SystemConfig) -> str:
    """Stable short hash of every config field."""
    return cfg.fingerprint()


class ResultCache:
    """JSON-file-per-result cache under ``root``."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, arch: str, workload: str, n_records: Optional[int],
              seed: int, cfg: SystemConfig) -> Path:
        key = f"{arch}-{workload}-{n_records}-{seed}-{config_fingerprint(cfg)}"
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, arch: str, workload: str, n_records: Optional[int],
            seed: int, cfg: SystemConfig) -> Optional[RunResult]:
        path = self._path(arch, workload, n_records, seed, cfg)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return result_from_payload(payload)

    def put(self, result: RunResult, n_records: Optional[int],
            seed: int, cfg: SystemConfig) -> Path:
        path = self._path(result.arch, result.workload, n_records, seed, cfg)
        # reduced (numpy) and trace artifacts are dropped by the shared
        # payload serializer; repro.trace owns trace persistence
        path.write_text(json.dumps(result_to_payload(result)))
        return path

    # ------------------------------------------------------------------
    # RunSpec-keyed interface (same on-disk scheme as get/put, so entries
    # written by either interface are shared)
    # ------------------------------------------------------------------
    def get_spec(self, spec: RunSpec) -> Optional[RunResult]:
        return self.get(spec.arch, spec.workload, spec.n_records, spec.seed,
                        spec.config)

    def put_spec(self, spec: RunSpec, result: RunResult) -> Path:
        return self.put(result, spec.n_records, spec.seed, spec.config)

    def clear(self) -> int:
        n = 0
        for p in self.root.glob("*.json"):
            p.unlink()
            n += 1
        return n
