"""Campaign runner: deduplicated, cached, multiprocess batches of RunSpecs.

Every figure/table sweep is a cross product of independent simulations,
each a pure function of its :class:`RunSpec`.  :func:`run_batch` exploits
that:

* **dedup** - identical specs (by content hash) are simulated once,
* **cache** - the parent process consults/populates a result tier (the
  session-scoped :class:`~repro.sim.cache.ResultCache` or the durable
  :class:`~repro.sim.store.FingerprintStore`) before and after dispatch,
  so workers never touch the cache directory (no concurrent-write races),
* **fan-out** - cache misses are distributed over a ``multiprocessing``
  pool; each worker keeps a per-process :class:`BuiltWorkload` memo keyed
  by :meth:`RunSpec.build_key`, so the dataset/kernel for one
  (workload, threads, barriers, traversal) group is built once per worker
  (the same reuse ``run_many`` performs in-process),
* **progress** - an optional callback receives a :class:`BatchProgress`
  event as each result lands (cache hits first, then live results in
  completion order), carrying cumulative hit/miss counters.

Simulations are deterministic, so ``run_batch(specs, workers=N)`` returns
bit-identical results for any ``N`` (only the ``host_seconds`` wall-clock
field varies).

:func:`run_campaign` layers durability on top (see ``docs/campaigns.md``):
results land in a :class:`~repro.sim.store.FingerprintStore`, a manifest
checkpoints the planned fingerprint list, a killed campaign **resumes**
with only the missing fingerprints re-simulated, independent processes
**shard** one spec list (``shard=(i, n)``) and merge through the shared
store, and a config change turns into a **delta campaign** - only specs
whose fingerprints changed are simulated (:func:`plan_campaign` previews
exactly which).

Sharded campaigns **work-steal** by default: ``shard=(i, n)`` is a hint
for initial partition order, not a hard assignment.  Each shard claims
pending fingerprints through small atomic lease files in the shared
store (``claims/``), works its own round-robin slice first, then steals
whatever is still unclaimed - so a straggler shard no longer idles the
others, and a SIGKILL'd shard's leases expire and its work is picked up.
``steal=False`` restores the static :func:`shard_specs` split.

>>> from repro.sim.campaign import cross, run_batch, run_campaign
>>> specs = cross(["ssmc", "millipede"], ["count", "kmeans"], n_records=2048)
>>> results = run_batch(specs, workers=4)          # doctest: +SKIP
>>> report = run_campaign(specs, store="campaign_store")  # doctest: +SKIP
>>> report.misses                                  # doctest: +SKIP
0
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sim.cache import ResultCache
from repro.sim.driver import RunResult, _execute
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.sim.store import DEFAULT_LEASE_S, FingerprintStore, plan_fingerprint
from repro.workloads.base import BuiltWorkload
from repro.workloads.registry import get_workload

#: builds kept per process before the memo resets (bounds memory when a
#: campaign sweeps many distinct datasets)
_MEMO_LIMIT = 16

#: per-worker-process BuiltWorkload memo (see _run_with_memo)
_WORKER_MEMO: dict[tuple, BuiltWorkload] = {}


@dataclass(frozen=True)
class BatchProgress:
    """One per-spec completion event streamed to ``run_batch(progress=...)``."""

    spec: RunSpec
    result: RunResult
    cached: bool  #: served from the cache/store tier without simulating
    done: int  #: completed unique specs so far (including this one)
    total: int  #: unique specs in the batch
    #: cumulative cache/store hits so far (including this event when
    #: ``cached``); in a resumed campaign this is the resumed-spec count
    hits: int = 0

    @property
    def misses(self) -> int:
        """Cumulative live simulations so far."""
        return self.done - self.hits

    @property
    def host_seconds(self) -> float:
        """Host wall-clock *this batch* spent on the spec: the live
        simulation's wall-clock, or 0.0 for cache hits (the cached
        result's own wall-clock is :attr:`sim_host_seconds`)."""
        return 0.0 if self.cached else self.result.host_seconds

    @property
    def sim_host_seconds(self) -> float:
        """Wall-clock of the simulation that produced the result - this
        batch's, or the original run that populated the cache."""
        return self.result.host_seconds

    def __str__(self) -> str:
        tag = "cached" if self.cached else f"{self.host_seconds:.2f}s"
        return (f"[{self.done}/{self.total}] {self.spec} ({tag}; "
                f"{self.hits} hit / {self.misses} miss)")


def cross(
    arches: Sequence[str],
    workloads: Sequence[str],
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    validate: bool = True,
    sanitize: bool = False,
    trace: bool = False,
    options: Optional[ExecOptions] = None,
) -> list[RunSpec]:
    """Specs for the full arch x workload cross product, workload-major
    (matches the figures' iteration order).

    ``options`` supersedes the flat ``validate``/``sanitize``/``trace``
    flags (kept as a compatibility shim; mixing the two is an error)."""
    if options is None:
        options = ExecOptions(validate=validate, sanitize=sanitize, trace=trace)
    elif (validate, sanitize, trace) != (True, False, False):
        raise TypeError("cross(): pass either options= or flat flags, not both")
    return [
        RunSpec(a, wl, config=config, n_records=n_records, seed=seed,
                options=options)
        for wl in workloads
        for a in arches
    ]


def _run_with_memo(spec: RunSpec, memo: dict[tuple, BuiltWorkload]) -> RunResult:
    """Execute one spec, reusing/building its BuiltWorkload via ``memo``."""
    wl = get_workload(spec.workload)
    key = spec.build_key()
    built = memo.get(key)
    if built is None:
        cfg = spec.effective_config
        built = wl.build(
            spec.n_threads,
            n_records=spec.n_records,
            block_records=cfg.dram.row_words,
            seed=spec.seed,
            record_barrier=spec.needs_barriers,
            traversal=spec.traversal,
        )
        if len(memo) >= _MEMO_LIMIT:
            # evict only the oldest build (dict insertion order -
            # deterministic); clearing the whole memo would throw away
            # the hot build mid-group
            memo.pop(next(iter(memo)))
        memo[key] = built
    return _execute(spec, wl, built)


def _pool_run(item: tuple[str, RunSpec]) -> tuple[str, RunResult]:
    """Top-level worker entry (must be picklable); cache-oblivious."""
    spec_hash, spec = item
    return spec_hash, _run_with_memo(spec, _WORKER_MEMO)


def run_batch(
    specs: Iterable[RunSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[BatchProgress], None]] = None,
) -> list[RunResult]:
    """Run a batch of specs, returning results aligned with ``specs``.

    ``workers > 1`` fans cache misses out over a process pool; ``workers
    <= 1`` runs serially in-process.  Duplicate specs are simulated once
    and share one result object.  ``cache`` is any result tier with
    ``get_spec``/``put_spec`` (a :class:`ResultCache` or a durable
    :class:`~repro.sim.store.FingerprintStore`); it is consulted and
    populated only from the calling process.
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, RunSpec):
            raise TypeError(f"run_batch takes RunSpecs, got {type(spec).__name__}")
        get_workload(spec.workload)  # fail fast on unknown workloads

    # dedup by content hash, preserving first-seen order
    unique: dict[str, RunSpec] = {}
    for spec in specs:
        unique.setdefault(spec.content_hash(), spec)

    total = len(unique)
    done = 0
    hits = 0
    results: dict[str, RunResult] = {}

    def _finish(spec_hash: str, result: RunResult, cached: bool) -> None:
        nonlocal done, hits
        results[spec_hash] = result
        done += 1
        hits += cached
        if not cached and cache is not None:
            spec = unique[spec_hash]
            cache.put_spec(spec, result)
        if progress is not None:
            progress(BatchProgress(unique[spec_hash], result, cached, done,
                                   total, hits))

    pending: list[tuple[str, RunSpec]] = []
    for spec_hash, spec in unique.items():
        # traced specs always simulate: a cached RunResult carries no
        # trace, and the trace artifact is the point of the run
        hit = (cache.get_spec(spec)
               if cache is not None and not spec.trace else None)
        if hit is not None:
            _finish(spec_hash, hit, cached=True)
        else:
            pending.append((spec_hash, spec))

    if pending:
        if workers > 1:
            with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
                for spec_hash, result in pool.imap_unordered(_pool_run, pending):
                    _finish(spec_hash, result, cached=False)
        else:
            memo: dict[tuple, BuiltWorkload] = {}
            for spec_hash, spec in pending:
                _finish(spec_hash, _run_with_memo(spec, memo), cached=False)

    return [results[spec.content_hash()] for spec in specs]


# ----------------------------------------------------------------------
# persistent campaigns: resume, shard, delta (docs/campaigns.md)
# ----------------------------------------------------------------------
def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"i/n"`` (1-based) into ``(i, n)``; e.g. ``"2/3"``."""
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(f"shard must look like 'i/n' (e.g. 2/3), got {text!r}")
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard {text!r}: need 1 <= i <= n")
    return index, count


def dedup_specs(specs: Iterable[RunSpec]) -> dict[str, RunSpec]:
    """fingerprint -> spec, first-seen order (the campaign's canonical
    ordering; sharding and manifests both derive from it)."""
    unique: dict[str, RunSpec] = {}
    for spec in specs:
        unique.setdefault(spec.content_hash(), spec)
    return unique


def shard_specs(specs: Iterable[RunSpec], index: int, count: int) -> list[RunSpec]:
    """Deterministic 1-based shard ``index`` of ``count``: the deduped
    campaign is split round-robin by position, so every spec lands in
    exactly one shard regardless of which process computes the split."""
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard {index}/{count}: need 1 <= i <= n")
    unique = dedup_specs(specs)
    return [spec for pos, spec in enumerate(unique.values())
            if pos % count == index - 1]


@dataclass(frozen=True)
class CampaignPlan:
    """What :func:`run_campaign` would do, without doing it.

    The delta-campaign primitive: build the new spec list (changed config
    and all), plan it against the store, and ``to_run`` is exactly the
    specs whose fingerprints are not already recorded."""

    specs: list[RunSpec]  #: this shard's deduped specs, campaign order
    fingerprints: list[str]  #: content hashes aligned with ``specs``
    to_run: list[RunSpec]  #: specs missing from the store (would simulate)
    done: list[str]  #: fingerprints already in the store (would resume)
    campaign_total: int  #: unique specs in the whole campaign (all shards)
    shard: Optional[tuple[int, int]] = None

    @property
    def complete(self) -> bool:
        return not self.to_run


def plan_campaign(
    specs: Iterable[RunSpec],
    store: "FingerprintStore | Path | str",
    shard: Optional[tuple[int, int]] = None,
) -> CampaignPlan:
    """Plan ``specs`` against ``store``: dedup, shard-filter, and split
    into already-recorded fingerprints vs. specs that need simulation."""
    store = coerce_store(store)
    store.refresh()
    unique = dedup_specs(specs)
    if shard is not None:
        index, count = shard
        mine = {fp: spec for pos, (fp, spec) in enumerate(unique.items())
                if pos % count == index - 1}
    else:
        mine = unique
    # traced specs always re-simulate (stored records carry no trace
    # artifact; run_batch bypasses the tier for them the same way)
    done = [fp for fp, spec in mine.items() if fp in store and not spec.trace]
    to_run = [spec for fp, spec in mine.items()
              if fp not in store or spec.trace]
    return CampaignPlan(
        specs=list(mine.values()),
        fingerprints=list(mine),
        to_run=to_run,
        done=done,
        campaign_total=len(unique),
        shard=shard,
    )


def coerce_store(store: "FingerprintStore | Path | str") -> FingerprintStore:
    if isinstance(store, FingerprintStore):
        return store
    if isinstance(store, (str, Path)):
        return FingerprintStore(store)
    raise TypeError(
        f"store must be a FingerprintStore or a directory path, "
        f"got {type(store).__name__}"
    )


class _WriteOnlyTier:
    """Store adapter for ``resume=False``: never serves hits, still
    records every fresh result durably."""

    def __init__(self, store: FingerprintStore):
        self._store = store

    def get_spec(self, spec: RunSpec) -> None:
        return None

    def put_spec(self, spec: RunSpec, result: RunResult) -> str:
        return self._store.put_spec(spec, result)


class _CampaignTally:
    """Campaign counters derived from the :class:`BatchProgress` stream.

    The report's ``resumed``/``hits``/``misses`` must reflect what the
    batch *actually did* - a racing shard landing records mid-campaign,
    traced specs, or stolen work all diverge from the plan-time view - so
    every completion funnels through here, and the user's ``progress``
    callback sees campaign-cumulative counters."""

    def __init__(self, progress: Optional[Callable[[BatchProgress], None]],
                 total: int):
        self.progress = progress
        self.total = total
        self.done = 0
        self.hits = 0
        self.misses = 0

    def emit(self, spec: RunSpec, result: RunResult, cached: bool) -> None:
        self.done += 1
        if cached:
            self.hits += 1
        else:
            self.misses += 1
        if self.progress is not None:
            self.progress(BatchProgress(spec, result, cached, self.done,
                                        self.total, self.hits))

    def __call__(self, event: BatchProgress) -> None:
        """run_batch progress hook: re-emit with campaign-cumulative
        counters (the batch's own done/total are wave-local)."""
        self.emit(event.spec, event.result, event.cached)


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` call did, plus store-backed access
    to the merged campaign (other shards' results included)."""

    store: FingerprintStore
    name: str  #: manifest name under ``<store>/manifests/``
    plan: CampaignPlan
    resumed: int  #: planned specs served from pre-existing records
    hits: int  #: specs served without simulating (== ``resumed`` here)
    misses: int  #: specs simulated by this call
    stolen: int = 0  #: simulated specs outside this call's shard hint
    results: dict[str, RunResult] = dc_field(default_factory=dict)

    @property
    def shard(self) -> Optional[tuple[int, int]]:
        return self.plan.shard

    def gather(self, specs: Sequence[RunSpec]) -> list[Optional[RunResult]]:
        """Results aligned with ``specs``, merged across shards: this
        call's live results where available, store-served otherwise,
        ``None`` for fingerprints no shard has completed yet."""
        self.store.refresh()
        out: list[Optional[RunResult]] = []
        for spec in specs:
            fp = spec.content_hash()
            result = self.results.get(fp)
            out.append(result if result is not None else self.store.get(fp))
        return out

    def missing(self, specs: Sequence[RunSpec]) -> list[RunSpec]:
        """Specs (deduped) still absent from the store - the work other
        shards must finish before :meth:`gather` is complete."""
        self.store.refresh()
        return [spec for fp, spec in dedup_specs(specs).items()
                if fp not in self.store]

    def summary(self) -> str:
        tag = (f" shard {self.shard[0]}/{self.shard[1]}"
               if self.shard is not None else "")
        stolen = f" ({self.stolen} stolen)" if self.stolen else ""
        return (f"campaign {self.name!r}{tag}: {len(self.plan.specs)} specs, "
                f"{self.hits} resumed from store, {self.misses} simulated"
                f"{stolen} ({len(self.store)} records in store)")


def _steal_order(unique: dict[str, RunSpec],
                 shard: Optional[tuple[int, int]]) -> \
        tuple[list[tuple[str, RunSpec]], frozenset[str]]:
    """Claim order for a stealing shard: its own round-robin slice first
    (the ``shard`` hint), the rest of the campaign after.  Returns the
    ordered (fingerprint, spec) list and the hinted slice's fingerprints."""
    items = list(unique.items())
    if shard is None:
        return items, frozenset(unique)
    index, count = shard
    mine = [(fp, spec) for pos, (fp, spec) in enumerate(items)
            if pos % count == index - 1]
    rest = [(fp, spec) for pos, (fp, spec) in enumerate(items)
            if pos % count != index - 1]
    return mine + rest, frozenset(fp for fp, _ in mine)


def _run_stealing(
    store: FingerprintStore,
    unique: dict[str, RunSpec],
    shard: Optional[tuple[int, int]],
    workers: int,
    resume: bool,
    lease_s: float,
    tally: _CampaignTally,
) -> tuple[dict[str, RunResult], int]:
    """Work-stealing campaign body: serve store hits, then repeatedly
    claim-and-simulate waves of pending fingerprints until everything is
    recorded or the remainder is leased to other live shards.

    Claims are taken one wave at a time (wave = the worker count), so a
    shard only holds leases on work it is actively simulating - that is
    what lets an idle shard steal a straggler's untouched slice."""
    order, mine = _steal_order(unique, shard)
    results: dict[str, RunResult] = {}
    stolen = 0
    tier = store if resume else _WriteOnlyTier(store)

    def serve_hit(fp: str, spec: RunSpec) -> bool:
        if not resume or spec.trace:
            return False
        result = store.get(fp)
        if result is None:
            return False
        results[fp] = result
        tally.emit(spec, result, cached=True)
        return True

    pending = [(fp, spec) for fp, spec in order if not serve_hit(fp, spec)]
    wave_cap = max(workers, 1)
    while pending:
        store.refresh()
        wave: list[tuple[str, RunSpec]] = []
        rest: list[tuple[str, RunSpec]] = []
        for fp, spec in pending:
            if len(wave) >= wave_cap:
                rest.append((fp, spec))
            elif serve_hit(fp, spec):  # another shard finished it
                continue
            elif store.try_claim(fp, lease_s=lease_s, resimulate=not resume):
                wave.append((fp, spec))
            else:
                rest.append((fp, spec))  # live foreign lease; retry later
        if not wave:
            # everything left is leased to live shards - their leases
            # would expire eventually, but they are working, not dead
            break
        wave_cached: set[str] = set()

        def forward(event: BatchProgress) -> None:
            tally.emit(event.spec, event.result, event.cached)
            if event.cached:
                wave_cached.add(event.spec.content_hash())

        batch = run_batch([spec for _, spec in wave], workers=workers,
                          cache=tier, progress=forward)
        for (fp, spec), result in zip(wave, batch):
            results[fp] = result
            store.release_claim(fp)
            if fp not in mine and fp not in wave_cached:
                stolen += 1
        pending = rest
    return results, stolen


def run_campaign(
    specs: Iterable[RunSpec],
    store: "FingerprintStore | Path | str",
    workers: int = 1,
    shard: Optional[tuple[int, int]] = None,
    resume: bool = True,
    name: Optional[str] = None,
    progress: Optional[Callable[[BatchProgress], None]] = None,
    steal: Optional[bool] = None,
    lease_s: float = DEFAULT_LEASE_S,
) -> CampaignReport:
    """Run a campaign against a persistent :class:`FingerprintStore`.

    The durable counterpart of :func:`run_batch`: the deduped spec list is
    checkpointed as a manifest, fingerprints already recorded in the store
    are **not** re-simulated (``resume=True``; a killed campaign picks up
    where its store left off), and ``resume=False`` forces re-simulation
    of every planned spec while still appending the fresh records.

    ``shard=(i, n)`` splits the campaign across independent
    processes/hosts that merge through the shared store directory.  With
    ``steal`` (the default whenever ``shard`` is given) the split is a
    *hint*: this shard claims its own round-robin slice first through
    atomic lease files, then steals whatever other shards have not
    claimed, so a straggler never idles the rest, and a killed shard's
    leases expire (``lease_s``) and its work is re-claimed.  With
    ``steal=False`` the slice is a hard assignment (the static
    :func:`shard_specs` split).  A stealing report covers the *whole*
    campaign (its plan is unsharded); ``report.stolen`` counts the
    simulated specs that were outside this shard's hinted slice.

    The report's ``resumed``/``hits``/``misses`` counters are derived
    from the :class:`BatchProgress` stream - what actually happened, not
    the plan-time view.

    If ``store`` is a path, the store instance is created for this call
    and closed before returning (reads, e.g. ``report.gather``, still
    work); pass a :class:`FingerprintStore` to manage its lifetime
    yourself.

    Returns a :class:`CampaignReport`; use :meth:`CampaignReport.gather`
    to assemble the merged result list once every shard has run.
    """
    owned = not isinstance(store, FingerprintStore)
    store = coerce_store(store)
    try:
        specs = list(specs)
        if steal is None:
            steal = shard is not None
        # a stealing shard may end up running any spec in the campaign,
        # so its plan (and report) covers the full deduped list
        plan = plan_campaign(specs, store, shard=None if steal else shard)
        if steal and shard is not None:
            plan = dataclasses.replace(plan, shard=shard)
        if name is None:
            name = "c-" + plan_fingerprint(list(dedup_specs(specs)))
        store.write_manifest(name, specs, shard=shard)

        tally = _CampaignTally(progress, total=len(plan.specs))
        if steal:
            results, stolen = _run_stealing(
                store, dedup_specs(plan.specs), shard, workers, resume,
                lease_s, tally)
        else:
            tier = store if resume else _WriteOnlyTier(store)
            batch = run_batch(plan.specs, workers=workers, cache=tier,
                              progress=tally)
            results = dict(zip(plan.fingerprints, batch))
            stolen = 0
        store.write_index()

        return CampaignReport(
            store=store,
            name=store.safe_name(name),
            plan=plan,
            resumed=tally.hits,
            hits=tally.hits,
            misses=tally.misses,
            stolen=stolen,
            results=results,
        )
    finally:
        if owned:
            store.close()
