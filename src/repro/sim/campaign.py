"""Campaign runner: deduplicated, cached, multiprocess batches of RunSpecs.

Every figure/table sweep is a cross product of independent simulations,
each a pure function of its :class:`RunSpec`.  :func:`run_batch` exploits
that:

* **dedup** - identical specs (by content hash) are simulated once,
* **cache** - the parent process consults/populates a
  :class:`~repro.sim.cache.ResultCache` before and after dispatch, so
  workers never touch the cache directory (no concurrent-write races),
* **fan-out** - cache misses are distributed over a ``multiprocessing``
  pool; each worker keeps a per-process :class:`BuiltWorkload` memo keyed
  by :meth:`RunSpec.build_key`, so the dataset/kernel for one
  (workload, threads, barriers, traversal) group is built once per worker
  (the same reuse ``run_many`` performs in-process),
* **progress** - an optional callback receives a :class:`BatchProgress`
  event as each result lands (cache hits first, then live results in
  completion order).

Simulations are deterministic, so ``run_batch(specs, workers=N)`` returns
bit-identical results for any ``N`` (only the ``host_seconds`` wall-clock
field varies).

>>> from repro.sim.campaign import cross, run_batch
>>> specs = cross(["ssmc", "millipede"], ["count", "kmeans"], n_records=2048)
>>> results = run_batch(specs, workers=4)          # doctest: +SKIP
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sim.cache import ResultCache
from repro.sim.driver import RunResult, _execute
from repro.sim.options import ExecOptions
from repro.sim.spec import RunSpec
from repro.workloads.base import BuiltWorkload
from repro.workloads.registry import get_workload

#: builds kept per process before the memo resets (bounds memory when a
#: campaign sweeps many distinct datasets)
_MEMO_LIMIT = 16

#: per-worker-process BuiltWorkload memo (see _run_with_memo)
_WORKER_MEMO: dict[tuple, BuiltWorkload] = {}


@dataclass(frozen=True)
class BatchProgress:
    """One per-spec completion event streamed to ``run_batch(progress=...)``."""

    spec: RunSpec
    result: RunResult
    cached: bool  #: served from the ResultCache without simulating
    done: int  #: completed unique specs so far (including this one)
    total: int  #: unique specs in the batch

    @property
    def host_seconds(self) -> float:
        """Host wall-clock *this batch* spent on the spec: the live
        simulation's wall-clock, or 0.0 for cache hits (the cached
        result's own wall-clock is :attr:`sim_host_seconds`)."""
        return 0.0 if self.cached else self.result.host_seconds

    @property
    def sim_host_seconds(self) -> float:
        """Wall-clock of the simulation that produced the result - this
        batch's, or the original run that populated the cache."""
        return self.result.host_seconds

    def __str__(self) -> str:
        tag = "cached" if self.cached else f"{self.host_seconds:.2f}s"
        return f"[{self.done}/{self.total}] {self.spec} ({tag})"


def cross(
    arches: Sequence[str],
    workloads: Sequence[str],
    config: SystemConfig = DEFAULT_CONFIG,
    n_records: Optional[int] = None,
    seed: int = 0,
    validate: bool = True,
    sanitize: bool = False,
    trace: bool = False,
    options: Optional[ExecOptions] = None,
) -> list[RunSpec]:
    """Specs for the full arch x workload cross product, workload-major
    (matches the figures' iteration order).

    ``options`` supersedes the flat ``validate``/``sanitize``/``trace``
    flags (kept as a compatibility shim; mixing the two is an error)."""
    if options is None:
        options = ExecOptions(validate=validate, sanitize=sanitize, trace=trace)
    elif (validate, sanitize, trace) != (True, False, False):
        raise TypeError("cross(): pass either options= or flat flags, not both")
    return [
        RunSpec(a, wl, config=config, n_records=n_records, seed=seed,
                options=options)
        for wl in workloads
        for a in arches
    ]


def _run_with_memo(spec: RunSpec, memo: dict[tuple, BuiltWorkload]) -> RunResult:
    """Execute one spec, reusing/building its BuiltWorkload via ``memo``."""
    wl = get_workload(spec.workload)
    key = spec.build_key()
    built = memo.get(key)
    if built is None:
        cfg = spec.effective_config
        built = wl.build(
            spec.n_threads,
            n_records=spec.n_records,
            block_records=cfg.dram.row_words,
            seed=spec.seed,
            record_barrier=spec.needs_barriers,
            traversal=spec.traversal,
        )
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        memo[key] = built
    return _execute(spec, wl, built)


def _pool_run(item: tuple[str, RunSpec]) -> tuple[str, RunResult]:
    """Top-level worker entry (must be picklable); cache-oblivious."""
    spec_hash, spec = item
    return spec_hash, _run_with_memo(spec, _WORKER_MEMO)


def run_batch(
    specs: Iterable[RunSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[BatchProgress], None]] = None,
) -> list[RunResult]:
    """Run a batch of specs, returning results aligned with ``specs``.

    ``workers > 1`` fans cache misses out over a process pool; ``workers
    <= 1`` runs serially in-process.  Duplicate specs are simulated once
    and share one result object.  The cache (if given) is consulted and
    populated only from the calling process.
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, RunSpec):
            raise TypeError(f"run_batch takes RunSpecs, got {type(spec).__name__}")
        get_workload(spec.workload)  # fail fast on unknown workloads

    # dedup by content hash, preserving first-seen order
    unique: dict[str, RunSpec] = {}
    for spec in specs:
        unique.setdefault(spec.content_hash(), spec)

    total = len(unique)
    done = 0
    results: dict[str, RunResult] = {}

    def _finish(spec_hash: str, result: RunResult, cached: bool) -> None:
        nonlocal done
        results[spec_hash] = result
        done += 1
        if not cached and cache is not None:
            spec = unique[spec_hash]
            cache.put_spec(spec, result)
        if progress is not None:
            progress(BatchProgress(unique[spec_hash], result, cached, done, total))

    pending: list[tuple[str, RunSpec]] = []
    for spec_hash, spec in unique.items():
        # traced specs always simulate: a cached RunResult carries no
        # trace, and the trace artifact is the point of the run
        hit = (cache.get_spec(spec)
               if cache is not None and not spec.trace else None)
        if hit is not None:
            _finish(spec_hash, hit, cached=True)
        else:
            pending.append((spec_hash, spec))

    if pending:
        if workers > 1:
            with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
                for spec_hash, result in pool.imap_unordered(_pool_run, pending):
                    _finish(spec_hash, result, cached=False)
        else:
            memo: dict[tuple, BuiltWorkload] = {}
            for spec_hash, spec in pending:
                _finish(spec_hash, _run_with_memo(spec, memo), cached=False)

    return [results[spec.content_hash()] for spec in specs]
