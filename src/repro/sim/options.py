"""ExecOptions: the *how* of a simulation, separated from the *what*.

A :class:`RunSpec` describes what to simulate (architecture, workload,
config, record count, seed); :class:`ExecOptions` describes how to execute
it (validation, runtime invariant checking, tracing, and which execution
backend runs the instruction streams).  Keeping the execution knobs in one
frozen, keyword-only sub-value stops ``RunSpec`` from accreting a new flat
boolean per PR and gives every entry point (:mod:`repro.api`,
:func:`repro.sim.driver.run`, :func:`repro.sim.campaign.run_batch`) one
vocabulary.

Backends
--------
===============  ========================================================
``reference``    per-instruction Python interpreter + binary-heap event
                 queue (the original, always-available path)
``calendar``     reference interpreter + the calendar-queue event
                 scheduler (isolates scheduler equivalence)
``vector``       NumPy batch interpreter: each processor's threads are
                 functionally executed as vectorized column ops over
                 basic blocks (:mod:`repro.isa.vector`), then the event
                 engine replays the recorded traces with the
                 calendar-queue scheduler.  Bit-identical statistics,
                 metrics and reduced results.  Covers every registered
                 architecture: MIMD cores replay per-thread traces, and
                 the SIMT SMs (``gpgpu``/``vws``/``vws-row``) replay
                 per-warp traces from the lockstep PDOM divergence
                 engine.  Pass ``backend="reference"`` explicitly to opt
                 any run back onto the per-instruction interpreter.
===============  ========================================================

All backends are proven byte-identical by ``tests/test_backends.py``; see
``docs/backends.md`` for selection guidance and the equivalence argument.

>>> ExecOptions(backend="vector").backend
'vector'
>>> ExecOptions() == ExecOptions(validate=True)
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

#: execution backends, in "most reference" to "most optimized" order
BACKENDS = ("reference", "calendar", "vector")

#: backends that use the calendar-queue event scheduler
_CALENDAR_BACKENDS = ("calendar", "vector")


@dataclass(frozen=True, kw_only=True)
class ExecOptions:
    """How one simulation executes.  Frozen, keyword-only, hashable.

    Every field is part of the spec identity: sanitized, traced, and
    fast-backend results are cached separately even though a clean run
    produces identical statistics under all of them.
    """

    #: compare the simulated reduction against the golden NumPy model
    validate: bool = True
    #: attach :class:`repro.sanitize.SimSanitizer` runtime invariant checking
    sanitize: bool = False
    #: attach :class:`repro.trace.SimTracer` timeline sampling + profiling
    trace: bool = False
    #: execution backend (see module docstring); one of :data:`BACKENDS`
    backend: str = "reference"

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(BACKENDS)}"
            )

    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> str:
        """Event-queue implementation this backend runs on."""
        return "calendar" if self.backend in _CALENDAR_BACKENDS else "heap"

    def replace(self, **kwargs) -> "ExecOptions":
        return dc_replace(self, **kwargs)

    # ------------------------------------------------------------------
    # serialization (flat keys: the RunSpec wire format predates this
    # class, and content hashes of pre-redesign specs must stay stable)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Flat JSON-portable dict.  ``backend`` is emitted only when
        non-default so every pre-``backend`` spec keeps its content hash."""
        out = {
            "validate": self.validate,
            "sanitize": self.sanitize,
            "trace": self.trace,
        }
        if self.backend != "reference":
            out["backend"] = self.backend
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExecOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected by the
        constructor, absent keys keep their defaults (dicts from before a
        field existed deserialize to that field's default)."""
        return cls(**data)
