"""RunSpec: the frozen, serializable description of one simulation.

A :class:`RunSpec` is a pure value — (architecture, workload, config,
record count, seed, validate flag, sanitize flag, trace flag) — that fully determines
a simulation's outcome.  Because it is frozen, hashable, picklable, and carries a stable
content hash, it is the unit the campaign runner (:mod:`repro.sim.campaign`)
deduplicates, ships to worker processes, and keys the result cache on.

>>> spec = RunSpec("millipede", "count", n_records=2048)
>>> RunSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace as dc_replace
from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run.

    ``workload`` is a registry *name* (see :mod:`repro.workloads.registry`)
    so specs stay serializable; unregistered :class:`Workload` objects can
    still be run through the legacy ``run(arch, workload_obj)`` path.
    """

    arch: str
    workload: str
    config: SystemConfig = DEFAULT_CONFIG
    n_records: Optional[int] = None
    seed: int = 0
    validate: bool = True
    #: attach :class:`repro.sanitize.SimSanitizer` runtime invariant
    #: checking.  Part of the spec identity (sanitized and unsanitized
    #: results are cached separately) even though a clean sanitized run
    #: produces identical statistics and metrics.
    sanitize: bool = False
    #: attach :class:`repro.trace.SimTracer` timeline sampling + host
    #: profiling; the result carries a :class:`repro.trace.TraceResult`.
    #: Part of the spec identity, though a traced run's statistics are
    #: byte-identical to an untraced run's.  Traced specs bypass cache
    #: *lookup* (a cached result has no trace to return); dicts from
    #: before this field deserialize with ``trace=False``.
    trace: bool = False

    def __post_init__(self):
        # lazy import: driver imports this module at load time
        from repro.sim.driver import ARCHITECTURES

        if self.arch not in ARCHITECTURES:
            raise KeyError(
                f"unknown architecture {self.arch!r}; "
                f"available: {', '.join(ARCHITECTURES)}"
            )
        if self.n_records is not None and self.n_records <= 0:
            raise ValueError(f"n_records must be positive, got {self.n_records}")

    # ------------------------------------------------------------------
    # derived build parameters (shared by driver and campaign)
    # ------------------------------------------------------------------
    @property
    def effective_config(self) -> SystemConfig:
        """The config after the architecture's transform (flow-control /
        rate-match / barrier flags)."""
        from repro.sim.driver import ARCHITECTURES

        _, transform, _ = ARCHITECTURES[self.arch]
        return transform(self.config)

    @property
    def n_threads(self) -> int:
        cfg = self.effective_config
        sub = cfg.multicore if self.arch == "multicore" else cfg.core
        return sub.n_cores * sub.n_threads

    @property
    def traversal(self) -> str:
        from repro.sim.driver import TRAVERSAL

        return TRAVERSAL.get(self.arch, "chunked")

    @property
    def needs_barriers(self) -> bool:
        from repro.sim.driver import ARCHITECTURES

        return ARCHITECTURES[self.arch][2]

    def build_key(self) -> tuple:
        """Specs with equal build keys can share one :class:`BuiltWorkload`
        (same data, same kernel, same thread ABI)."""
        return (
            self.workload,
            self.n_records,
            self.seed,
            self.n_threads,
            self.needs_barriers,
            self.traversal,
            self.effective_config.dram.row_words,
        )

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-portable dict; inverse of :meth:`from_dict`."""
        return {
            "arch": self.arch,
            "workload": self.workload,
            "config": self.config.as_canonical_dict(),
            "n_records": self.n_records,
            "seed": self.seed,
            "validate": self.validate,
            "sanitize": self.sanitize,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        data = dict(data)
        cfg = data.pop("config", None)
        config = SystemConfig.from_dict(cfg) if cfg is not None else DEFAULT_CONFIG
        return cls(config=config, **data)

    def content_hash(self) -> str:
        """Stable hash of every field (including the full config); equal
        specs always hash equal across processes and sessions."""
        blob = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def replace(self, **kwargs) -> "RunSpec":
        return dc_replace(self, **kwargs)

    def __str__(self) -> str:
        n = self.n_records if self.n_records is not None else "default"
        return f"{self.arch}/{self.workload}[n={n},seed={self.seed}]"
