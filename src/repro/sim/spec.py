"""RunSpec: the frozen, serializable description of one simulation.

A :class:`RunSpec` is a pure value — *what* to simulate (architecture,
workload, config, record count, seed) plus *how* to execute it (an
:class:`~repro.sim.options.ExecOptions` sub-value: validate / sanitize /
trace / backend) — that fully determines a simulation's outcome.  Because
it is frozen, hashable, picklable, and carries a stable content hash, it
is the unit the campaign runner (:mod:`repro.sim.campaign`) deduplicates,
ships to worker processes, and keys the result cache on.

>>> spec = RunSpec("millipede", "count", n_records=2048)
>>> RunSpec.from_dict(spec.to_dict()) == spec
True
>>> RunSpec("millipede", "count", options=ExecOptions(backend="vector")).backend
'vector'

Migration note (execution-options redesign)
-------------------------------------------
The execution knobs used to be flat ``RunSpec`` fields.  The constructor,
``replace``, ``to_dict``/``from_dict``, and read-only properties all still
accept/expose the flat spelling (``RunSpec(..., sanitize=True)``,
``spec.sanitize``), so existing callers and serialized specs keep working
— but new code inside ``src/`` should pass ``options=ExecOptions(...)``;
``repro.lint`` rule API001 flags flat-flag construction there.  Content
hashes are unchanged: ``to_dict`` emits the pre-redesign flat keys, with
``backend`` included only when non-default.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace as dc_replace
from typing import Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.sim.options import ExecOptions

#: ExecOptions fields accepted as legacy flat keyword arguments by
#: ``RunSpec(...)``, ``RunSpec.replace``, and ``RunSpec.from_dict``
_OPTION_FLAGS = ("validate", "sanitize", "trace", "backend")


@dataclass(frozen=True, init=False)
class RunSpec:
    """Everything that determines one simulation run.

    ``workload`` is a registry *name* (see :mod:`repro.workloads.registry`)
    so specs stay serializable; unregistered :class:`Workload` objects can
    still be run through the legacy ``run(arch, workload_obj)`` path.

    Execution knobs live in ``options`` (:class:`ExecOptions`); the flat
    keyword spelling (``validate=``/``sanitize=``/``trace=``/``backend=``)
    is accepted for compatibility and folded into ``options``.  Mixing
    ``options=`` with a flat flag is an error — one source of truth.
    """

    arch: str
    workload: str
    config: SystemConfig = DEFAULT_CONFIG
    n_records: Optional[int] = None
    seed: int = 0
    options: ExecOptions = ExecOptions()

    def __init__(
        self,
        arch: str,
        workload: str,
        config: SystemConfig = DEFAULT_CONFIG,
        n_records: Optional[int] = None,
        seed: int = 0,
        options: Optional[ExecOptions] = None,
        *,
        validate: Optional[bool] = None,
        sanitize: Optional[bool] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ):
        flags = {
            k: v
            for k, v in (("validate", validate), ("sanitize", sanitize),
                         ("trace", trace), ("backend", backend))
            if v is not None
        }
        if options is None:
            options = ExecOptions(**flags)
        elif flags:
            raise TypeError(
                f"pass execution flags inside options=ExecOptions(...), "
                f"not alongside it (got both options= and "
                f"{', '.join(sorted(flags))})"
            )
        elif not isinstance(options, ExecOptions):
            raise TypeError(f"options must be ExecOptions, got {type(options).__name__}")
        object.__setattr__(self, "arch", arch)
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "config", config)
        object.__setattr__(self, "n_records", n_records)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "options", options)

        # lazy import: driver imports this module at load time
        from repro.sim.driver import ARCHITECTURES

        if arch not in ARCHITECTURES:
            raise KeyError(
                f"unknown architecture {arch!r}; "
                f"available: {', '.join(ARCHITECTURES)}"
            )
        if n_records is not None and n_records <= 0:
            raise ValueError(f"n_records must be positive, got {n_records}")

    # ------------------------------------------------------------------
    # execution-option views (pre-redesign flat spelling, read-only)
    # ------------------------------------------------------------------
    @property
    def validate(self) -> bool:
        return self.options.validate

    @property
    def sanitize(self) -> bool:
        return self.options.sanitize

    @property
    def trace(self) -> bool:
        return self.options.trace

    @property
    def backend(self) -> str:
        return self.options.backend

    # ------------------------------------------------------------------
    # derived build parameters (shared by driver and campaign)
    # ------------------------------------------------------------------
    @property
    def effective_config(self) -> SystemConfig:
        """The config after the architecture's transform (flow-control /
        rate-match / barrier flags)."""
        from repro.sim.driver import ARCHITECTURES

        return ARCHITECTURES[self.arch][1](self.config)

    @property
    def n_threads(self) -> int:
        cfg = self.effective_config
        sub = cfg.multicore if self.arch == "multicore" else cfg.core
        return sub.n_cores * sub.n_threads

    @property
    def traversal(self) -> str:
        from repro.sim.driver import TRAVERSAL

        return TRAVERSAL.get(self.arch, "chunked")

    @property
    def needs_barriers(self) -> bool:
        from repro.sim.driver import ARCHITECTURES

        return ARCHITECTURES[self.arch][2]

    def build_key(self) -> tuple:
        """Specs with equal build keys can share one :class:`BuiltWorkload`
        (same data, same kernel, same thread ABI)."""
        return (
            self.workload,
            self.n_records,
            self.seed,
            self.n_threads,
            self.needs_barriers,
            self.traversal,
            self.effective_config.dram.row_words,
        )

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-portable dict; inverse of :meth:`from_dict`.

        Execution options are emitted as the pre-redesign flat keys (with
        ``backend`` only when non-default) so content hashes of
        semantically-unchanged specs are stable across the redesign."""
        out = {
            "arch": self.arch,
            "workload": self.workload,
            "config": self.config.as_canonical_dict(),
            "n_records": self.n_records,
            "seed": self.seed,
        }
        out.update(self.options.to_dict())
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Accepts both the current wire format (flat execution-option
        keys) and an explicit nested ``"options"`` dict."""
        data = dict(data)
        cfg = data.pop("config", None)
        config = SystemConfig.from_dict(cfg) if cfg is not None else DEFAULT_CONFIG
        nested = data.pop("options", None)
        flags = {k: data.pop(k) for k in _OPTION_FLAGS if k in data}
        if nested is not None:
            if flags:
                raise ValueError(
                    f"spec dict mixes nested 'options' with flat keys "
                    f"{sorted(flags)}"
                )
            options = ExecOptions.from_dict(nested)
        else:
            options = ExecOptions(**flags)
        return cls(config=config, options=options, **data)

    def content_hash(self) -> str:
        """Stable hash of every field (including the full config); equal
        specs always hash equal across processes and sessions."""
        blob = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def replace(self, **kwargs) -> "RunSpec":
        """Field-wise copy; accepts both real fields and the legacy flat
        execution flags (routed into ``options``)."""
        flags = {k: kwargs.pop(k) for k in _OPTION_FLAGS if k in kwargs}
        if flags:
            if "options" in kwargs:
                raise TypeError(
                    f"replace() got both options= and flat flags {sorted(flags)}"
                )
            kwargs["options"] = self.options.replace(**flags)
        return dc_replace(self, **kwargs)

    def __str__(self) -> str:
        n = self.n_records if self.n_records is not None else "default"
        tag = f",backend={self.backend}" if self.backend != "reference" else ""
        return f"{self.arch}/{self.workload}[n={n},seed={self.seed}{tag}]"
