"""Simulation driver: build, run, validate, and summarize experiments.

:mod:`repro.sim.spec` defines the frozen :class:`RunSpec` value,
:mod:`repro.sim.driver` executes one spec, and :mod:`repro.sim.campaign`
fans batches of specs out over worker processes with dedup and caching.
"""

from repro.sim.cache import ResultCache
from repro.sim.campaign import BatchProgress, cross, run_batch
from repro.sim.driver import ARCHITECTURES, RunResult, run, run_many
from repro.sim.spec import RunSpec

__all__ = [
    "ARCHITECTURES",
    "BatchProgress",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "cross",
    "run",
    "run_batch",
    "run_many",
]
