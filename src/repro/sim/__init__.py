"""Simulation driver: build, run, validate, and summarize one experiment."""

from repro.sim.driver import ARCHITECTURES, RunResult, run, run_many
from repro.sim.cache import ResultCache

__all__ = ["ARCHITECTURES", "RunResult", "run", "run_many", "ResultCache"]
