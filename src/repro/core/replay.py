"""Trace-replay MIMD core: the ``vector`` backend's timing phase.

:class:`ReplayMixin` turns any :class:`~repro.core.corelet.MimdCore`
subclass into a core that *replays* the per-thread issue traces recorded
by the NumPy functional phase (:mod:`repro.isa.vector`) instead of
interpreting instructions.  Its ``_run`` is a structural copy of
``MimdCore._run`` with :func:`repro.isa.executor.step_one` replaced by a
gap-counter decrement or trace-event consumption — everything that has a
timing consequence is reproduced operation-for-operation:

* the round-robin ready-thread scan, ``_rr`` advance, ``issued`` count,
  and ``ready_at[slot] = t + gap`` per issue;
* the idle-cycle *float accumulation order* (``idle_cycles`` adds the
  same ``(nt - t) / period`` terms in the same sequence, so the float sum
  is bit-identical, not merely close);
* the bounded run-ahead chunking while global accesses are pending, and
  the exact ``schedule_at`` calls — so the engine's event sequence
  (times, sequence numbers, delivery order) matches the reference run
  event-for-event, which is what makes DRAM/prefetch-buffer/barrier/DFS
  state evolution — and therefore every statistic — byte-identical;
* ``instr_count`` incremented per issue (the timeline tracer samples
  ``corelet.instructions`` mid-run).

State the replay never touches per-issue (registers, local-memory
contents and counters, branch counters) is restored from the functional
plan in ``_finish``, before the completion callback runs, so end-of-run
consumers (``collect``, ``thread_states``, validation, energy) see
exactly the reference values.

The mixin must precede the architecture core class in the MRO, e.g.::

    class _ReplayMillipedeCorelet(ReplayMixin, _MillipedeCorelet):
        pass

so the architecture's ``_global_access``/``_barrier_hook`` ports still
apply while ``_run``/``_global_done``/``_finish`` come from here.
"""

from __future__ import annotations

from repro.core.corelet import _CHUNK_CYCLES
from repro.isa.executor import MemAccess
from repro.isa.instructions import Op
from repro.isa.vector import K_BAR, K_LDG, VectorPlan

_LDG = int(Op.LDG)


class ReplayMixin:
    """Drop-in replacement for the interpreting hot loop (see module doc)."""

    _plan: VectorPlan = None

    # ------------------------------------------------------------------
    def load_plan(self, plan: VectorPlan) -> None:
        """Adopt this core's slice of the functional plan (global thread
        ``core_id * n_threads + slot`` maps to local ``slot``)."""
        n = self.cfg.n_threads
        base = self.core_id * n
        self._plan = plan
        self._gaps = [plan.traces[base + s].gaps for s in range(n)]
        self._kinds = [plan.traces[base + s].kinds for s in range(n)]
        self._addrs = [plan.traces[base + s].addrs for s in range(n)]
        self._gap_rem = [(g[0] if g else 0) for g in self._gaps]
        self._ev_idx = [0] * n

    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self._plan is None:
            raise RuntimeError("replay core started without a plan; "
                               "the processor must call load_plan() first")
        self._run_scheduled = False
        if self.done:
            return
        period = self.clock.period_ps
        now = self.engine.now
        if now > self.t:
            # the core sat blocked from self.t to now: idle cycles
            self.idle_cycles += (now - self.t) / period
            self.t = now
        t = self.t
        gap = self.cfg.issue_gap_cycles * period
        chunk_end = t + _CHUNK_CYCLES * period if self.pending else None

        threads = self.threads
        ready_at = self.ready_at
        blocked = self.blocked
        n = len(threads)
        gap_rem = self._gap_rem
        ev_idx = self._ev_idx
        all_gaps = self._gaps
        all_kinds = self._kinds
        all_addrs = self._addrs
        # the barrel fast path below leaps whole rotations; it is only
        # valid when a thread's re-ready gap equals one full rotation
        dense = gap == n * period

        while True:
            # -- dense-rotation leap -----------------------------------
            # With no memory op in flight (no chunking) and every thread
            # mid-gap and ready exactly at its barrel slot, the next
            # K = min(gap_rem) rotations are fully determined: thread at
            # rotation position i issues at t + (r*n + i)*period and is
            # re-ready exactly one rotation later.  Leap all K rotations
            # in O(n): the per-issue loop below would produce the very
            # same t/_rr/ready_at/instr_count trajectory with no idle
            # terms and no engine interaction, so every observable —
            # including the float ``idle_cycles`` sum — is untouched.
            if dense and chunk_end is None:
                start = self._rr
                k_min = 0
                for i in range(n):
                    s = (start + i) % n
                    g = gap_rem[s]
                    if (g == 0 or threads[s].halted or blocked[s]
                            or ready_at[s] > t + i * period):
                        k_min = 0
                        break
                    if k_min == 0 or g < k_min:
                        k_min = g
                if k_min:
                    leap = k_min * n * period
                    for i in range(n):
                        s = (start + i) % n
                        threads[s].instr_count += k_min
                        gap_rem[s] -= k_min
                        ready_at[s] = t + leap + i * period
                    self.issued += k_min * n
                    t += leap
                    # at least one thread's next issue is now its event;
                    # fall through to the per-issue loop for that
            # -- pick a ready thread, round-robin ----------------------
            slot = -1
            start = self._rr
            for i in range(n):
                s = (start + i) % n
                th = threads[s]
                if th.halted or blocked[s] or ready_at[s] > t:
                    continue
                slot = s
                break
            if slot < 0:
                if all(th.halted for th in threads):
                    self._finish(t)
                    return
                waiting = [ready_at[s] for s in range(n)
                           if not threads[s].halted and not blocked[s]]
                if not waiting:
                    self.t = t
                    return  # all blocked on memory/barrier: sleep
                nt = min(waiting)
                self.idle_cycles += (nt - t) / period
                t = nt
                continue

            self._rr = (slot + 1) % n
            th = threads[slot]
            th.instr_count += 1
            self.issued += 1
            ready_at[slot] = t + gap

            g = gap_rem[slot]
            if g:
                # a pure issue: ALU/branch/jump/local-memory, one cycle,
                # no core interaction (functional effects already applied)
                gap_rem[slot] = g - 1
            else:
                i = ev_idx[slot]
                kind = all_kinds[slot][i]
                ev_idx[slot] = i + 1
                gaps = all_gaps[slot]
                gap_rem[slot] = gaps[i + 1] if i + 1 < len(gaps) else 0
                if kind == K_LDG:
                    acc = MemAccess(_LDG, all_addrs[slot][i], 0, 0.0,
                                    False, True)
                    blocked[slot] = True
                    self.pending += 1
                    self.engine.schedule_at(t, self._issue_global, slot, acc)
                    if chunk_end is None:
                        chunk_end = t + _CHUNK_CYCLES * period
                elif kind == K_BAR:
                    blocked[slot] = True
                    self.at_barrier[slot] = True
                    self.engine.schedule_at(t, self._barrier_hook, slot)
                else:  # K_HALT
                    th.halted = True

            t += period
            if chunk_end is not None and t >= chunk_end:
                if self.pending:
                    self.t = t
                    self._schedule_run(t)
                    return
                chunk_end = None

    # ------------------------------------------------------------------
    def _global_done(self, slot: int, acc: MemAccess, ready_ps: int) -> None:
        # reference commits the loaded word here; the functional phase
        # already applied it, so only the timing consequences remain
        self.blocked[slot] = False
        self.pending -= 1
        self.ready_at[slot] = ready_ps + self.clock.period_ps
        self._schedule_run(max(self.t, self.ready_at[slot]))

    # ------------------------------------------------------------------
    def _finish(self, t: int) -> None:
        """Restore functionally-maintained state before announcing
        completion (the processor's done callback may inspect us)."""
        plan = self._plan
        n = self.cfg.n_threads
        base = self.core_id * n
        for s, th in enumerate(self.threads):
            th.branches = int(plan.branches[base + s])
            th.taken_branches = int(plan.taken_branches[base + s])
        lm = self.local_mem
        sw = self.state_words
        for s in range(n):
            lm.data[s * sw : s * sw + sw] = plan.local[base + s]
        reads = int(plan.local_reads[base : base + n].sum())
        writes = int(plan.local_writes[base : base + n].sum())
        lm.reads = reads
        lm.writes = writes
        if hasattr(self, "state_l1_accesses"):
            # SSMC/multicore count every live-state access as an L1 hit
            self.state_l1_accesses = reads + writes
        super()._finish(t)


def build_plan(processor, n_registers: int) -> VectorPlan:
    """Run the functional phase for a processor's stored launch state.

    Expects the processor to have captured ``_thread_args`` (global
    thread order) and ``_initial_state`` before ``start()``."""
    from repro.isa.vector import execute

    cores = getattr(processor, "corelets", None) or processor.cores
    args = getattr(processor, "_thread_args", None)
    if args is None:
        raise RuntimeError(
            "vector backend requires set_thread_args() before start()"
        )
    return execute(
        processor.program,
        processor.global_mem.data,
        args,
        n_registers,
        cores[0].state_words,
        getattr(processor, "_initial_state", None),
    )
