"""Trace-replay MIMD core: the ``vector`` backend's timing phase.

:class:`ReplayMixin` turns any :class:`~repro.core.corelet.MimdCore`
subclass into a core that *replays* the per-thread issue traces recorded
by the NumPy functional phase (:mod:`repro.isa.vector`) instead of
interpreting instructions.  Its ``_run`` is a structural copy of
``MimdCore._run`` with :func:`repro.isa.executor.step_one` replaced by a
gap-counter decrement or trace-event consumption — everything that has a
timing consequence is reproduced operation-for-operation:

* the round-robin ready-thread scan, ``_rr`` advance, ``issued`` count,
  and ``ready_at[slot] = t + gap`` per issue;
* the idle-cycle *float accumulation order* (``idle_cycles`` adds the
  same ``(nt - t) / period`` terms in the same sequence, so the float sum
  is bit-identical, not merely close);
* the bounded run-ahead chunking while global accesses are pending, and
  the exact ``schedule_at`` calls — so the engine's event sequence
  (times, sequence numbers, delivery order) matches the reference run
  event-for-event, which is what makes DRAM/prefetch-buffer/barrier/DFS
  state evolution — and therefore every statistic — byte-identical;
* ``instr_count`` incremented per issue (the timeline tracer samples
  ``corelet.instructions`` mid-run).

State the replay never touches per-issue (registers, local-memory
contents and counters, branch counters) is restored from the functional
plan in ``_finish``, before the completion callback runs, so end-of-run
consumers (``collect``, ``thread_states``, validation, energy) see
exactly the reference values.

The mixin must precede the architecture core class in the MRO, e.g.::

    class _ReplayMillipedeCorelet(ReplayMixin, _MillipedeCorelet):
        pass

so the architecture's ``_global_access``/``_barrier_hook`` ports still
apply while ``_run``/``_global_done``/``_finish`` come from here.
"""

from __future__ import annotations

from repro.core.corelet import _CHUNK_CYCLES
from repro.isa.executor import MemAccess
from repro.isa.instructions import Op
from repro.isa.vector import K_BAR, K_LDG, SimtPlan, VectorPlan

_LDG = int(Op.LDG)
_STL = int(Op.STL)
_J = int(Op.J)
_HALT = int(Op.HALT)
_BEQ = int(Op.BEQ)
_BNEZ = int(Op.BNEZ)


class ReplayMixin:
    """Drop-in replacement for the interpreting hot loop (see module doc)."""

    _plan: VectorPlan = None

    # ------------------------------------------------------------------
    def load_plan(self, plan: VectorPlan) -> None:
        """Adopt this core's slice of the functional plan (global thread
        ``core_id * n_threads + slot`` maps to local ``slot``)."""
        n = self.cfg.n_threads
        base = self.core_id * n
        self._plan = plan
        self._gaps = [plan.traces[base + s].gaps for s in range(n)]
        self._kinds = [plan.traces[base + s].kinds for s in range(n)]
        self._addrs = [plan.traces[base + s].addrs for s in range(n)]
        self._gap_rem = [(g[0] if g else 0) for g in self._gaps]
        self._ev_idx = [0] * n

    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self._plan is None:
            raise RuntimeError("replay core started without a plan; "
                               "the processor must call load_plan() first")
        self._run_scheduled = False
        if self.done:
            return
        period = self.clock.period_ps
        now = self.engine.now
        if now > self.t:
            # the core sat blocked from self.t to now: idle cycles
            self.idle_cycles += (now - self.t) / period
            self.t = now
        t = self.t
        gap = self.cfg.issue_gap_cycles * period
        chunk_end = t + _CHUNK_CYCLES * period if self.pending else None

        threads = self.threads
        ready_at = self.ready_at
        blocked = self.blocked
        n = len(threads)
        gap_rem = self._gap_rem
        ev_idx = self._ev_idx
        all_gaps = self._gaps
        all_kinds = self._kinds
        all_addrs = self._addrs
        # the barrel fast path below leaps whole rotations; it is only
        # valid when a thread's re-ready gap equals one full rotation
        dense = gap == n * period

        while True:
            # -- dense-rotation leap -----------------------------------
            # With no memory op in flight (no chunking) and every thread
            # mid-gap and ready exactly at its barrel slot, the next
            # K = min(gap_rem) rotations are fully determined: thread at
            # rotation position i issues at t + (r*n + i)*period and is
            # re-ready exactly one rotation later.  Leap all K rotations
            # in O(n): the per-issue loop below would produce the very
            # same t/_rr/ready_at/instr_count trajectory with no idle
            # terms and no engine interaction, so every observable —
            # including the float ``idle_cycles`` sum — is untouched.
            if dense and chunk_end is None:
                start = self._rr
                k_min = 0
                for i in range(n):
                    s = (start + i) % n
                    g = gap_rem[s]
                    if (g == 0 or threads[s].halted or blocked[s]
                            or ready_at[s] > t + i * period):
                        k_min = 0
                        break
                    if k_min == 0 or g < k_min:
                        k_min = g
                if k_min:
                    leap = k_min * n * period
                    for i in range(n):
                        s = (start + i) % n
                        threads[s].instr_count += k_min
                        gap_rem[s] -= k_min
                        ready_at[s] = t + leap + i * period
                    self.issued += k_min * n
                    t += leap
                    # at least one thread's next issue is now its event;
                    # fall through to the per-issue loop for that
            # -- pick a ready thread, round-robin ----------------------
            slot = -1
            start = self._rr
            for i in range(n):
                s = (start + i) % n
                th = threads[s]
                if th.halted or blocked[s] or ready_at[s] > t:
                    continue
                slot = s
                break
            if slot < 0:
                if all(th.halted for th in threads):
                    self._finish(t)
                    return
                waiting = [ready_at[s] for s in range(n)
                           if not threads[s].halted and not blocked[s]]
                if not waiting:
                    self.t = t
                    return  # all blocked on memory/barrier: sleep
                nt = min(waiting)
                self.idle_cycles += (nt - t) / period
                t = nt
                continue

            self._rr = (slot + 1) % n
            th = threads[slot]
            th.instr_count += 1
            self.issued += 1
            ready_at[slot] = t + gap

            g = gap_rem[slot]
            if g:
                # a pure issue: ALU/branch/jump/local-memory, one cycle,
                # no core interaction (functional effects already applied)
                gap_rem[slot] = g - 1
            else:
                i = ev_idx[slot]
                kind = all_kinds[slot][i]
                ev_idx[slot] = i + 1
                gaps = all_gaps[slot]
                gap_rem[slot] = gaps[i + 1] if i + 1 < len(gaps) else 0
                if kind == K_LDG:
                    acc = MemAccess(_LDG, all_addrs[slot][i], 0, 0.0,
                                    False, True)
                    blocked[slot] = True
                    self.pending += 1
                    self.engine.schedule_at(t, self._issue_global, slot, acc)
                    if chunk_end is None:
                        chunk_end = t + _CHUNK_CYCLES * period
                elif kind == K_BAR:
                    blocked[slot] = True
                    self.at_barrier[slot] = True
                    self.engine.schedule_at(t, self._barrier_hook, slot)
                else:  # K_HALT
                    th.halted = True

            t += period
            if chunk_end is not None and t >= chunk_end:
                if self.pending:
                    self.t = t
                    self._schedule_run(t)
                    return
                chunk_end = None

    # ------------------------------------------------------------------
    def _global_done(self, slot: int, acc: MemAccess, ready_ps: int) -> None:
        # reference commits the loaded word here; the functional phase
        # already applied it, so only the timing consequences remain
        self.blocked[slot] = False
        self.pending -= 1
        self.ready_at[slot] = ready_ps + self.clock.period_ps
        self._schedule_run(max(self.t, self.ready_at[slot]))

    # ------------------------------------------------------------------
    def _finish(self, t: int) -> None:
        """Restore functionally-maintained state before announcing
        completion (the processor's done callback may inspect us)."""
        plan = self._plan
        n = self.cfg.n_threads
        base = self.core_id * n
        for s, th in enumerate(self.threads):
            th.branches = int(plan.branches[base + s])
            th.taken_branches = int(plan.taken_branches[base + s])
        lm = self.local_mem
        sw = self.state_words
        for s in range(n):
            lm.data[s * sw : s * sw + sw] = plan.local[base + s]
        reads = int(plan.local_reads[base : base + n].sum())
        writes = int(plan.local_writes[base : base + n].sum())
        lm.reads = reads
        lm.writes = writes
        if hasattr(self, "state_l1_accesses"):
            # SSMC/multicore count every live-state access as an L1 hit
            self.state_l1_accesses = reads + writes
        super()._finish(t)


class SimtReplay:
    """Warp-issue replay for the SIMT SMs (``gpgpu``/``vws``/``vws-row``).

    The SM's ``_run`` loop is already warp-granular and architecture-
    agnostic, so unlike the MIMD cores no structural copy is needed: the
    SM swaps its per-warp-issue ``_exec_warp`` for one of the two bound
    methods here and keeps its scheduling loop, global-memory path
    (``_issue_global``: coalescing, transaction count, port
    serialization) and finish logic untouched.

    * :meth:`exec_warp` (no observer attached) consumes the warp's
      recorded trace: decrement a pure-issue gap, or raise the recorded
      event — block on a global load with the recorded per-lane
      addresses, or retire the warp at halt.  The reference's
      mid-``_exec_warp`` ``ready_at`` writes (divergence penalty,
      shared-memory conflict serialization) need no replay: ``_run``
      unconditionally overwrites ``ready_at`` with the issue gap right
      after every ``_exec_warp`` return, so they never had a timing
      consequence (the shipped bank striping is conflict-free; the
      functional phase still counts conflicts exactly for other
      configurations).
    * :meth:`exec_warp_observed` (sanitizer attached) additionally
      evolves the warp's *live* PDOM stack instruction-by-instruction —
      decoding the program at the stack's top PC and consuming the
      recorded branch taken-masks — so ``on_warp_instr``/``on_warp_done``
      observe exactly the reference stack states, in the same order, the
      same number of times.

    Functionally-maintained end state (shared-memory contents and
    counters, per-lane instruction/branch counters, warp aggregate
    counters) is restored by :meth:`restore` from the SM's ``_finish``
    before the completion callback runs.
    """

    def __init__(self, sm, plan: SimtPlan):
        self.sm = sm
        self.plan = plan
        traces = plan.warp_traces
        self._gaps = [tr.gaps for tr in traces]
        self._kinds = [tr.kinds for tr in traces]
        self._payloads = [tr.payloads for tr in traces]
        self._tmasks = [tr.tmasks for tr in traces]
        self._gap_rem = [(g[0] if g else 0) for g in self._gaps]
        self._ev = [0] * len(traces)   # next trace event (fast mode)
        self._ldg = [0] * len(traces)  # next load payload (observed mode)
        self._br = [0] * len(traces)   # next branch taken-mask (observed)

    # ------------------------------------------------------------------
    def exec_warp(self, warp, t: int) -> int:
        """Fast path: one warp issue off the trace (no observer)."""
        w = warp.wid
        g = self._gap_rem[w]
        if g:
            self._gap_rem[w] = g - 1
            return 0
        i = self._ev[w]
        self._ev[w] = i + 1
        gaps = self._gaps[w]
        self._gap_rem[w] = gaps[i + 1] if i + 1 < len(gaps) else 0
        if self._kinds[w][i] == K_LDG:
            rd, addr_lanes = self._payloads[w][i]
            sm = self.sm
            warp.blocked = True
            sm.pending += 1
            sm.engine.schedule_at(t, sm._issue_global, warp, rd, addr_lanes)
        else:  # K_HALT
            warp.done = True
        return 0

    # ------------------------------------------------------------------
    def exec_warp_observed(self, warp, t: int) -> int:
        """Sanitized path: evolve the live PDOM stack per issue so the
        observer sees reference stack states (see class docstring)."""
        sm = self.sm
        sm.observer.on_warp_instr(warp)
        top = warp.stack[-1]
        pc = top[1]
        ins = sm.program.instrs[pc]
        op = int(ins.op)
        w = warp.wid

        if _BEQ <= op <= _BNEZ:
            i = self._br[w]
            self._br[w] = i + 1
            tm = self._tmasks[w][i]
            mask = top[2]
            if tm == mask or tm == 0:
                top[1] = ins.target if tm else pc + 1
            else:
                r = ins.reconv if ins.reconv is not None else len(sm.program)
                top[1] = r  # this entry becomes the reconvergence point
                warp.stack.append([r, pc + 1, mask & ~tm])
                warp.stack.append([r, ins.target, tm])
            sm._pop_reconverged(warp)
            return 0

        if op == _HALT:
            warp.done = True
            sm.observer.on_warp_done(warp)
            return 0

        if op == _LDG:
            i = self._ldg[w]
            self._ldg[w] = i + 1
            rd, addr_lanes = self._payloads[w][i]
            top[1] = pc + 1
            sm._pop_reconverged(warp)
            warp.blocked = True
            sm.pending += 1
            sm.engine.schedule_at(t, sm._issue_global, warp, rd, addr_lanes)
            return 0

        top[1] = ins.target if op == _J else pc + 1
        sm._pop_reconverged(warp)
        return 0

    # ------------------------------------------------------------------
    def restore(self) -> None:
        """Install the functional phase's end state on the SM (called
        from ``_finish`` before the completion callback)."""
        sm = self.sm
        plan = self.plan
        T = sm.n_threads_total
        view = sm.shared_mem.data.reshape(-1, T)
        view[: sm.state_words, :] = plan.local.T
        sm.shared_mem.accesses = plan.shared_accesses
        sm.shared_mem.conflict_extra_cycles = plan.conflict_extra
        sm.warp_instructions = plan.warp_instructions
        sm.active_lane_slots = plan.active_lane_slots
        sm.divergence_idle_slots = plan.divergence_idle_slots
        sm.divergent_branches = plan.divergent_branches
        sm.uniform_branches = plan.uniform_branches
        width = sm.width
        for warp in sm.warps:
            base = warp.wid * width
            for l, ctx in enumerate(warp.lanes):
                g = base + l
                ctx.instr_count = int(plan.instr_count[g])
                ctx.branches = int(plan.branches[g])
                ctx.taken_branches = int(plan.taken_branches[g])
                ctx.halted = True


def build_simt_plan(sm, n_registers: int) -> SimtPlan:
    """Run the SIMT functional phase for an SM's stored launch state."""
    from repro.isa.vector import execute_simt

    args = getattr(sm, "_thread_args", None)
    if args is None:
        raise RuntimeError(
            "vector backend requires set_thread_args() before start()"
        )
    return execute_simt(
        sm.program,
        sm.global_mem.data,
        args,
        n_registers,
        sm.state_words,
        sm.width,
        getattr(sm, "_initial_state", None),
        n_banks=sm.shared_mem.n_banks,
    )


def build_plan(processor, n_registers: int) -> VectorPlan:
    """Run the functional phase for a processor's stored launch state.

    Expects the processor to have captured ``_thread_args`` (global
    thread order) and ``_initial_state`` before ``start()``."""
    from repro.isa.vector import execute

    cores = getattr(processor, "corelets", None) or processor.cores
    args = getattr(processor, "_thread_args", None)
    if args is None:
        raise RuntimeError(
            "vector backend requires set_thread_args() before start()"
        )
    return execute(
        processor.program,
        processor.global_mem.data,
        args,
        n_registers,
        cores[0].state_words,
        getattr(processor, "_initial_state", None),
    )
