"""Generic simple MIMD core with small-scale hardware multithreading.

One :class:`MimdCore` models a Millipede corelet, an SSMC core, or (with a
wider issue) one conventional-multicore context - the paper deliberately
keeps the pipelines identical across the PNM architectures (section V) so
that performance differences isolate the *memory* optimizations.

Timing model
------------
* In-order, single-issue; after a thread issues, it may not issue again for
  ``issue_gap_cycles`` (the pipeline depth that the 4 hardware contexts are
  there to hide, section IV-A).  With all 4 threads ready the core sustains
  IPC 1; when threads block on memory, issue bubbles appear and are counted
  as idle cycles (they burn the "idle dynamic energy" of Fig. 4).
* Local (live-state) accesses are single-cycle scratchpad/L1 hits and are
  executed inline.
* Global (input-data) accesses are *shared-state* interactions: they are
  scheduled onto the event heap at the core's local timestamp, and the core
  continues running its other threads inline only in bounded chunks while
  accesses are outstanding, so cross-core state (prefetch buffer, DRAM
  queue) is always touched in global time order with bounded skew.

Subclasses provide the global-access port (prefetch buffer for Millipede,
L1D+prefetcher for SSMC) by overriding :meth:`_global_access`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import CoreConfig
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.executor import MemAccess, ThreadContext, step_one
from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.mem.local_memory import LocalMemory

_BAR = int(Op.BAR)

#: how far a core may run ahead inline while global accesses are pending
#: (bounds cross-component timestamp skew; in compute cycles)
_CHUNK_CYCLES = 8


class MimdCore:
    """One simple multithreaded core."""

    def __init__(
        self,
        engine: Engine,
        program: Program,
        cfg: CoreConfig,
        clock: Clock,
        local_mem: LocalMemory,
        core_id: int,
        on_done: Callable[["MimdCore"], None],
        read_global: Callable[[int], float],
        stats: Optional[Stats] = None,
    ):
        self.engine = engine
        self.program = program
        self.cfg = cfg
        self.clock = clock
        self.local_mem = local_mem
        self.core_id = core_id
        self.on_done = on_done
        self.read_global = read_global

        n = cfg.n_threads
        self.threads = [ThreadContext(core_id * n + s, cfg.n_registers) for s in range(n)]
        #: per-thread earliest next issue time (ps)
        self.ready_at = [0] * n
        #: per-thread blocked-on-memory / blocked-on-barrier flags
        self.blocked = [False] * n
        self.at_barrier = [False] * n

        #: thread-private live-state partition of the corelet's scratchpad
        self.state_words = local_mem.n_words // n

        self.t = 0  # local time (ps)
        self.pending = 0  # outstanding global accesses
        self.done = False
        self._run_scheduled = False
        self._rr = 0  # round-robin pointer

        # accounting
        self.idle_cycles = 0.0
        self.issued = 0
        self.finish_ps: Optional[int] = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def set_thread_args(self, slot: int, args: dict[int, float]) -> None:
        self.threads[slot].set_args(args)

    def start(self) -> None:
        self._schedule_run(self.engine.now)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _schedule_run(self, at_ps: int) -> None:
        if not self._run_scheduled and not self.done:
            self._run_scheduled = True
            self.engine.schedule_at(max(at_ps, self.engine.now), self._run)

    def _run(self) -> None:
        self._run_scheduled = False
        if self.done:
            return
        period = self.clock.period_ps
        now = self.engine.now
        if now > self.t:
            # the core sat blocked from self.t to now: idle cycles
            self.idle_cycles += (now - self.t) / period
            self.t = now
        t = self.t
        gap = self.cfg.issue_gap_cycles * period
        chunk_end = t + _CHUNK_CYCLES * period if self.pending else None

        threads = self.threads
        ready_at = self.ready_at
        blocked = self.blocked
        program = self.program
        n = len(threads)

        while True:
            # -- pick a ready thread, round-robin ----------------------
            slot = -1
            start = self._rr
            for i in range(n):
                s = (start + i) % n
                th = threads[s]
                if th.halted or blocked[s] or ready_at[s] > t:
                    continue
                slot = s
                break
            if slot < 0:
                if all(th.halted for th in threads):
                    self._finish(t)
                    return
                # threads exist but none issuable: either waiting on memory
                # (resume via callback) or in an issue-gap bubble
                waiting = [ready_at[s] for s in range(n)
                           if not threads[s].halted and not blocked[s]]
                if not waiting:
                    self.t = t
                    return  # all blocked on memory/barrier: sleep
                nt = min(waiting)
                self.idle_cycles += (nt - t) / period
                t = nt
                continue

            self._rr = (slot + 1) % n
            th = threads[slot]
            acc = step_one(th, program.instrs[th.pc])
            self.issued += 1
            ready_at[slot] = t + gap

            if acc is not None:
                if acc.op == _BAR:
                    blocked[slot] = True
                    self.at_barrier[slot] = True
                    self.engine.schedule_at(t, self._barrier_hook, slot)
                elif acc.is_global:
                    blocked[slot] = True
                    self.pending += 1
                    self.engine.schedule_at(t, self._issue_global, slot, acc)
                    if chunk_end is None:
                        chunk_end = t + _CHUNK_CYCLES * period
                else:
                    self._local_access(th, acc)

            t += period
            if chunk_end is not None and t >= chunk_end:
                if self.pending:
                    self.t = t
                    self._schedule_run(t)
                    return
                chunk_end = None

    # ------------------------------------------------------------------
    # memory paths
    # ------------------------------------------------------------------
    def _local_access(self, th: ThreadContext, acc: MemAccess) -> None:
        """Single-cycle thread-private scratchpad access."""
        addr = self._translate_local(th, acc.addr)
        if acc.is_store:
            self.local_mem.write(addr, acc.value)
        else:
            th.commit_load(acc.rd, self.local_mem.read(addr))

    def _translate_local(self, th: ThreadContext, addr: int) -> int:
        slot = th.tid % self.cfg.n_threads
        if not 0 <= addr < self.state_words:
            raise IndexError(
                f"thread {th.tid} local address {addr} exceeds its "
                f"{self.state_words}-word state partition"
            )
        return slot * self.state_words + addr

    def _issue_global(self, slot: int, acc: MemAccess) -> None:
        """Engine event at the access's issue time: route to the
        architecture's input-data port."""
        if acc.is_store:
            raise NotImplementedError(
                "BMLA Map kernels do not store to global memory (outputs "
                "live in local state and are copied out by the host, "
                "section IV-E)"
            )
        self._global_access(slot, acc)

    def _global_access(self, slot: int, acc: MemAccess) -> None:
        """Architecture hook: start the global load; must eventually call
        :meth:`_global_done`."""
        raise NotImplementedError

    def _global_done(self, slot: int, acc: MemAccess, ready_ps: int) -> None:
        """Data for ``acc`` is available at ``ready_ps``: commit and wake."""
        th = self.threads[slot]
        th.commit_load(acc.rd, self.read_global(acc.addr))
        self.blocked[slot] = False
        self.pending -= 1
        # one extra cycle to move the word from the buffer into the register
        self.ready_at[slot] = ready_ps + self.clock.period_ps
        self._schedule_run(max(self.t, self.ready_at[slot]))

    # ------------------------------------------------------------------
    # barriers (software-barrier ablation)
    # ------------------------------------------------------------------
    def _barrier_hook(self, slot: int) -> None:
        """Engine event: report this thread's barrier arrival to the
        processor-level coordinator (overridden where supported)."""
        raise NotImplementedError(
            "this architecture does not implement software barriers"
        )

    def barrier_release(self, slot: int) -> None:
        """Called by the processor when the barrier opens."""
        self.blocked[slot] = False
        self.at_barrier[slot] = False
        self.ready_at[slot] = max(self.ready_at[slot], self.engine.now)
        self._schedule_run(max(self.t, self.engine.now))

    # ------------------------------------------------------------------
    def _finish(self, t: int) -> None:
        self.done = True
        self.finish_ps = t
        self.t = t
        self.on_done(self)

    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        return sum(th.instr_count for th in self.threads)

    @property
    def dynamic_branches(self) -> int:
        return sum(th.branches for th in self.threads)
