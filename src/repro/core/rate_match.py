"""Coarse-grain compute-memory rate matching (section IV-F).

A one-dimensional hill-climbing controller adjusts the *processor-wide*
compute clock in small steps (default 5%):

* prefetch buffers **empty** (a demand access arrived before its row's
  prefetch completed) → the application is memory-bandwidth-bound → step
  the clock **down**;
* prefetch buffers **full** (flow control deferred a trigger because the
  head entry was still unconsumed) → compute is the laggard → step the
  clock **up**.

The paper stresses the *coarse* granularity: one controller per processor
(space) and one convergence per application (time), because BMLA behaviour
is statistically stationary over billions of records.  Adjustments are
debounced by a minimum interval so a burst of waits from one row counts
once.  Without voltage scaling the saving is idle-cycle dynamic energy:
a slower clock makes the cores wait for memory in *fewer cycles*.
"""

from __future__ import annotations

from repro.config import MillipedeConfig
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats


class RateMatchController:
    """Hill-climbing DFS driven by prefetch-buffer full/empty signals."""

    def __init__(self, engine: Engine, clock: Clock, cfg: MillipedeConfig, stats: Stats):
        self.engine = engine
        self.clock = clock
        self.cfg = cfg
        self.stats = stats.scoped("ratematch")
        self._last_adjust_ps = -(10**18)
        #: (time_ps, freq_hz) trajectory, for convergence analysis
        self.history: list[tuple[int, float]] = [(0, clock.freq_hz)]

    # ------------------------------------------------------------------
    def empty_signal(self) -> None:
        """Buffers empty → memory-bound → slow the corelets down."""
        self.stats.inc("empty_signals")
        self._adjust(-1)

    def full_signal(self) -> None:
        """Buffers full → compute-bound side → speed the corelets up."""
        self.stats.inc("full_signals")
        self._adjust(+1)

    # ------------------------------------------------------------------
    def _adjust(self, direction: int) -> None:
        now = self.engine.now
        if now - self._last_adjust_ps < self.cfg.rate_match_interval_ps:
            return
        f = self.clock.freq_hz * (1.0 + direction * self.cfg.rate_match_step)
        f = min(self.cfg.rate_match_max_hz, max(self.cfg.rate_match_min_hz, f))
        if f == self.clock.freq_hz:
            # clamped to a no-op at rate_match_min/max_hz: leave the
            # debounce window open so an immediately following
            # opposite-direction signal is not starved
            return
        self._last_adjust_ps = now
        self.clock.set_frequency(f)
        self.stats.inc("adjustments")
        self.history.append((now, f))

    # ------------------------------------------------------------------
    @property
    def final_freq_hz(self) -> float:
        return self.history[-1][1]

    def mean_freq_hz(self, end_ps: int) -> float:
        """Time-weighted mean frequency over [0, end_ps] - the "rate-match
        clock" we report against the paper's Table IV column 5."""
        if end_ps <= 0:
            return self.history[-1][1]
        total = 0.0
        for (t0, f), (t1, _) in zip(self.history, self.history[1:]):
            total += f * (min(t1, end_ps) - min(t0, end_ps))
        t_last, f_last = self.history[-1]
        if end_ps > t_last:
            total += f_last * (end_ps - t_last)
        return total / end_ps
