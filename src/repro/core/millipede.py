"""The Millipede processor (section IV).

A Millipede processor = 32 simple MIMD corelets + one flow-controlled,
cross-corelet row prefetch buffer + (optionally) the coarse-grain
rate-matching DFS controller, sitting on one die-stacked memory channel.

The three Fig. 3/4 variants map to constructor flags (all from
:class:`repro.config.MillipedeConfig`):

==============================  =========================================
paper configuration             flags
==============================  =========================================
Millipede                       ``flow_control=True``
Millipede-no-flow-control       ``flow_control=False``
Millipede + rate matching       ``flow_control=True, rate_match=True``
software-barrier ablation       ``record_barriers=True`` (kernel emits
                                ``bar`` per record; flow control off)
==============================  =========================================
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import SystemConfig, WORD_BYTES
from repro.core.corelet import MimdCore
from repro.core.flow_control import BarrierCoordinator
from repro.core.rate_match import RateMatchController
from repro.core.replay import ReplayMixin, build_plan
from repro.dram.controller import MemoryController
from repro.dram.dram import GlobalMemory
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.executor import MemAccess
from repro.isa.program import Program
from repro.mem.local_memory import LocalMemory
from repro.mem.prefetch_buffer import PrefetchBuffer


class _MillipedeCorelet(MimdCore):
    """A corelet whose input-data port is the shared prefetch buffer."""

    def __init__(self, *args, prefetch_buffer: PrefetchBuffer,
                 barrier: Optional[BarrierCoordinator] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.prefetch_buffer = prefetch_buffer
        self.barrier = barrier

    def _global_access(self, slot: int, acc: MemAccess) -> None:
        def on_ready(ready_ps: int, _code: str, _slot=slot, _acc=acc) -> None:
            self._global_done(_slot, _acc, ready_ps)

        self.prefetch_buffer.demand_access(self.core_id, acc.addr, on_ready)

    def _barrier_hook(self, slot: int) -> None:
        if self.barrier is None:
            raise RuntimeError(
                "kernel contains `bar` but record_barriers is disabled"
            )
        self.barrier.arrive(self, slot)


class _ReplayMillipedeCorelet(ReplayMixin, _MillipedeCorelet):
    """Vector-backend corelet: prefetch-buffer port, trace-replay loop."""


class MillipedeProcessor:
    """One Millipede processor attached to one die-stacked channel."""

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        program: Program,
        global_mem: GlobalMemory,
        stats: Stats,
        *,
        input_base_word: int,
        input_end_word: int,
        layout=None,
        backend: str = "reference",
    ):
        self.engine = engine
        self.config = config
        self.program = program
        self.global_mem = global_mem
        self.stats = stats
        if backend not in ("reference", "vector"):
            raise ValueError(f"unknown processor backend {backend!r}")
        self.backend = backend
        self._thread_args = None
        self._initial_state = None

        core_cfg = config.core
        mcfg = config.millipede
        row_words = config.dram.row_words
        if input_base_word % row_words or input_end_word % row_words:
            raise ValueError(
                "input region must be row-aligned (the data generator pads "
                f"to whole rows); got [{input_base_word}, {input_end_word}) "
                f"with {row_words}-word rows"
            )

        self.clock = Clock(core_cfg.clock_hz, "millipede")
        self.mc = MemoryController(engine, config.dram, stats, name="dram")
        self.prefetch_buffer = PrefetchBuffer(
            engine,
            self.mc,
            stats,
            n_corelets=core_cfg.n_cores,
            n_entries=mcfg.prefetch_entries,
            row_words=row_words,
            flow_control=mcfg.flow_control,
            demand_block_words=mcfg.slab_bytes // WORD_BYTES,
            prefetch_ahead=mcfg.prefetch_ahead,
            record_row_span=layout.n_fields if layout is not None else 1,
        )

        self.rate_controller: Optional[RateMatchController] = None
        if mcfg.rate_match:
            self.rate_controller = RateMatchController(engine, self.clock, mcfg, stats)
            self.prefetch_buffer.on_empty_wait = self.rate_controller.empty_signal
            self.prefetch_buffer.on_full_defer = self.rate_controller.full_signal

        self.barrier: Optional[BarrierCoordinator] = None
        if mcfg.record_barriers:
            self.barrier = BarrierCoordinator(stats)
            self.barrier.set_expected(core_cfg.n_cores * core_cfg.n_threads)

        lm_words = mcfg.local_memory_bytes // WORD_BYTES
        self._done_count = 0
        self.finish_ps: Optional[int] = None
        self.on_finished: Optional[Callable[[], None]] = None
        corelet_cls = (_ReplayMillipedeCorelet if backend == "vector"
                       else _MillipedeCorelet)
        self.corelets = [
            corelet_cls(
                engine,
                program,
                core_cfg,
                self.clock,
                LocalMemory(lm_words),
                core_id,
                self._corelet_done,
                global_mem.read_word,
                prefetch_buffer=self.prefetch_buffer,
                barrier=self.barrier,
            )
            for core_id in range(core_cfg.n_cores)
        ]

        self._input_base = input_base_word
        self._input_end = input_end_word

    # ------------------------------------------------------------------
    def load_initial_state(self, state) -> None:
        """Preload every thread's live-state partition (host copy-in of
        constants such as centroids, section IV-E)."""
        self._initial_state = state
        n_threads = self.config.core.n_threads
        for c in self.corelets:
            if len(state) > c.state_words:
                raise ValueError(
                    f"initial state of {len(state)} words exceeds the "
                    f"{c.state_words}-word per-thread partition"
                )
            for slot in range(n_threads):
                lo = slot * c.state_words
                c.local_mem.data[lo : lo + len(state)] = state

    def set_thread_args(self, args_per_thread: list[dict[int, float]]) -> None:
        """Distribute kernel ABI registers; global thread *g* runs on
        corelet ``g // n_threads``, context ``g % n_threads`` - so the four
        contexts of a corelet process records whose row slabs coincide."""
        self._thread_args = args_per_thread
        n_threads = self.config.core.n_threads
        expected = self.config.core.n_cores * n_threads
        if len(args_per_thread) != expected:
            raise ValueError(f"need {expected} thread-arg dicts, got {len(args_per_thread)}")
        for g, args in enumerate(args_per_thread):
            self.corelets[g // n_threads].set_thread_args(g % n_threads, args)

    def start(self) -> None:
        if self.backend == "vector":
            plan = build_plan(self, self.config.core.n_registers)
            for c in self.corelets:
                c.load_plan(plan)
        row_words = self.config.dram.row_words
        self.prefetch_buffer.start(
            self._input_base // row_words,
            self._input_end // row_words - 1,
        )
        for c in self.corelets:
            c.start()

    # ------------------------------------------------------------------
    def _corelet_done(self, corelet: MimdCore) -> None:
        self._done_count += 1
        if self._done_count == len(self.corelets):
            self.finish_ps = max(c.finish_ps for c in self.corelets)
            self.stats.set("proc.finish_ps", self.finish_ps)
            if self.on_finished is not None:
                self.on_finished()

    @property
    def done(self) -> bool:
        return self._done_count == len(self.corelets)

    # ------------------------------------------------------------------
    # result extraction (host copy-out, section IV-E)
    # ------------------------------------------------------------------
    def thread_states(self) -> list:
        """Per-global-thread live-state arrays, in global thread order."""
        out = []
        for c in self.corelets:
            for slot in range(self.config.core.n_threads):
                lo = slot * c.state_words
                out.append(c.local_mem.data[lo : lo + c.state_words].copy())
        return out

    # ------------------------------------------------------------------
    def collect(self) -> dict[str, float]:
        """Aggregate per-run numbers for the energy model / reports."""
        instructions = sum(c.instructions for c in self.corelets)
        idle_cycles = sum(c.idle_cycles for c in self.corelets)
        local_accesses = sum(c.local_mem.accesses for c in self.corelets)
        branches = sum(c.dynamic_branches for c in self.corelets)
        out = {
            "instructions": instructions,
            "idle_cycles": idle_cycles,
            "local_accesses": local_accesses,
            "branches": branches,
            "finish_ps": self.finish_ps or 0,
            "icache_fetches": instructions,  # one fetch per core-instruction
        }
        if self.rate_controller is not None and self.finish_ps:
            out["rate_match_final_hz"] = self.rate_controller.final_freq_hz
            out["rate_match_mean_hz"] = self.rate_controller.mean_freq_hz(self.finish_ps)
            out["rate_match_history"] = [list(h) for h in self.rate_controller.history]
        return out
