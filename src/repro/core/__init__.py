"""Millipede: the paper's primary contribution.

* :mod:`corelet` - the simple in-order, 4-way-multithreaded MIMD core model
  shared by Millipede corelets and SSMC cores (the paper keeps their
  pipelines identical so only the memory system differs).
* :mod:`millipede` - the Millipede processor: corelets + row-oriented,
  flow-controlled cross-corelet prefetch buffer.
* :mod:`rate_match` - coarse-grain compute-memory rate matching (DFS).
"""

from repro.core.corelet import MimdCore
from repro.core.millipede import MillipedeProcessor
from repro.core.rate_match import RateMatchController

__all__ = ["MimdCore", "MillipedeProcessor", "RateMatchController"]
