"""Processor-wide synchronization helpers.

The *hardware* cross-corelet flow control lives in
:class:`repro.mem.prefetch_buffer.PrefetchBuffer` (PFT bits + DF counters).
This module implements the *software* alternative the paper evaluates and
rejects (sections IV-C and VI-A): barriers at record granularity across all
Map tasks.  The paper's finding - the barriers are too infrequent relative
to the prefetch-buffer capacity to prevent premature evictions - is
reproduced by the ``ablation_barriers`` benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.stats import Stats

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.corelet import MimdCore


class BarrierCoordinator:
    """Generation-counted rendezvous across every thread of a processor.

    All threads must execute the same number of ``bar`` instructions (the
    workload generator pads record counts so threads get equal work)."""

    def __init__(self, stats: Stats):
        self.stats = stats.scoped("barrier")
        self._waiting: list[tuple["MimdCore", int]] = []
        self._expected = 0
        #: optional rendezvous observer (:mod:`repro.sanitize`); receives
        #: ``on_arrive`` / ``on_release`` for generation counting.  Must
        #: not mutate state.
        self.observer = None

    def set_expected(self, n_threads: int) -> None:
        self._expected = n_threads

    def arrive(self, core: "MimdCore", slot: int) -> None:
        """A thread reached its ``bar``; release everyone once all arrive."""
        if self._expected <= 0:
            raise RuntimeError("BarrierCoordinator.set_expected was not called")
        self._waiting.append((core, slot))
        self.stats.inc("arrivals")
        if self.observer is not None:
            self.observer.on_arrive(core, slot, len(self._waiting), self._expected)
        if len(self._waiting) == self._expected:
            self.stats.inc("releases")
            if self.observer is not None:
                self.observer.on_release(self._expected)
            waiting, self._waiting = self._waiting, []
            for c, s in waiting:
                c.barrier_release(s)
