"""Plain array-of-structs layout.

Kept for the layout ablation (section III-B argues this layout destroys
row locality under inter-record parallelism): consecutive *threads* access
records whose words are ``n_fields`` apart, so a 32-thread gang touches a
``32 x n_fields``-word span per step and different fields of one record sit
adjacent instead of different records' same field.
"""

from __future__ import annotations

import numpy as np


class ArrayOfStructsLayout:
    """``addr(r, f) = base + r * F + f``.

    >>> lay = ArrayOfStructsLayout(n_records=4, n_fields=3)
    >>> lay.addr(1, 2)
    5
    """

    def __init__(self, n_records: int, n_fields: int, base: int = 0):
        if n_fields < 1:
            raise ValueError("records need at least one field")
        self.n_records = n_records
        self.n_fields = n_fields
        self.base = base

    @property
    def total_words(self) -> int:
        return self.n_records * self.n_fields

    @property
    def end(self) -> int:
        return self.base + self.total_words

    def addr(self, record: int, field: int) -> int:
        if not 0 <= record < self.n_records:
            raise IndexError(f"record {record} out of range")
        if not 0 <= field < self.n_fields:
            raise IndexError(f"field {field} out of range")
        return self.base + record * self.n_fields + field

    def pack(self, fields: list[np.ndarray]) -> np.ndarray:
        if len(fields) != self.n_fields:
            raise ValueError(f"expected {self.n_fields} field arrays, got {len(fields)}")
        image = np.empty((self.n_records, self.n_fields), dtype=np.float64)
        for f, arr in enumerate(fields):
            image[:, f] = np.asarray(arr, dtype=np.float64)
        return image.reshape(-1)

    def unpack(self, image: np.ndarray) -> list[np.ndarray]:
        cube = np.asarray(image).reshape(self.n_records, self.n_fields)
        return [cube[:, f].copy() for f in range(self.n_fields)]
