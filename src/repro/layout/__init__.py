"""Input-data layouts (section III-B).

BMLA parallelism is inter-record, so a plain array-of-structs layout would
spread simultaneously-accessed records over different DRAM rows.  All
evaluated architectures therefore use the *interleaved*
"array-of-structs-of-arrays" layout: records are grouped into blocks, and
within a block each field is stored contiguously, so the same field of
consecutive records falls in the same memory row.
"""

from repro.layout.interleaved import InterleavedLayout
from repro.layout.aos import ArrayOfStructsLayout

__all__ = ["InterleavedLayout", "ArrayOfStructsLayout"]
