"""Interleaved ("array of structs of arrays") layout.

Records are grouped into blocks of ``block_records`` records; within a
block, field ``f`` of all records is contiguous::

    addr(r, f) = base + (r // B) * F * B  +  f * B  +  (r % B)

With ``B`` equal to the DRAM row's word count (the paper's configuration),
each row holds exactly one field of one block, and thread ``t`` of ``T``
(processing records ``t, t+T, ...``) touches a fixed ``B/T``-word slice of
every row - the slab structure Millipede's prefetch buffer is built around.
"""

from __future__ import annotations

import numpy as np


class InterleavedLayout:
    """Address generator + memory-image packer.

    >>> lay = InterleavedLayout(n_records=1024, n_fields=2, block_records=512)
    >>> lay.addr(0, 0), lay.addr(0, 1), lay.addr(512, 0)
    (0, 512, 1024)
    >>> lay.total_words
    2048
    """

    def __init__(self, n_records: int, n_fields: int, block_records: int, base: int = 0):
        if n_records % block_records:
            raise ValueError(
                f"{n_records} records not divisible into blocks of {block_records} "
                "(pad the dataset; row-dense processing cannot skip tail gaps)"
            )
        if n_fields < 1:
            raise ValueError("records need at least one field")
        self.n_records = n_records
        self.n_fields = n_fields
        self.block_records = block_records
        self.base = base
        self.n_blocks = n_records // block_records

    @property
    def total_words(self) -> int:
        return self.n_records * self.n_fields

    @property
    def end(self) -> int:
        return self.base + self.total_words

    def addr(self, record: int, field: int) -> int:
        if not 0 <= record < self.n_records:
            raise IndexError(f"record {record} out of range")
        if not 0 <= field < self.n_fields:
            raise IndexError(f"field {field} out of range")
        b, i = divmod(record, self.block_records)
        return self.base + b * self.n_fields * self.block_records + field * self.block_records + i

    def pack(self, fields: list[np.ndarray]) -> np.ndarray:
        """Build the memory image from per-field record arrays.

        ``fields[f][r]`` is field *f* of record *r*.  Fully vectorized:
        reshape each field into (blocks, B) and interleave block-major.
        """
        if len(fields) != self.n_fields:
            raise ValueError(f"expected {self.n_fields} field arrays, got {len(fields)}")
        B = self.block_records
        image = np.empty((self.n_blocks, self.n_fields, B), dtype=np.float64)
        for f, arr in enumerate(fields):
            if len(arr) != self.n_records:
                raise ValueError(f"field {f} has {len(arr)} records, expected {self.n_records}")
            image[:, f, :] = np.asarray(arr, dtype=np.float64).reshape(self.n_blocks, B)
        return image.reshape(-1)

    def unpack(self, image: np.ndarray) -> list[np.ndarray]:
        """Inverse of :meth:`pack` (used by round-trip property tests)."""
        cube = np.asarray(image).reshape(self.n_blocks, self.n_fields, self.block_records)
        return [cube[:, f, :].reshape(-1).copy() for f in range(self.n_fields)]
