"""Plain SSMC: a sea of simple MIMD cores with cache-block prefetch.

This is the paper's strongest conventional baseline ("representing previous
multicores without row-orientedness [11], [10], [12]", section V): the
cores and multithreading are *identical* to Millipede corelets; the only
differences are the input-data path (a private 5 KB L1 D-cache per core
with sequential cache-block prefetch, instead of the shared row-oriented
prefetch buffer) and the absence of flow control / rate matching.

Because the cores stray from each other (data-dependent record work), their
per-core block streams interleave different rows at the shared FR-FCFS
controller, degrading row locality - the effect Table IV's "SSMC row miss
rate" quantifies and Fig. 3/4 charge for.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import SystemConfig, WORD_BYTES
from repro.core.corelet import MimdCore
from repro.core.replay import ReplayMixin, build_plan
from repro.dram.controller import MemoryController
from repro.dram.dram import GlobalMemory
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.executor import MemAccess, ThreadContext
from repro.isa.program import Program
from repro.mem.dcache import SetAssocCache
from repro.mem.local_memory import LocalMemory
from repro.mem.prefetcher import BlockStream, SequentialPrefetcher, core_block_schedule


class _SsmcCore(MimdCore):
    """A simple core whose input port is its private L1D + prefetcher.

    Live state nominally resides in the L1 D-cache (section III-E); since
    BMLA state always fits (the paper sizes it so), state accesses are
    modelled as single-cycle L1 hits and counted separately so the energy
    model can charge L1 (not scratchpad) energy for them.
    """

    def __init__(self, *args, prefetcher: SequentialPrefetcher, **kwargs):
        super().__init__(*args, **kwargs)
        self.prefetcher = prefetcher
        self.state_l1_accesses = 0

    def _local_access(self, th: ThreadContext, acc: MemAccess) -> None:
        self.state_l1_accesses += 1
        super()._local_access(th, acc)

    def _global_access(self, slot: int, acc: MemAccess) -> None:
        def on_ready(ready_ps: int, _slot=slot, _acc=acc) -> None:
            self._global_done(_slot, _acc, ready_ps)

        self.prefetcher.demand_access(acc.addr, on_ready)


class _ReplaySsmcCore(ReplayMixin, _SsmcCore):
    """Vector-backend SSMC core: L1D+prefetcher port, trace-replay loop."""


class SsmcProcessor:
    """One 32-core SSMC processor on one die-stacked channel."""

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        program: Program,
        global_mem: GlobalMemory,
        stats: Stats,
        *,
        input_base_word: int,
        input_end_word: int,
        layout=None,
        backend: str = "reference",
    ):
        # layout (an InterleavedLayout) enables the oracle stream prefetch
        # schedule the paper grants the MIMD baselines ("100%-accurate
        # sequential prefetch"); without it prefetching is next-block.
        self._layout = layout
        self.engine = engine
        self.config = config
        self.program = program
        self.global_mem = global_mem
        self.stats = stats
        if backend not in ("reference", "vector"):
            raise ValueError(f"unknown processor backend {backend!r}")
        self.backend = backend
        self._thread_args = None
        self._initial_state = None

        core_cfg = config.core
        scfg = config.ssmc
        self.clock = Clock(core_cfg.clock_hz, "ssmc")
        self.mc = MemoryController(engine, config.dram, stats, name="dram")
        stream = BlockStream(input_base_word, input_end_word)

        self._done_count = 0
        self.finish_ps: Optional[int] = None
        self.on_finished: Optional[Callable[[], None]] = None

        #: live state gets a partition equal to Millipede's local memory;
        #: the remaining 1 KB of the 5 KB L1 caches input blocks
        state_bytes = config.millipede.local_memory_bytes
        input_cache_bytes = scfg.l1d_bytes - state_bytes
        if input_cache_bytes <= 0:
            raise ValueError(
                f"L1D ({scfg.l1d_bytes}B) cannot hold the {state_bytes}B "
                "live state plus input blocks"
            )

        self.cores: list[_SsmcCore] = []
        self.prefetchers: list[SequentialPrefetcher] = []
        for core_id in range(core_cfg.n_cores):
            # the input region behaves as a fully-associative stream buffer:
            # a core's per-record stream strides across the field regions
            # (stride = one row per field), so set-indexed placement would
            # alias the whole stream into one set and thrash
            cache = SetAssocCache(
                total_bytes=input_cache_bytes,
                line_bytes=scfg.l1d_line_bytes,
                assoc=input_cache_bytes // scfg.l1d_line_bytes,
            )
            schedule = None
            if layout is not None:
                schedule = core_block_schedule(
                    base_word=layout.base,
                    n_fields=layout.n_fields,
                    block_records=layout.block_records,
                    n_blocks=layout.n_blocks,
                    core_id=core_id,
                    n_cores=core_cfg.n_cores,
                    line_words=scfg.l1d_line_bytes // WORD_BYTES,
                )
            pf = SequentialPrefetcher(
                engine, self.mc, cache, stream, stats,
                name=f"l1d{core_id}", degree=scfg.prefetch_degree,
                schedule=schedule,
            )
            core_cls = _ReplaySsmcCore if backend == "vector" else _SsmcCore
            core = core_cls(
                engine,
                program,
                core_cfg,
                self.clock,
                LocalMemory(state_bytes // WORD_BYTES),
                core_id,
                self._core_done,
                global_mem.read_word,
                prefetcher=pf,
            )
            self.cores.append(core)
            self.prefetchers.append(pf)

    # ------------------------------------------------------------------
    def load_initial_state(self, state) -> None:
        """Preload every thread's live-state partition with constants."""
        self._initial_state = state
        n_threads = self.config.core.n_threads
        for c in self.cores:
            if len(state) > c.state_words:
                raise ValueError(
                    f"initial state of {len(state)} words exceeds the "
                    f"{c.state_words}-word per-thread partition"
                )
            for slot in range(n_threads):
                lo = slot * c.state_words
                c.local_mem.data[lo : lo + len(state)] = state

    def set_thread_args(self, args_per_thread: list[dict[int, float]]) -> None:
        self._thread_args = args_per_thread
        n_threads = self.config.core.n_threads
        expected = self.config.core.n_cores * n_threads
        if len(args_per_thread) != expected:
            raise ValueError(f"need {expected} thread-arg dicts, got {len(args_per_thread)}")
        for g, args in enumerate(args_per_thread):
            self.cores[g // n_threads].set_thread_args(g % n_threads, args)

    def start(self) -> None:
        if self.backend == "vector":
            plan = build_plan(self, self.config.core.n_registers)
            for c in self.cores:
                c.load_plan(plan)
        for c in self.cores:
            c.start()

    def _core_done(self, core: MimdCore) -> None:
        self._done_count += 1
        if self._done_count == len(self.cores):
            self.finish_ps = max(c.finish_ps for c in self.cores)
            self.stats.set("proc.finish_ps", self.finish_ps)
            if self.on_finished is not None:
                self.on_finished()

    @property
    def done(self) -> bool:
        return self._done_count == len(self.cores)

    # ------------------------------------------------------------------
    def thread_states(self) -> list:
        out = []
        for c in self.cores:
            for slot in range(self.config.core.n_threads):
                lo = slot * c.state_words
                out.append(c.local_mem.data[lo : lo + c.state_words].copy())
        return out

    def collect(self) -> dict[str, float]:
        instructions = sum(c.instructions for c in self.cores)
        return {
            "instructions": instructions,
            "idle_cycles": sum(c.idle_cycles for c in self.cores),
            "branches": sum(c.dynamic_branches for c in self.cores),
            # state hits + input-block reads all pay L1 energy in SSMC
            "l1d_accesses": sum(c.state_l1_accesses for c in self.cores)
            + sum(pf.cache.accesses for pf in self.prefetchers),
            "finish_ps": self.finish_ps or 0,
            "icache_fetches": instructions,
            "row_miss_rate": self.mc.row_miss_rate(),
        }
