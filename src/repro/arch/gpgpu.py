"""GPGPU SM: SIMT execution with post-dominator divergence stacks.

Model summary (sections III-E and V):

* One SM with 32 lanes, 4-way warp contexts (128 threads), in-order issue,
  4-cycle issue gap per warp hidden by multithreading - identical compute
  resources to one Millipede processor / SSMC.
* **SIMT divergence**: each warp carries a PDOM reconvergence stack; a
  divergent data-dependent branch pushes taken/else paths that execute
  serially and reconverge at the immediate post-dominator (computed by
  :mod:`repro.isa.cfg`).  BMLA branches split ~70/30, so wide warps lose
  throughput - the GPGPU's core deficit in Fig. 3.
* **Live state** lives in banked shared memory, striped one thread per
  bank (conflict-free even for the indirect accesses; the striping is
  asserted by a property test) but paying bank + crossbar energy.
* **Input data** is sequentially cache-block-prefetched into the SM's
  32 KB L1D; warp loads coalesce perfectly with the interleaved layout
  (32 consecutive 4-byte words = one 128 B block), so the GPGPU enjoys
  good DRAM row locality - its Fig. 4 DRAM energy is *lower* than SSMC's.
* **Energy hooks**: instruction fetch is amortized per warp instruction
  (one I-cache access for all lanes); ALU energy is charged per *active*
  lane; inactive lanes under divergence and empty issue slots burn idle
  energy.

The class is parameterized by warp width and issue slots so
:mod:`repro.arch.vws` can model Variable Warp Sizing (8 concurrent 4-wide
warps) and VWS-row (narrow warps + Millipede's row-oriented prefetch
buffer) on the same machinery.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.config import SystemConfig, WORD_BYTES
from repro.dram.controller import MemoryController
from repro.dram.dram import GlobalMemory
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.executor import ThreadContext, branch_taken, exec_non_memory
from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.mem.dcache import SetAssocCache
from repro.mem.prefetcher import BlockStream, SequentialPrefetcher, sm_block_schedule
from repro.mem.shared_memory import BankedSharedMemory

_LDG = int(Op.LDG); _STG = int(Op.STG); _LDL = int(Op.LDL); _STL = int(Op.STL)
_J = int(Op.J); _HALT = int(Op.HALT)
_BEQ = int(Op.BEQ); _BNEZ = int(Op.BNEZ)

_CHUNK_CYCLES = 8


class _Warp:
    """One warp: lanes in lockstep under a PDOM reconvergence stack."""

    __slots__ = ("wid", "lanes", "stack", "ready_at", "blocked", "done", "full_mask")

    def __init__(self, wid: int, lanes: list[ThreadContext], program_len: int):
        self.wid = wid
        self.lanes = lanes
        self.full_mask = (1 << len(lanes)) - 1
        #: stack of [reconv_pc, next_pc, mask]; bottom reconverges at exit
        self.stack: list[list[int]] = [[program_len, 0, self.full_mask]]
        self.ready_at = 0
        self.blocked = False
        self.done = False


class GpgpuSM:
    """One streaming multiprocessor on one die-stacked channel."""

    #: set False in subclasses that use the row-oriented prefetch buffer
    uses_l1d_input_path = True

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        program: Program,
        global_mem: GlobalMemory,
        stats: Stats,
        *,
        input_base_word: int,
        input_end_word: int,
        warp_width: Optional[int] = None,
        layout=None,
        backend: str = "reference",
    ):
        if backend not in ("reference", "vector"):
            raise ValueError(f"unknown SM backend {backend!r}")
        self.backend = backend
        self.engine = engine
        self.config = config
        self.program = program
        self.global_mem = global_mem
        self.stats = stats

        core_cfg = config.core
        gcfg = config.gpgpu
        self.n_lanes = core_cfg.n_cores
        self.width = warp_width if warp_width is not None else gcfg.warp_width
        if self.n_lanes % self.width:
            raise ValueError(f"{self.n_lanes} lanes not divisible by {self.width}-wide warps")
        #: narrow warps issue in parallel across lane slices (VWS)
        self.issue_slots = self.n_lanes // self.width
        self.n_threads_total = self.n_lanes * core_cfg.n_threads

        self.clock = Clock(core_cfg.clock_hz, "gpgpu")
        self.mc = MemoryController(engine, config.dram, stats, name="dram")

        self.shared_mem = BankedSharedMemory(
            gcfg.shared_memory_bytes // WORD_BYTES, gcfg.shared_memory_banks
        )
        self.state_words = gcfg.shared_memory_bytes // WORD_BYTES // self.n_threads_total

        if self.uses_l1d_input_path:
            cache = SetAssocCache(gcfg.l1d_bytes, gcfg.l1d_line_bytes, gcfg.l1d_assoc)
            schedule = None
            if layout is not None:
                # 100%-accurate stream prefetch along the SM's record-major
                # demand order (the paper grants all baselines this)
                schedule = sm_block_schedule(
                    base_word=layout.base,
                    n_fields=layout.n_fields,
                    block_records=layout.block_records,
                    n_blocks=layout.n_blocks,
                    n_threads=self.n_threads_total,
                    line_words=gcfg.l1d_line_bytes // WORD_BYTES,
                )
            self.prefetcher = SequentialPrefetcher(
                engine, self.mc, cache,
                BlockStream(input_base_word, input_end_word),
                stats, name="l1d", degree=gcfg.prefetch_degree,
                max_inflight=16, schedule=schedule,
            )
        else:  # pragma: no cover - exercised by VwsRowSM
            self.prefetcher = None
        self._input_base = input_base_word
        self._input_end = input_end_word

        n_warps = self.n_threads_total // self.width
        plen = len(program)
        self.warps = [
            _Warp(w, [ThreadContext(w * self.width + l, core_cfg.n_registers)
                      for l in range(self.width)], plen)
            for w in range(n_warps)
        ]

        self.t = 0
        self.pending = 0
        self._run_scheduled = False
        self._rr = 0
        self.finish_ps: Optional[int] = None
        self.on_finished: Optional[Callable[[], None]] = None
        #: optional SIMT observer (:mod:`repro.sanitize`); receives
        #: ``on_warp_instr(warp)`` before each warp instruction and
        #: ``on_warp_done(warp)`` at halt.  Must not mutate state.
        self.observer = None
        #: launch state captured for the vector backend's functional phase
        self._thread_args: Optional[list] = None
        self._initial_state = None
        self._replay = None

        # accounting
        self.warp_instructions = 0      # I-cache fetches (amortized)
        self.active_lane_slots = 0      # ALU-energy units
        self.divergence_idle_slots = 0  # lanes masked off under divergence
        self.idle_lane_cycles = 0.0     # whole-SM stall cycles x lanes
        self.divergent_branches = 0
        self.uniform_branches = 0
        self.mem_transactions = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def load_initial_state(self, state) -> None:
        """Preload every thread's shared-memory state partition (striped so
        thread g's word a lands at physical a * T + g)."""
        if len(state) > self.state_words:
            raise ValueError(
                f"initial state of {len(state)} words exceeds the "
                f"{self.state_words}-word per-thread partition"
            )
        view = self.shared_mem.data.reshape(-1, self.n_threads_total)
        view[: len(state), :] = np.asarray(state)[:, None]
        self._initial_state = np.asarray(state, dtype=np.float64)

    def set_thread_args(self, args_per_thread: list[dict[int, float]]) -> None:
        if len(args_per_thread) != self.n_threads_total:
            raise ValueError(
                f"need {self.n_threads_total} thread-arg dicts, got {len(args_per_thread)}"
            )
        for g, args in enumerate(args_per_thread):
            self.warps[g // self.width].lanes[g % self.width].set_args(args)
        self._thread_args = args_per_thread

    def start(self) -> None:
        if self.backend == "vector":
            from repro.core.replay import SimtReplay, build_simt_plan

            plan = build_simt_plan(self, self.config.core.n_registers)
            self._replay = SimtReplay(self, plan)
            # swap the per-warp-issue hot path for trace replay; with a
            # sanitizer attached, the observed variant keeps the live
            # PDOM stacks evolving for it
            self._exec_warp = (
                self._replay.exec_warp_observed
                if self.observer is not None
                else self._replay.exec_warp
            )
        self._schedule_run(self.engine.now)

    # ------------------------------------------------------------------
    # shared-memory striping: thread g's private word a -> bank g % 32
    # ------------------------------------------------------------------
    def _translate_shared(self, thread_id: int, addr: int) -> int:
        if not 0 <= addr < self.state_words:
            raise IndexError(
                f"thread {thread_id} shared-memory address {addr} exceeds "
                f"its {self.state_words}-word state partition"
            )
        return addr * self.n_threads_total + thread_id

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _schedule_run(self, at_ps: int) -> None:
        if not self._run_scheduled and self.finish_ps is None:
            self._run_scheduled = True
            self.engine.schedule_at(max(at_ps, self.engine.now), self._run)

    def _run(self) -> None:
        self._run_scheduled = False
        if self.finish_ps is not None:
            return
        period = self.clock.period_ps
        now = self.engine.now
        if now > self.t:
            self.idle_lane_cycles += (now - self.t) / period * self.n_lanes
            self.t = now
        t = self.t
        gap = self.cfg_issue_gap * period
        chunk_end = t + _CHUNK_CYCLES * period if self.pending else None
        warps = self.warps
        n = len(warps)

        while True:
            issued_lanes = 0
            issued = 0
            start = self._rr
            scanned = 0
            while issued < self.issue_slots and scanned < n:
                w = warps[(start + scanned) % n]
                scanned += 1
                if w.done or w.blocked or w.ready_at > t:
                    continue
                issued += 1
                self._rr = (start + scanned) % n
                issued_lanes += self._exec_warp(w, t)
                w.ready_at = t + gap

            if issued == 0:
                if all(w.done for w in warps):
                    self._finish(t)
                    return
                waiting = [w.ready_at for w in warps if not w.done and not w.blocked]
                if not waiting:
                    self.t = t
                    return  # all blocked on memory: resume via callback
                nt = min(waiting)
                self.idle_lane_cycles += (nt - t) / period * self.n_lanes
                t = nt
                continue

            # lane slices with no ready warp this cycle sit idle
            self.idle_lane_cycles += self.n_lanes - issued * self.width
            t += period
            if chunk_end is not None and t >= chunk_end:
                if self.pending:
                    self.t = t
                    self._schedule_run(t)
                    return
                chunk_end = None

    @property
    def cfg_issue_gap(self) -> int:
        return self.config.core.issue_gap_cycles

    # ------------------------------------------------------------------
    # warp execution
    # ------------------------------------------------------------------
    def _exec_warp(self, warp: _Warp, t: int) -> int:
        """Execute one warp instruction; returns the active lane count."""
        if self.observer is not None:
            self.observer.on_warp_instr(warp)
        top = warp.stack[-1]
        reconv, pc, mask = top
        ins = self.program.instrs[pc]
        op = ins.op
        lanes = warp.lanes
        width = self.width

        active = [l for l in range(width) if (mask >> l) & 1]
        n_active = len(active)
        self.warp_instructions += 1
        self.active_lane_slots += n_active
        self.divergence_idle_slots += width - n_active

        if _BEQ <= op <= _BNEZ:
            taken_mask = 0
            for l in active:
                ctx = lanes[l]
                ctx.instr_count += 1
                ctx.branches += 1
                if branch_taken(ctx, ins):
                    ctx.taken_branches += 1
                    taken_mask |= 1 << l
            if taken_mask == mask:
                self.uniform_branches += 1
                top[1] = ins.target
            elif taken_mask == 0:
                self.uniform_branches += 1
                top[1] = pc + 1
            else:
                self.divergent_branches += 1
                r = ins.reconv if ins.reconv is not None else len(self.program)
                top[1] = r  # this entry becomes the reconvergence point
                warp.stack.append([r, pc + 1, mask & ~taken_mask])
                warp.stack.append([r, ins.target, taken_mask])
                # stack push/pop + mask regeneration pipeline penalty
                pen = self.config.gpgpu.divergence_penalty_cycles
                if pen:
                    warp.ready_at = t + pen * self.clock.period_ps
            self._pop_reconverged(warp)
            return n_active

        if op == _HALT:
            if mask != warp.full_mask:
                raise AssertionError(
                    f"warp {warp.wid} executed halt with divergent mask "
                    f"{mask:0{width}b}; kernels must exit uniformly"
                )
            for l in active:
                lanes[l].instr_count += 1
                lanes[l].halted = True
            warp.done = True
            if self.observer is not None:
                self.observer.on_warp_done(warp)
            return n_active

        if op == _LDL or op == _STL:
            phys = []
            for l in active:
                ctx = lanes[l]
                ctx.instr_count += 1
                if op == _LDL:
                    addr = int(ctx.regs[ins.rs] + ins.imm)
                    p = self._translate_shared(ctx.tid, addr)
                    ctx.commit_load(ins.rd, self.shared_mem.read(p))
                else:
                    addr = int(ctx.regs[ins.rt] + ins.imm)
                    p = self._translate_shared(ctx.tid, addr)
                    self.shared_mem.write(p, ctx.regs[ins.rs])
                phys.append(p)
            extra = self.shared_mem.conflict_cycles(phys) - 1
            if extra > 0:
                warp.ready_at = t + extra * self.clock.period_ps
            top[1] = pc + 1
            self._pop_reconverged(warp)
            return n_active

        if op == _LDG:
            addr_lanes = []
            for l in active:
                ctx = lanes[l]
                ctx.instr_count += 1
                addr_lanes.append((l, int(ctx.regs[ins.rs] + ins.imm)))
            top[1] = pc + 1
            self._pop_reconverged(warp)
            warp.blocked = True
            self.pending += 1
            self.engine.schedule_at(t, self._issue_global, warp, ins.rd, addr_lanes)
            return n_active

        if op == _STG:
            raise NotImplementedError(
                "BMLA Map kernels do not store to global memory (section IV-E)"
            )

        if op == _J:
            for l in active:
                lanes[l].instr_count += 1
            top[1] = ins.target
            self._pop_reconverged(warp)
            return n_active

        # plain ALU / immediate / NOP / BAR: same next pc for all lanes
        for l in active:
            ctx = lanes[l]
            ctx.pc = pc
            exec_non_memory(ctx, ins)
        top[1] = pc + 1
        self._pop_reconverged(warp)
        return n_active

    def _pop_reconverged(self, warp: _Warp) -> None:
        stack = warp.stack
        while len(stack) > 1 and stack[-1][1] == stack[-1][0]:
            stack.pop()

    # ------------------------------------------------------------------
    # global-memory path
    # ------------------------------------------------------------------
    def _issue_global(self, warp: _Warp, rd: int, addr_lanes: list[tuple[int, int]]) -> None:
        def on_all_ready(ready_ps: int) -> None:
            for l, addr in addr_lanes:
                warp.lanes[l].commit_load(rd, self.global_mem.read_word(addr))
            warp.blocked = False
            self.pending -= 1
            warp.ready_at = ready_ps + self.clock.period_ps
            self._schedule_run(max(self.t, warp.ready_at))

        n_tx = self._input_port([a for _, a in addr_lanes], on_all_ready)
        self.mem_transactions += n_tx
        if n_tx > 1:
            # port serialization: one extra cycle per extra transaction
            warp.ready_at += (n_tx - 1) * self.clock.period_ps

    def _input_port(self, addrs: list[int], on_all_ready: Callable[[int], None]) -> int:
        """Route a coalesced warp load; returns the transaction count."""
        return self.prefetcher.demand_access_multi(addrs, on_all_ready)

    # ------------------------------------------------------------------
    def _finish(self, t: int) -> None:
        if self._replay is not None:
            self._replay.restore()
        self.finish_ps = t
        self.t = t
        self.stats.set("proc.finish_ps", t)
        if self.on_finished is not None:
            self.on_finished()

    @property
    def done(self) -> bool:
        return self.finish_ps is not None

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def thread_states(self) -> list:
        """Per-thread state arrays, de-striped from shared memory."""
        out = []
        for g in range(self.n_threads_total):
            state = np.empty(self.state_words, dtype=np.float64)
            for a in range(self.state_words):
                state[a] = self.shared_mem.data[a * self.n_threads_total + g]
            out.append(state)
        return out

    def collect(self) -> dict[str, float]:
        instructions = sum(ctx.instr_count for w in self.warps for ctx in w.lanes)
        branches = sum(ctx.branches for w in self.warps for ctx in w.lanes)
        out = {
            "instructions": instructions,
            "branches": branches,
            "warp_instructions": self.warp_instructions,
            "active_lane_slots": self.active_lane_slots,
            "divergence_idle_slots": self.divergence_idle_slots,
            "idle_cycles": self.idle_lane_cycles + self.divergence_idle_slots,
            "icache_fetches": self.warp_instructions,
            "shared_mem_accesses": self.shared_mem.accesses,
            "divergent_branches": self.divergent_branches,
            "uniform_branches": self.uniform_branches,
            "mem_transactions": self.mem_transactions,
            "finish_ps": self.finish_ps or 0,
            "simt_efficiency": (
                self.active_lane_slots
                / (self.active_lane_slots + self.divergence_idle_slots)
                if self.warp_instructions else 0.0
            ),
        }
        if self.prefetcher is not None:
            out["l1d_accesses"] = self.prefetcher.cache.accesses
        return out
