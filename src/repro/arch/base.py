"""Common processor interface consumed by the simulation driver."""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Processor(Protocol):
    """What every architecture model exposes to :mod:`repro.sim.driver`.

    Concrete implementations: :class:`repro.core.MillipedeProcessor`,
    :class:`repro.arch.SsmcProcessor`, :class:`repro.arch.GpgpuSM`,
    :class:`repro.arch.VwsSM`, :class:`repro.arch.VwsRowSM`,
    :class:`repro.arch.MulticoreProcessor`.
    """

    finish_ps: Optional[int]

    def set_thread_args(self, args_per_thread: list[dict[int, float]]) -> None:
        """Load the kernel ABI registers for every hardware thread."""
        ...

    def start(self) -> None:
        """Begin execution at the current engine time."""
        ...

    @property
    def done(self) -> bool:
        """True once every thread has halted."""
        ...

    def thread_states(self) -> list[np.ndarray]:
        """Per-global-thread live-state arrays (host copy-out order)."""
        ...

    def collect(self) -> dict[str, float]:
        """Aggregate run counters for the energy model and reports."""
        ...
