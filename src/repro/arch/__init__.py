"""Baseline PNM architectures the paper compares Millipede against.

All baselines share Millipede's resources exactly (section V): same number
of cores/lanes, same 4-way multithreading, same in-order pipelines, same
160 KB of on-processor-die memory, the same die-stacked DRAM channel, the
same interleaved data layout, and sequential prefetch - so measured
differences isolate row-orientedness, flow control, and rate matching.
"""

from repro.arch.base import Processor
from repro.arch.ssmc import SsmcProcessor
from repro.arch.gpgpu import GpgpuSM
from repro.arch.vws import VwsSM, VwsRowSM
from repro.arch.multicore import MulticoreProcessor

__all__ = [
    "Processor",
    "SsmcProcessor",
    "GpgpuSM",
    "VwsSM",
    "VwsRowSM",
    "MulticoreProcessor",
]
