"""Variable Warp Sizing [41] and the VWS-row variant (sections II, V, VI).

VWS dynamically chooses between 4-wide and 32-wide warps: narrow warps lose
less to branch divergence, wide warps amortize instruction processing when
control flow is uniform.  The paper observes that on BMLAs "VWS always
chooses 4-wide warps" - their data-dependent branches split ~70/30, so the
probability that even 4 threads agree is under 25%.  We implement the
selection policy explicitly (:meth:`VwsSM.select_width`), verify in tests
that every BMLA's measured divergence trips the narrow choice, and run the
SM with 8 concurrent 4-wide warps issuing in parallel lane slices.

``VwsRowSM`` adds Millipede's row-orientedness and flow control on top of
VWS (the paper's generality check): warp loads go to a shared row prefetch
buffer, with each 4-wide warp acting as one consumption unit.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.gpgpu import GpgpuSM
from repro.config import SystemConfig, VwsConfig
from repro.mem.prefetch_buffer import PrefetchBuffer


class VwsSM(GpgpuSM):
    """GPGPU SM running the VWS-selected (narrow) warp width."""

    def __init__(self, engine, config: SystemConfig, program, global_mem, stats, **kw):
        kw.setdefault("warp_width", config.vws.narrow_width)
        super().__init__(engine, config, program, global_mem, stats, **kw)

    @staticmethod
    def select_width(divergence_rate: float, cfg: VwsConfig) -> int:
        """The VWS policy: fraction of branches that diverge (measured over
        a profiling window on wide warps) above the threshold selects
        narrow warps.  BMLAs always exceed the threshold (tested)."""
        if divergence_rate > cfg.divergence_threshold:
            return cfg.narrow_width
        return cfg.wide_width


class VwsRowSM(VwsSM):
    """VWS + Millipede's row-oriented, flow-controlled prefetch buffer.

    Each narrow warp is one consumption unit of the prefetch buffer (its
    four lanes read four adjacent words of the same row), so the DF
    counters saturate at the warp count.
    """

    uses_l1d_input_path = False

    def __init__(self, engine, config: SystemConfig, program, global_mem, stats,
                 *, input_base_word: int, input_end_word: int, layout=None, **kw):
        super().__init__(
            engine, config, program, global_mem, stats,
            input_base_word=input_base_word, input_end_word=input_end_word, **kw,
        )
        row_words = config.dram.row_words
        if input_base_word % row_words or input_end_word % row_words:
            raise ValueError("input region must be row-aligned")
        n_warps = len(self.warps)
        self.prefetch_buffer = PrefetchBuffer(
            engine,
            self.mc,
            stats,
            n_corelets=n_warps,
            n_entries=config.millipede.prefetch_entries,
            row_words=row_words,
            flow_control=config.millipede.flow_control,
            demand_block_words=config.millipede.slab_bytes // 4,
            prefetch_ahead=config.millipede.prefetch_ahead,
            record_row_span=layout.n_fields if layout is not None else 1,
        )

    def start(self) -> None:
        row_words = self.config.dram.row_words
        self.prefetch_buffer.start(
            self._input_base // row_words,
            self._input_end // row_words - 1,
        )
        super().start()

    def _input_port(self, addrs: list[int], on_all_ready: Callable[[int], None]) -> int:
        # the PB needs the consumer id; recover the warp from the addresses'
        # thread mapping is fragile, so _issue_global passes through the
        # warp via a closure set just before the call
        raise RuntimeError("VwsRowSM routes loads in _issue_global directly")

    def _issue_global(self, warp, rd: int, addr_lanes: list) -> None:
        remaining = len(addr_lanes)
        latest = self.engine.now

        def word_ready(ready_ps: int, _code: str) -> None:
            nonlocal remaining, latest
            remaining -= 1
            latest = max(latest, ready_ps)
            if remaining == 0:
                for l, addr in addr_lanes:
                    warp.lanes[l].commit_load(rd, self.global_mem.read_word(addr))
                warp.blocked = False
                self.pending -= 1
                warp.ready_at = latest + self.clock.period_ps
                self._schedule_run(max(self.t, warp.ready_at))

        self.mem_transactions += 1
        for _, addr in addr_lanes:
            self.prefetch_buffer.demand_access(warp.wid, addr, word_ready)

    def collect(self) -> dict[str, float]:
        out = super().collect()
        out.pop("l1d_accesses", None)
        return out
