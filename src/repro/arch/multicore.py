"""Conventional multicore baseline for Fig. 5 (section VI-C).

An 8-core, 3.6 GHz, 4-issue, 4-way-SMT "Xeon-like" node with a cache
hierarchy and *off-chip* DRAM at one-fourth the die-stacked bandwidth and
70 pJ/bit [44].  The paper itself flags this comparison as apples-to-
oranges (few complex cores vs. thousands of simple ones); it is included
to quantify the end-to-end gap, with the caveats of section VI-C.

Modelling choices (documented in DESIGN.md):

* The 4-wide out-of-order issue is approximated by a 4-issue in-order SMT
  pipeline using a micro-cycle trick: the core clock runs at
  ``4 x 3.6 GHz`` with a 4-micro-cycle issue gap, so each of the four SMT
  contexts can issue once per *real* cycle and the core sustains up to
  IPC 4 when all contexts are ready.  Idle accounting is converted back to
  real cycles by the same factor.
* The L2 is not separately modelled: BMLA input streams miss every level
  by construction, and the live state fits in L1.
* Off-chip access adds a fixed pin/PCB latency and is billed 70 pJ/bit.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.config import SystemConfig, WORD_BYTES
from repro.core.corelet import MimdCore
from repro.core.replay import ReplayMixin, build_plan
from repro.dram.controller import DramRequest, MemoryController
from repro.dram.dram import GlobalMemory
from repro.engine.clock import Clock
from repro.engine.events import Engine
from repro.engine.stats import Stats
from repro.isa.executor import MemAccess, ThreadContext
from repro.isa.program import Program
from repro.mem.dcache import SetAssocCache
from repro.mem.local_memory import LocalMemory
from repro.mem.prefetcher import BlockStream, SequentialPrefetcher, core_block_schedule


class OffchipController(MemoryController):
    """A DRAM channel reached over pins: extra fixed latency per access."""

    def __init__(self, engine: Engine, cfg, stats: Stats, extra_latency_ps: int,
                 name: str = "offchip"):
        super().__init__(engine, cfg, stats, name=name)
        self.extra_latency_ps = extra_latency_ps

    def _complete(self, req: DramRequest) -> None:
        self.stats.inc("completed")
        if self.observer is not None:
            self.observer.on_complete(req)
        if req.callback is not None:
            self.engine.schedule(self.extra_latency_ps, req.callback, req)
        self._kick()


class _XeonCore(MimdCore):
    """One multicore context bundle (4 SMT threads, 4-issue)."""

    def __init__(self, *args, prefetcher: SequentialPrefetcher, **kwargs):
        super().__init__(*args, **kwargs)
        self.prefetcher = prefetcher
        self.state_l1_accesses = 0

    def _local_access(self, th: ThreadContext, acc: MemAccess) -> None:
        self.state_l1_accesses += 1
        super()._local_access(th, acc)

    def _global_access(self, slot: int, acc: MemAccess) -> None:
        def on_ready(ready_ps: int, _slot=slot, _acc=acc) -> None:
            self._global_done(_slot, _acc, ready_ps)

        self.prefetcher.demand_access(acc.addr, on_ready)


class _ReplayXeonCore(ReplayMixin, _XeonCore):
    """Vector-backend multicore context bundle: trace-replay loop."""


class MulticoreProcessor:
    """The full 8-core node (one shared off-chip channel)."""

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        program: Program,
        global_mem: GlobalMemory,
        stats: Stats,
        *,
        input_base_word: int,
        input_end_word: int,
        layout=None,
        backend: str = "reference",
    ):
        # layout (an InterleavedLayout) enables the oracle stream prefetch
        # schedule the paper grants the MIMD baselines ("100%-accurate
        # sequential prefetch"); without it prefetching is next-block.
        self._layout = layout
        self.engine = engine
        self.config = config
        self.program = program
        self.global_mem = global_mem
        self.stats = stats
        if backend not in ("reference", "vector"):
            raise ValueError(f"unknown processor backend {backend!r}")
        self.backend = backend
        self._thread_args = None
        self._initial_state = None
        mcfg = config.multicore

        # micro-cycle trick: clock x issue_width, gap = issue_width
        self.issue_width = mcfg.issue_width
        self.clock = Clock(mcfg.clock_hz * mcfg.issue_width, "multicore")
        core_like = dataclasses.replace(
            config.core,
            clock_hz=mcfg.clock_hz * mcfg.issue_width,
            n_cores=mcfg.n_cores,
            n_threads=mcfg.n_threads,
            issue_gap_cycles=mcfg.issue_width,
        )

        offchip_dram = dataclasses.replace(
            config.dram,
            channel_bytes_per_cycle=max(
                1, round(config.dram.channel_bytes_per_cycle * mcfg.offchip_bandwidth_fraction)
            ),
        )
        self.mc = OffchipController(
            engine, offchip_dram, stats, mcfg.offchip_extra_latency_ps, name="offchip"
        )
        stream = BlockStream(input_base_word, input_end_word)

        state_bytes = config.millipede.local_memory_bytes
        self._done_count = 0
        self.finish_ps: Optional[int] = None
        self.on_finished: Optional[Callable[[], None]] = None

        self.cores: list[_XeonCore] = []
        self.prefetchers: list[SequentialPrefetcher] = []
        for core_id in range(mcfg.n_cores):
            cache = SetAssocCache(mcfg.l1_bytes, mcfg.line_bytes, assoc=8)
            schedule = None
            if layout is not None:
                schedule = core_block_schedule(
                    base_word=layout.base,
                    n_fields=layout.n_fields,
                    block_records=layout.block_records,
                    n_blocks=layout.n_blocks,
                    core_id=core_id,
                    n_cores=mcfg.n_cores,
                    line_words=mcfg.line_bytes // WORD_BYTES,
                )
            pf = SequentialPrefetcher(
                engine, self.mc, cache, stream, stats,
                name=f"mc_l1_{core_id}", degree=4,
                schedule=schedule,
            )
            core_cls = _ReplayXeonCore if backend == "vector" else _XeonCore
            core = core_cls(
                engine,
                program,
                core_like,
                self.clock,
                LocalMemory(state_bytes // WORD_BYTES),
                core_id,
                self._core_done,
                global_mem.read_word,
                prefetcher=pf,
            )
            self.cores.append(core)
            self.prefetchers.append(pf)

    # ------------------------------------------------------------------
    def load_initial_state(self, state) -> None:
        """Preload every thread's live-state partition with constants."""
        self._initial_state = state
        n_threads = self.config.multicore.n_threads
        for c in self.cores:
            if len(state) > c.state_words:
                raise ValueError(
                    f"initial state of {len(state)} words exceeds the "
                    f"{c.state_words}-word per-thread partition"
                )
            for slot in range(n_threads):
                lo = slot * c.state_words
                c.local_mem.data[lo : lo + len(state)] = state

    def set_thread_args(self, args_per_thread: list[dict[int, float]]) -> None:
        self._thread_args = args_per_thread
        n_threads = self.config.multicore.n_threads
        expected = self.config.multicore.n_cores * n_threads
        if len(args_per_thread) != expected:
            raise ValueError(f"need {expected} thread-arg dicts, got {len(args_per_thread)}")
        for g, args in enumerate(args_per_thread):
            self.cores[g // n_threads].set_thread_args(g % n_threads, args)

    def start(self) -> None:
        if self.backend == "vector":
            # the micro-cycle trick leaves n_registers on the shared core
            # config; the functional phase only needs registers + state
            plan = build_plan(self, self.config.core.n_registers)
            for c in self.cores:
                c.load_plan(plan)
        for c in self.cores:
            c.start()

    def _core_done(self, core: MimdCore) -> None:
        self._done_count += 1
        if self._done_count == len(self.cores):
            self.finish_ps = max(c.finish_ps for c in self.cores)
            self.stats.set("proc.finish_ps", self.finish_ps)
            if self.on_finished is not None:
                self.on_finished()

    @property
    def done(self) -> bool:
        return self._done_count == len(self.cores)

    # ------------------------------------------------------------------
    def thread_states(self) -> list:
        out = []
        for c in self.cores:
            for slot in range(self.config.multicore.n_threads):
                lo = slot * c.state_words
                out.append(c.local_mem.data[lo : lo + c.state_words].copy())
        return out

    def collect(self) -> dict[str, float]:
        instructions = sum(c.instructions for c in self.cores)
        return {
            "instructions": instructions,
            # convert micro-cycle idle counts back to real cycles
            "idle_cycles": sum(c.idle_cycles for c in self.cores) / self.issue_width,
            "branches": sum(c.dynamic_branches for c in self.cores),
            "l1d_accesses": sum(c.state_l1_accesses for c in self.cores)
            + sum(pf.cache.accesses for pf in self.prefetchers),
            "finish_ps": self.finish_ps or 0,
            "icache_fetches": instructions,
        }
