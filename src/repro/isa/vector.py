"""NumPy batch functional executor (the ``vector`` backend's first phase).

The reference simulator interprets one instruction per
:func:`repro.isa.executor.step_one` call inside the event loop.  That is
exact but slow: interpretation dominates the host profile.  This module
exploits a structural property of every BMLA kernel to pull the *functional*
work out of the event loop entirely:

**threads never share mutable state.**  Global memory is read-only input
(``stg`` is not implemented, section IV-E), and live state lives in
thread-private scratchpad partitions.  Therefore each thread's functional
trajectory — every register value, branch outcome, and memory address —
is fully determined by its start state and is *independent of all timing*.

So the ``vector`` backend splits a run in two phases:

1. **Functional phase (here):** execute all ``T`` hardware threads in
   lockstep as NumPy column operations.  Threads are grouped by PC
   (most-populated PC first); the straight-line basic block at that PC
   (boundaries from :func:`repro.isa.cfg.leader_pcs`) runs as one batched
   column op per instruction across the whole group.  The output is a
   :class:`VectorPlan`: per-thread instruction *traces* plus final local
   memory and per-thread counters.
2. **Timing phase (:mod:`repro.core.replay`):** the event-driven core
   model re-runs with the per-instruction interpreter replaced by trace
   consumption — identical issue order, identical event schedule,
   identical statistics, at a fraction of the per-issue cost.

Traces
------
A thread's trace alternates *gaps* and *events*: ``gaps[i]`` pure issues
(ALU, branches, jumps, local loads/stores — everything the core handles
inline in one cycle) precede event ``i``, which is one of

=========  ========================================================
``K_LDG``  a global load issue; ``addrs[i]`` is the word address the
           core must demand from its input port
``K_BAR``  a software-barrier issue (rendezvous via the coordinator)
``K_HALT`` the thread's final issue; always last
=========  ========================================================

Every gap unit and every event is exactly one issued instruction, so
``sum(gaps) + len(kinds)`` equals the thread's dynamic instruction count.

Exactness
---------
Column ops are written to match the scalar interpreter bit-for-bit on
IEEE-754 float64: ``min``/``max`` via ``np.where`` (propagates the scalar
``a if a < b else b`` choice exactly), integer ops via truncating int64
casts with NumPy's floor-division/remainder (Python semantics), and error
parity for the reference's failure modes (``ZeroDivisionError``, sqrt
domain, address range, ``stg``).  The one representational difference is
that registers here are always float64 while the scalar interpreter keeps
Python ints exact beyond 2**53 — irrelevant for every kernel the workload
framework can emit (addresses and counters stay far below 2**53) and
checked nowhere else, but documented for honesty.  Fatal kernel errors
surface during this phase, i.e. *before* simulated time starts, rather
than mid-run as in the reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.cfg import leader_pcs
from repro.isa.instructions import Op
from repro.isa.program import Program

_ADD = int(Op.ADD); _SUB = int(Op.SUB); _MUL = int(Op.MUL); _DIV = int(Op.DIV)
_MIN = int(Op.MIN); _MAX = int(Op.MAX); _ABS = int(Op.ABS); _NEG = int(Op.NEG)
_SQRT = int(Op.SQRT); _MOV = int(Op.MOV)
_IDIV = int(Op.IDIV); _REM = int(Op.REM); _AND = int(Op.AND); _OR = int(Op.OR)
_XOR = int(Op.XOR); _SLL = int(Op.SLL); _SRL = int(Op.SRL); _TRUNC = int(Op.TRUNC)
_SLT = int(Op.SLT); _SLE = int(Op.SLE); _SEQ = int(Op.SEQ); _SNE = int(Op.SNE)
_LI = int(Op.LI); _ADDI = int(Op.ADDI); _MULI = int(Op.MULI)
_SLTI = int(Op.SLTI); _ANDI = int(Op.ANDI)
_BEQ = int(Op.BEQ); _BNE = int(Op.BNE); _BLT = int(Op.BLT); _BGE = int(Op.BGE)
_BEQZ = int(Op.BEQZ); _BNEZ = int(Op.BNEZ); _J = int(Op.J)
_LDG = int(Op.LDG); _STG = int(Op.STG); _LDL = int(Op.LDL); _STL = int(Op.STL)
_HALT = int(Op.HALT); _NOP = int(Op.NOP); _BAR = int(Op.BAR)

#: trace event kinds
K_LDG = 0
K_BAR = 1
K_HALT = 2


class ThreadTrace:
    """One thread's issue trace (see module docstring)."""

    __slots__ = ("gaps", "kinds", "addrs")

    def __init__(self):
        self.gaps: list[int] = []    # pure issues before event i
        self.kinds: list[int] = []   # K_LDG / K_BAR / K_HALT
        self.addrs: list[int] = []   # word address for K_LDG, -1 otherwise

    @property
    def total_issues(self) -> int:
        return sum(self.gaps) + len(self.kinds)


class VectorPlan:
    """Everything the functional phase produced for the timing replay."""

    __slots__ = ("traces", "local", "branches", "taken_branches",
                 "local_reads", "local_writes")

    def __init__(self, traces, local, branches, taken_branches,
                 local_reads, local_writes):
        #: per-global-thread :class:`ThreadTrace`
        self.traces: list[ThreadTrace] = traces
        #: final per-thread live state, shape ``[T, state_words]`` float64
        self.local: np.ndarray = local
        self.branches: np.ndarray = branches              # [T] int64
        self.taken_branches: np.ndarray = taken_branches  # [T] int64
        self.local_reads: np.ndarray = local_reads        # [T] int64
        self.local_writes: np.ndarray = local_writes      # [T] int64


class _Block:
    """One compiled straight-line block (leader to control transfer)."""

    __slots__ = ("pc", "instrs", "n_instrs", "pattern", "trailing",
                 "terminal", "next_pc", "has_events")

    def __init__(self, pc: int, instrs: list):
        self.pc = pc
        self.instrs = instrs
        self.n_instrs = len(instrs)
        # (pure_count_before, kind, ldg_index) per event, in block order
        self.pattern: list[tuple[int, int, int]] = []
        pure = 0
        n_ldg = 0
        for ins in instrs:
            op = int(ins.op)
            if op == _LDG:
                self.pattern.append((pure, K_LDG, n_ldg))
                n_ldg += 1
                pure = 0
            elif op == _BAR:
                self.pattern.append((pure, K_BAR, -1))
                pure = 0
            elif op == _HALT:
                self.pattern.append((pure, K_HALT, -1))
                pure = 0
            else:
                pure += 1
        self.trailing = pure
        self.has_events = bool(self.pattern)

        last = instrs[-1]
        last_op = int(last.op)
        if last_op == _HALT:
            self.terminal = "halt"
        elif _BEQ <= last_op <= _BNEZ:
            self.terminal = "branch"
        elif last_op == _J:
            self.terminal = "jump"
        else:
            self.terminal = "fall"
        self.next_pc = pc + len(instrs)  # used by "fall" (and branch not-taken)


def compile_blocks(program: Program) -> dict[int, _Block]:
    """Basic blocks keyed by leader PC.  Blocks are truncated after the
    first ``halt`` (anything past it in the same block is unreachable)."""
    instrs = program.instrs
    leaders = leader_pcs(instrs)
    bounds = leaders + [len(instrs)]
    blocks: dict[int, _Block] = {}
    for i, pc in enumerate(leaders):
        body = instrs[pc:bounds[i + 1]]
        for j, ins in enumerate(body):
            if int(ins.op) == _HALT:
                body = body[: j + 1]
                break
        blocks[pc] = _Block(pc, body)
    return blocks


def execute(
    program: Program,
    gm_data: np.ndarray,
    thread_args: list[dict[int, float]],
    n_regs: int,
    state_words: int,
    initial_state: Optional[np.ndarray] = None,
) -> VectorPlan:
    """Functionally execute all threads; return the replay plan.

    ``thread_args`` is in *global thread order* (the same list the driver
    hands to ``Processor.set_thread_args``); ``state_words`` is the
    per-thread live-state partition size of the target architecture.
    """
    T = len(thread_args)
    R = np.zeros((T, n_regs), dtype=np.float64)
    for t, args in enumerate(thread_args):
        for reg, val in args.items():
            if reg == 0:
                raise ValueError("r0 is hard-wired to zero")
            R[t, reg] = val
    L = np.zeros((T, state_words), dtype=np.float64)
    if initial_state is not None:
        L[:, : len(initial_state)] = initial_state

    blocks = compile_blocks(program)
    machine = _VectorMachine(program, blocks, gm_data, R, L, state_words)
    machine.run()
    return VectorPlan(
        traces=machine.traces,
        local=L,
        branches=machine.branches,
        taken_branches=machine.taken,
        local_reads=machine.lreads,
        local_writes=machine.lwrites,
    )


class _VectorMachine:
    """Lockstep block interpreter over all threads."""

    def __init__(self, program, blocks, gm_data, R, L, state_words):
        self.program = program
        self.blocks = blocks
        self.gm = np.asarray(gm_data, dtype=np.float64)
        self.R = R
        self.L = L
        self.state_words = state_words
        T = R.shape[0]
        self.T = T
        self.P = np.zeros(T, dtype=np.int64)
        self.halted = np.zeros(T, dtype=bool)
        self.branches = np.zeros(T, dtype=np.int64)
        self.taken = np.zeros(T, dtype=np.int64)
        self.lreads = np.zeros(T, dtype=np.int64)
        self.lwrites = np.zeros(T, dtype=np.int64)
        self.gap_acc = np.zeros(T, dtype=np.int64)
        self.traces = [ThreadTrace() for _ in range(T)]

    # ------------------------------------------------------------------
    def run(self) -> None:
        P, halted = self.P, self.halted
        while True:
            alive = np.flatnonzero(~halted)
            if alive.size == 0:
                return
            pcs = P[alive]
            vals, counts = np.unique(pcs, return_counts=True)
            pc = int(vals[np.argmax(counts)])
            idx = alive[pcs == pc]
            block = self.blocks.get(pc)
            if block is None:
                raise RuntimeError(f"pc {pc} is not a basic-block leader")
            self._exec_block(block, idx)

    # ------------------------------------------------------------------
    def _exec_block(self, block: _Block, idx: np.ndarray) -> None:
        R, L, gm = self.R, self.L, self.gm
        ldg_addrs: list[np.ndarray] = []

        for ins in block.instrs:
            op = int(ins.op)
            rd = ins.rd
            if op == _ADD:
                v = R[idx, ins.rs] + R[idx, ins.rt]
            elif op == _ADDI:
                v = R[idx, ins.rs] + ins.imm
            elif op == _SUB:
                v = R[idx, ins.rs] - R[idx, ins.rt]
            elif op == _MUL:
                v = R[idx, ins.rs] * R[idx, ins.rt]
            elif op == _MULI:
                v = R[idx, ins.rs] * ins.imm
            elif op == _LI:
                v = np.full(idx.size, ins.imm, dtype=np.float64)
            elif op == _MOV:
                v = R[idx, ins.rs]
            elif op == _SLT:
                v = (R[idx, ins.rs] < R[idx, ins.rt]).astype(np.float64)
            elif op == _SLTI:
                v = (R[idx, ins.rs] < ins.imm).astype(np.float64)
            elif op == _SLE:
                v = (R[idx, ins.rs] <= R[idx, ins.rt]).astype(np.float64)
            elif op == _SEQ:
                v = (R[idx, ins.rs] == R[idx, ins.rt]).astype(np.float64)
            elif op == _SNE:
                v = (R[idx, ins.rs] != R[idx, ins.rt]).astype(np.float64)
            elif op == _DIV:
                b = R[idx, ins.rt]
                if np.any(b == 0.0):
                    raise ZeroDivisionError("float division by zero")
                v = R[idx, ins.rs] / b
            elif op == _MIN:
                a, b = R[idx, ins.rs], R[idx, ins.rt]
                v = np.where(a < b, a, b)
            elif op == _MAX:
                a, b = R[idx, ins.rs], R[idx, ins.rt]
                v = np.where(a > b, a, b)
            elif op == _ABS:
                v = np.abs(R[idx, ins.rs])
            elif op == _NEG:
                v = -R[idx, ins.rs]
            elif op == _SQRT:
                a = R[idx, ins.rs]
                if np.any(a < 0.0):
                    raise ValueError("math domain error")
                v = np.sqrt(a)
            elif op == _TRUNC:
                v = np.trunc(R[idx, ins.rs])
            elif op == _IDIV:
                a = R[idx, ins.rs].astype(np.int64)
                b = R[idx, ins.rt].astype(np.int64)
                if np.any(b == 0):
                    raise ZeroDivisionError("integer division or modulo by zero")
                v = np.floor_divide(a, b).astype(np.float64)
            elif op == _REM:
                a = R[idx, ins.rs].astype(np.int64)
                b = R[idx, ins.rt].astype(np.int64)
                if np.any(b == 0):
                    raise ZeroDivisionError("integer division or modulo by zero")
                v = np.remainder(a, b).astype(np.float64)
            elif op == _AND:
                v = (R[idx, ins.rs].astype(np.int64)
                     & R[idx, ins.rt].astype(np.int64)).astype(np.float64)
            elif op == _ANDI:
                v = (R[idx, ins.rs].astype(np.int64) & int(ins.imm)).astype(np.float64)
            elif op == _OR:
                v = (R[idx, ins.rs].astype(np.int64)
                     | R[idx, ins.rt].astype(np.int64)).astype(np.float64)
            elif op == _XOR:
                v = (R[idx, ins.rs].astype(np.int64)
                     ^ R[idx, ins.rt].astype(np.int64)).astype(np.float64)
            elif op == _SLL:
                v = np.left_shift(
                    R[idx, ins.rs].astype(np.int64),
                    R[idx, ins.rt].astype(np.int64),
                ).astype(np.float64)
            elif op == _SRL:
                v = np.right_shift(
                    R[idx, ins.rs].astype(np.int64),
                    R[idx, ins.rt].astype(np.int64),
                ).astype(np.float64)
            elif op == _NOP:
                continue
            elif op == _BAR:
                continue  # rendezvous is pure timing; recorded via pattern
            elif op == _J:
                break  # terminal; PC update below
            elif op == _HALT:
                break  # terminal; halt handling below
            elif _BEQ <= op <= _BNEZ:
                break  # terminal; branch handling below
            elif op == _LDG:
                addr = (R[idx, ins.rs] + ins.imm).astype(np.int64)
                bad = (addr < 0) | (addr >= self.gm.size)
                if np.any(bad):
                    raise IndexError(
                        f"global read out of range: {int(addr[np.argmax(bad)])} "
                        f"(size {self.gm.size})"
                    )
                ldg_addrs.append(addr)
                if rd:
                    R[idx, rd] = gm[addr]
                continue
            elif op == _LDL:
                addr = (R[idx, ins.rs] + ins.imm).astype(np.int64)
                self._check_local(addr, idx)
                if rd:
                    R[idx, rd] = L[idx, addr]
                self.lreads[idx] += 1
                continue
            elif op == _STL:
                addr = (R[idx, ins.rt] + ins.imm).astype(np.int64)
                self._check_local(addr, idx)
                L[idx, addr] = R[idx, ins.rs]
                self.lwrites[idx] += 1
                continue
            elif op == _STG:
                raise NotImplementedError(
                    "BMLA Map kernels do not store to global memory (outputs "
                    "live in local state and are copied out by the host, "
                    "section IV-E)"
                )
            else:  # pragma: no cover - full opcode coverage above
                raise ValueError(f"vector backend cannot execute {ins.text}")

            if rd:
                R[idx, rd] = v

        # ---- trace recording -----------------------------------------
        gap_acc = self.gap_acc
        if block.has_events:
            traces = self.traces
            pattern = block.pattern
            trailing = block.trailing
            addr_cols = [a.tolist() for a in ldg_addrs]
            for j, g in enumerate(idx.tolist()):
                tr = traces[g]
                acc = int(gap_acc[g])
                for pure, kind, ldg_i in pattern:
                    tr.gaps.append(acc + pure)
                    tr.kinds.append(kind)
                    tr.addrs.append(addr_cols[ldg_i][j] if ldg_i >= 0 else -1)
                    acc = 0
                gap_acc[g] = acc + trailing
        else:
            gap_acc[idx] += block.n_instrs

        # ---- control transfer ----------------------------------------
        last = block.instrs[-1]
        if block.terminal == "halt":
            self.halted[idx] = True
        elif block.terminal == "branch":
            op = int(last.op)
            a = self.R[idx, last.rs]
            if op == _BEQ:
                cond = a == self.R[idx, last.rt]
            elif op == _BNE:
                cond = a != self.R[idx, last.rt]
            elif op == _BLT:
                cond = a < self.R[idx, last.rt]
            elif op == _BGE:
                cond = a >= self.R[idx, last.rt]
            elif op == _BEQZ:
                cond = a == 0
            else:  # BNEZ
                cond = a != 0
            self.branches[idx] += 1
            self.taken[idx] += cond
            self.P[idx] = np.where(cond, last.target, block.next_pc)
        elif block.terminal == "jump":
            self.P[idx] = last.target
        else:
            self.P[idx] = block.next_pc

    # ------------------------------------------------------------------
    def _check_local(self, addr: np.ndarray, idx: np.ndarray) -> None:
        bad = (addr < 0) | (addr >= self.state_words)
        if np.any(bad):
            j = int(np.argmax(bad))
            raise IndexError(
                f"thread {int(idx[j])} local address {int(addr[j])} exceeds "
                f"its {self.state_words}-word state partition"
            )
