"""NumPy batch functional executor (the ``vector`` backend's first phase).

The reference simulator interprets one instruction per
:func:`repro.isa.executor.step_one` call inside the event loop.  That is
exact but slow: interpretation dominates the host profile.  This module
exploits a structural property of every BMLA kernel to pull the *functional*
work out of the event loop entirely:

**threads never share mutable state.**  Global memory is read-only input
(``stg`` is not implemented, section IV-E), and live state lives in
thread-private scratchpad partitions.  Therefore each thread's functional
trajectory — every register value, branch outcome, and memory address —
is fully determined by its start state and is *independent of all timing*.

So the ``vector`` backend splits a run in two phases:

1. **Functional phase (here):** execute all ``T`` hardware threads in
   lockstep as NumPy column operations.  Threads are grouped by PC
   (most-populated PC first); the straight-line basic block at that PC
   (boundaries from :func:`repro.isa.cfg.leader_pcs`) runs as one batched
   column op per instruction across the whole group.  The output is a
   :class:`VectorPlan`: per-thread instruction *traces* plus final local
   memory and per-thread counters.
2. **Timing phase (:mod:`repro.core.replay`):** the event-driven core
   model re-runs with the per-instruction interpreter replaced by trace
   consumption — identical issue order, identical event schedule,
   identical statistics, at a fraction of the per-issue cost.

The same machinery drives the SIMT architectures (``gpgpu``/``vws``/
``vws-row``): :func:`execute_simt` runs a **PDOM divergence engine** over
dense per-warp reconvergence-stack matrices (one row of reconvergence-PC /
next-PC / active-mask per stack frame), executing every active lane of a
warp in lockstep through the shared column-op dispatch and recording
per-*warp* traces plus the per-branch taken-lane masks the observed replay
needs to evolve the reference stack discipline.  Warp-stack transitions
happen only at basic-block boundaries, which is exact: every reconvergence
PC and every stack next-PC is a block leader, so the reference's
per-instruction ``_pop_reconverged`` can only ever fire where a block ends.

Traces
------
A thread's trace alternates *gaps* and *events*: ``gaps[i]`` pure issues
(ALU, branches, jumps, local loads/stores — everything the core handles
inline in one cycle) precede event ``i``, which is one of

=========  ========================================================
``K_LDG``  a global load issue; ``addrs[i]`` is the word address the
           core must demand from its input port
``K_BAR``  a software-barrier issue (rendezvous via the coordinator)
``K_HALT`` the thread's final issue; always last
=========  ========================================================

Every gap unit and every event is exactly one issued instruction, so
``sum(gaps) + len(kinds)`` equals the thread's dynamic instruction count.

A *warp* trace (:class:`WarpTrace`) is the same structure per warp: the
SIMT cores issue whole warps, and barriers are plain issues there (the
SIMT architectures run barrier-free kernels), so only ``K_LDG`` and
``K_HALT`` occur; a load's payload carries the ``(lane, address)`` pairs
of the active lanes in the reference's ascending-lane order.

Exactness
---------
Column ops are written to match the scalar interpreter bit-for-bit on
IEEE-754 float64: ``min``/``max`` via ``np.where`` (propagates the scalar
``a if a < b else b`` choice exactly), integer ops via truncating int64
casts with NumPy's floor-division/remainder (Python semantics), and error
parity for the reference's failure modes (``ZeroDivisionError``, sqrt
domain, address range, ``stg``, divergent ``halt``).  The one
representational difference is that registers here are always float64
while the scalar interpreter keeps Python ints exact beyond 2**53 —
irrelevant for every kernel the workload framework can emit (addresses
and counters stay far below 2**53) and checked nowhere else, but
documented for honesty.  Fatal kernel errors surface during this phase,
i.e. *before* simulated time starts, rather than mid-run as in the
reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.cfg import leader_pcs
from repro.isa.instructions import Op
from repro.isa.program import Program

_ADD = int(Op.ADD); _SUB = int(Op.SUB); _MUL = int(Op.MUL); _DIV = int(Op.DIV)
_MIN = int(Op.MIN); _MAX = int(Op.MAX); _ABS = int(Op.ABS); _NEG = int(Op.NEG)
_SQRT = int(Op.SQRT); _MOV = int(Op.MOV)
_IDIV = int(Op.IDIV); _REM = int(Op.REM); _AND = int(Op.AND); _OR = int(Op.OR)
_XOR = int(Op.XOR); _SLL = int(Op.SLL); _SRL = int(Op.SRL); _TRUNC = int(Op.TRUNC)
_SLT = int(Op.SLT); _SLE = int(Op.SLE); _SEQ = int(Op.SEQ); _SNE = int(Op.SNE)
_LI = int(Op.LI); _ADDI = int(Op.ADDI); _MULI = int(Op.MULI)
_SLTI = int(Op.SLTI); _ANDI = int(Op.ANDI)
_BEQ = int(Op.BEQ); _BNE = int(Op.BNE); _BLT = int(Op.BLT); _BGE = int(Op.BGE)
_BEQZ = int(Op.BEQZ); _BNEZ = int(Op.BNEZ); _J = int(Op.J)
_LDG = int(Op.LDG); _STG = int(Op.STG); _LDL = int(Op.LDL); _STL = int(Op.STL)
_HALT = int(Op.HALT); _NOP = int(Op.NOP); _BAR = int(Op.BAR)

#: trace event kinds
K_LDG = 0
K_BAR = 1
K_HALT = 2


class ThreadTrace:
    """One thread's issue trace (see module docstring)."""

    __slots__ = ("gaps", "kinds", "addrs")

    def __init__(self):
        self.gaps: list[int] = []    # pure issues before event i
        self.kinds: list[int] = []   # K_LDG / K_BAR / K_HALT
        self.addrs: list[int] = []   # word address for K_LDG, -1 otherwise

    @property
    def total_issues(self) -> int:
        return sum(self.gaps) + len(self.kinds)


class WarpTrace:
    """One warp's issue trace plus the branch outcomes of its lanes.

    ``gaps``/``kinds`` follow the :class:`ThreadTrace` structure at warp
    granularity (only ``K_LDG``/``K_HALT`` occur; barriers are plain warp
    issues on the SIMT cores).  ``payloads[i]`` carries a load's
    ``(rd, [(lane, word_address), ...])`` in ascending active-lane order,
    or ``None`` for the halt.  ``tmasks`` lists the taken-lane mask of
    every branch the warp issued, in issue order — the observed replay
    consumes them to evolve the live PDOM stack exactly as the reference
    interpreter would.
    """

    __slots__ = ("gaps", "kinds", "payloads", "tmasks")

    def __init__(self):
        self.gaps: list[int] = []
        self.kinds: list[int] = []
        self.payloads: list = []
        self.tmasks: list[int] = []

    @property
    def total_issues(self) -> int:
        return sum(self.gaps) + len(self.kinds)


class VectorPlan:
    """Everything the functional phase produced for the timing replay."""

    __slots__ = ("traces", "local", "branches", "taken_branches",
                 "local_reads", "local_writes")

    def __init__(self, traces, local, branches, taken_branches,
                 local_reads, local_writes):
        #: per-global-thread :class:`ThreadTrace`
        self.traces: list[ThreadTrace] = traces
        #: final per-thread live state, shape ``[T, state_words]`` float64
        self.local: np.ndarray = local
        self.branches: np.ndarray = branches              # [T] int64
        self.taken_branches: np.ndarray = taken_branches  # [T] int64
        self.local_reads: np.ndarray = local_reads        # [T] int64
        self.local_writes: np.ndarray = local_writes      # [T] int64


class SimtPlan:
    """The SIMT functional phase's product: per-warp traces, final live
    state, and every counter the timing replay restores at finish."""

    __slots__ = ("warp_traces", "local", "instr_count", "branches",
                 "taken_branches", "local_reads", "local_writes",
                 "warp_instructions", "active_lane_slots",
                 "divergence_idle_slots", "divergent_branches",
                 "uniform_branches", "shared_accesses", "conflict_extra")

    def __init__(self, warp_traces, local, instr_count, branches,
                 taken_branches, local_reads, local_writes,
                 warp_instructions, active_lane_slots,
                 divergence_idle_slots, divergent_branches,
                 uniform_branches, shared_accesses, conflict_extra):
        #: per-warp :class:`WarpTrace`
        self.warp_traces: list[WarpTrace] = warp_traces
        #: final per-thread live state, shape ``[T, state_words]`` float64
        self.local: np.ndarray = local
        self.instr_count: np.ndarray = instr_count        # [T] int64
        self.branches: np.ndarray = branches              # [T] int64
        self.taken_branches: np.ndarray = taken_branches  # [T] int64
        self.local_reads: np.ndarray = local_reads        # [T] int64
        self.local_writes: np.ndarray = local_writes      # [T] int64
        self.warp_instructions = warp_instructions
        self.active_lane_slots = active_lane_slots
        self.divergence_idle_slots = divergence_idle_slots
        self.divergent_branches = divergent_branches
        self.uniform_branches = uniform_branches
        #: banked-shared-memory access count (one per active lane per
        #: local load/store) and total conflict serialization cycles
        self.shared_accesses = shared_accesses
        self.conflict_extra = conflict_extra


class _Block:
    """One compiled straight-line block (leader to control transfer)."""

    __slots__ = ("pc", "instrs", "n_instrs", "pattern", "trailing",
                 "terminal", "next_pc", "has_events")

    def __init__(self, pc: int, instrs: list):
        self.pc = pc
        self.instrs = instrs
        self.n_instrs = len(instrs)
        # (pure_count_before, kind, ldg_index) per event, in block order
        self.pattern: list[tuple[int, int, int]] = []
        pure = 0
        n_ldg = 0
        for ins in instrs:
            op = int(ins.op)
            if op == _LDG:
                self.pattern.append((pure, K_LDG, n_ldg))
                n_ldg += 1
                pure = 0
            elif op == _BAR:
                self.pattern.append((pure, K_BAR, -1))
                pure = 0
            elif op == _HALT:
                self.pattern.append((pure, K_HALT, -1))
                pure = 0
            else:
                pure += 1
        self.trailing = pure
        self.has_events = bool(self.pattern)

        last = instrs[-1]
        last_op = int(last.op)
        if last_op == _HALT:
            self.terminal = "halt"
        elif _BEQ <= last_op <= _BNEZ:
            self.terminal = "branch"
        elif last_op == _J:
            self.terminal = "jump"
        else:
            self.terminal = "fall"
        self.next_pc = pc + len(instrs)  # used by "fall" (and branch not-taken)


def compile_blocks(program: Program) -> dict[int, _Block]:
    """Basic blocks keyed by leader PC.  Blocks are truncated after the
    first ``halt`` (anything past it in the same block is unreachable)."""
    instrs = program.instrs
    leaders = leader_pcs(instrs)
    bounds = leaders + [len(instrs)]
    blocks: dict[int, _Block] = {}
    for i, pc in enumerate(leaders):
        body = instrs[pc:bounds[i + 1]]
        for j, ins in enumerate(body):
            if int(ins.op) == _HALT:
                body = body[: j + 1]
                break
        blocks[pc] = _Block(pc, body)
    return blocks


def _init_thread_state(thread_args, n_regs, state_words, initial_state):
    """Registers and local-state matrices shared by both executors."""
    T = len(thread_args)
    R = np.zeros((T, n_regs), dtype=np.float64)
    for t, args in enumerate(thread_args):
        for reg, val in args.items():
            if reg == 0:
                raise ValueError("r0 is hard-wired to zero")
            R[t, reg] = val
    L = np.zeros((T, state_words), dtype=np.float64)
    if initial_state is not None:
        L[:, : len(initial_state)] = initial_state
    return R, L


def execute(
    program: Program,
    gm_data: np.ndarray,
    thread_args: list[dict[int, float]],
    n_regs: int,
    state_words: int,
    initial_state: Optional[np.ndarray] = None,
) -> VectorPlan:
    """Functionally execute all threads; return the replay plan.

    ``thread_args`` is in *global thread order* (the same list the driver
    hands to ``Processor.set_thread_args``); ``state_words`` is the
    per-thread live-state partition size of the target architecture.
    """
    R, L = _init_thread_state(thread_args, n_regs, state_words, initial_state)
    blocks = compile_blocks(program)
    machine = _VectorMachine(program, blocks, gm_data, R, L, state_words)
    machine.run()
    return VectorPlan(
        traces=machine.traces,
        local=L,
        branches=machine.branches,
        taken_branches=machine.taken,
        local_reads=machine.lreads,
        local_writes=machine.lwrites,
    )


def execute_simt(
    program: Program,
    gm_data: np.ndarray,
    thread_args: list[dict[int, float]],
    n_regs: int,
    state_words: int,
    width: int,
    initial_state: Optional[np.ndarray] = None,
    n_banks: Optional[int] = None,
    issue_log: Optional[list] = None,
) -> SimtPlan:
    """Functionally execute all warps under PDOM divergence; return the
    SIMT replay plan.

    ``width`` is the warp width (lanes per warp); threads group into warps
    in global-thread order, ``width`` consecutive threads per warp —
    exactly the reference SM's lane layout.  ``n_banks`` enables
    banked-shared-memory conflict accounting (the reference charges one
    access per active lane per local load/store and serializes bank
    conflicts); ``issue_log``, when given a list, receives one
    ``(wid, block_pc, n_instrs, mask, stack_snapshot)`` tuple per
    warp-block execution — the property tests expand these into the
    per-issue stream and compare against the reference stack discipline.
    """
    if len(thread_args) % width:
        raise ValueError(
            f"{len(thread_args)} threads not divisible by {width}-wide warps"
        )
    R, L = _init_thread_state(thread_args, n_regs, state_words, initial_state)
    blocks = compile_blocks(program)
    machine = _SimtMachine(program, blocks, gm_data, R, L, state_words,
                           width, n_banks, issue_log)
    machine.run()
    return SimtPlan(
        warp_traces=machine.traces,
        local=L,
        instr_count=machine.instr_count,
        branches=machine.branches,
        taken_branches=machine.taken,
        local_reads=machine.lreads,
        local_writes=machine.lwrites,
        warp_instructions=machine.warp_instructions,
        active_lane_slots=machine.active_lane_slots,
        divergence_idle_slots=machine.divergence_idle_slots,
        divergent_branches=machine.divergent_branches,
        uniform_branches=machine.uniform_branches,
        shared_accesses=machine.shared_accesses,
        conflict_extra=machine.conflict_extra,
    )


class _LockstepMachine:
    """Shared column-op dispatch for lockstep execution over a thread
    group.  Subclasses own control flow (PC grouping or warp stacks);
    this class owns the functional semantics of every opcode."""

    def __init__(self, program, blocks, gm_data, R, L, state_words):
        self.program = program
        self.blocks = blocks
        self.gm = np.asarray(gm_data, dtype=np.float64)
        self.R = R
        self.L = L
        self.state_words = state_words
        T = R.shape[0]
        self.T = T
        self.branches = np.zeros(T, dtype=np.int64)
        self.taken = np.zeros(T, dtype=np.int64)
        self.lreads = np.zeros(T, dtype=np.int64)
        self.lwrites = np.zeros(T, dtype=np.int64)
        #: when set to a list, ``_apply_ops`` appends every LDL/STL
        #: address column (SIMT bank-conflict accounting)
        self._shared_cols: Optional[list] = None

    # ------------------------------------------------------------------
    def _apply_ops(self, instrs: list, idx: np.ndarray) -> list[np.ndarray]:
        """Apply one block's instructions as column ops over the thread
        group ``idx``; returns the LDG address columns in block order.
        Terminal control transfers (branch/jump/halt) are left to the
        caller — their condition is evaluated via :meth:`_branch_cond`."""
        R, L, gm = self.R, self.L, self.gm
        ldg_addrs: list[np.ndarray] = []

        for ins in instrs:
            op = int(ins.op)
            rd = ins.rd
            if op == _ADD:
                v = R[idx, ins.rs] + R[idx, ins.rt]
            elif op == _ADDI:
                v = R[idx, ins.rs] + ins.imm
            elif op == _SUB:
                v = R[idx, ins.rs] - R[idx, ins.rt]
            elif op == _MUL:
                v = R[idx, ins.rs] * R[idx, ins.rt]
            elif op == _MULI:
                v = R[idx, ins.rs] * ins.imm
            elif op == _LI:
                v = np.full(idx.size, ins.imm, dtype=np.float64)
            elif op == _MOV:
                v = R[idx, ins.rs]
            elif op == _SLT:
                v = (R[idx, ins.rs] < R[idx, ins.rt]).astype(np.float64)
            elif op == _SLTI:
                v = (R[idx, ins.rs] < ins.imm).astype(np.float64)
            elif op == _SLE:
                v = (R[idx, ins.rs] <= R[idx, ins.rt]).astype(np.float64)
            elif op == _SEQ:
                v = (R[idx, ins.rs] == R[idx, ins.rt]).astype(np.float64)
            elif op == _SNE:
                v = (R[idx, ins.rs] != R[idx, ins.rt]).astype(np.float64)
            elif op == _DIV:
                b = R[idx, ins.rt]
                if np.any(b == 0.0):
                    raise ZeroDivisionError("float division by zero")
                v = R[idx, ins.rs] / b
            elif op == _MIN:
                a, b = R[idx, ins.rs], R[idx, ins.rt]
                v = np.where(a < b, a, b)
            elif op == _MAX:
                a, b = R[idx, ins.rs], R[idx, ins.rt]
                v = np.where(a > b, a, b)
            elif op == _ABS:
                v = np.abs(R[idx, ins.rs])
            elif op == _NEG:
                v = -R[idx, ins.rs]
            elif op == _SQRT:
                a = R[idx, ins.rs]
                if np.any(a < 0.0):
                    raise ValueError("math domain error")
                v = np.sqrt(a)
            elif op == _TRUNC:
                v = np.trunc(R[idx, ins.rs])
            elif op == _IDIV:
                a = R[idx, ins.rs].astype(np.int64)
                b = R[idx, ins.rt].astype(np.int64)
                if np.any(b == 0):
                    raise ZeroDivisionError("integer division or modulo by zero")
                v = np.floor_divide(a, b).astype(np.float64)
            elif op == _REM:
                a = R[idx, ins.rs].astype(np.int64)
                b = R[idx, ins.rt].astype(np.int64)
                if np.any(b == 0):
                    raise ZeroDivisionError("integer division or modulo by zero")
                v = np.remainder(a, b).astype(np.float64)
            elif op == _AND:
                v = (R[idx, ins.rs].astype(np.int64)
                     & R[idx, ins.rt].astype(np.int64)).astype(np.float64)
            elif op == _ANDI:
                v = (R[idx, ins.rs].astype(np.int64) & int(ins.imm)).astype(np.float64)
            elif op == _OR:
                v = (R[idx, ins.rs].astype(np.int64)
                     | R[idx, ins.rt].astype(np.int64)).astype(np.float64)
            elif op == _XOR:
                v = (R[idx, ins.rs].astype(np.int64)
                     ^ R[idx, ins.rt].astype(np.int64)).astype(np.float64)
            elif op == _SLL:
                v = np.left_shift(
                    R[idx, ins.rs].astype(np.int64),
                    R[idx, ins.rt].astype(np.int64),
                ).astype(np.float64)
            elif op == _SRL:
                v = np.right_shift(
                    R[idx, ins.rs].astype(np.int64),
                    R[idx, ins.rt].astype(np.int64),
                ).astype(np.float64)
            elif op == _NOP:
                continue
            elif op == _BAR:
                continue  # rendezvous is pure timing; recorded via pattern
            elif op == _J:
                break  # terminal; PC update is the caller's
            elif op == _HALT:
                break  # terminal; halt handling is the caller's
            elif _BEQ <= op <= _BNEZ:
                break  # terminal; branch handling is the caller's
            elif op == _LDG:
                addr = (R[idx, ins.rs] + ins.imm).astype(np.int64)
                bad = (addr < 0) | (addr >= self.gm.size)
                if np.any(bad):
                    raise IndexError(
                        f"global read out of range: {int(addr[np.argmax(bad)])} "
                        f"(size {self.gm.size})"
                    )
                ldg_addrs.append(addr)
                if rd:
                    R[idx, rd] = gm[addr]
                continue
            elif op == _LDL:
                addr = (R[idx, ins.rs] + ins.imm).astype(np.int64)
                self._check_local(addr, idx)
                if rd:
                    R[idx, rd] = L[idx, addr]
                self.lreads[idx] += 1
                if self._shared_cols is not None:
                    self._shared_cols.append(addr)
                continue
            elif op == _STL:
                addr = (R[idx, ins.rt] + ins.imm).astype(np.int64)
                self._check_local(addr, idx)
                L[idx, addr] = R[idx, ins.rs]
                self.lwrites[idx] += 1
                if self._shared_cols is not None:
                    self._shared_cols.append(addr)
                continue
            elif op == _STG:
                raise NotImplementedError(
                    "BMLA Map kernels do not store to global memory (outputs "
                    "live in local state and are copied out by the host, "
                    "section IV-E)"
                )
            else:  # pragma: no cover - full opcode coverage above
                raise ValueError(f"vector backend cannot execute {ins.text}")

            if rd:
                R[idx, rd] = v

        return ldg_addrs

    # ------------------------------------------------------------------
    def _branch_cond(self, ins, idx: np.ndarray) -> np.ndarray:
        """Boolean taken-vector of a terminal branch over group ``idx``."""
        op = int(ins.op)
        a = self.R[idx, ins.rs]
        if op == _BEQ:
            return a == self.R[idx, ins.rt]
        if op == _BNE:
            return a != self.R[idx, ins.rt]
        if op == _BLT:
            return a < self.R[idx, ins.rt]
        if op == _BGE:
            return a >= self.R[idx, ins.rt]
        if op == _BEQZ:
            return a == 0
        return a != 0  # BNEZ

    # ------------------------------------------------------------------
    def _check_local(self, addr: np.ndarray, idx: np.ndarray) -> None:
        bad = (addr < 0) | (addr >= self.state_words)
        if np.any(bad):
            j = int(np.argmax(bad))
            raise IndexError(
                f"thread {int(idx[j])} local address {int(addr[j])} exceeds "
                f"its {self.state_words}-word state partition"
            )


class _VectorMachine(_LockstepMachine):
    """Lockstep block interpreter over all threads (MIMD cores)."""

    def __init__(self, program, blocks, gm_data, R, L, state_words):
        super().__init__(program, blocks, gm_data, R, L, state_words)
        T = self.T
        self.P = np.zeros(T, dtype=np.int64)
        self.halted = np.zeros(T, dtype=bool)
        self.gap_acc = np.zeros(T, dtype=np.int64)
        self.traces = [ThreadTrace() for _ in range(T)]

    # ------------------------------------------------------------------
    def run(self) -> None:
        P, halted = self.P, self.halted
        plen = len(self.program.instrs) + 1
        while True:
            alive = np.flatnonzero(~halted)
            if alive.size == 0:
                return
            pcs = P[alive]
            # most-populated PC first (ties to the lowest PC); bincount
            # beats np.unique since PCs are bounded by the program length
            pc = int(np.bincount(pcs, minlength=plen).argmax())
            idx = alive[pcs == pc]
            block = self.blocks.get(pc)
            if block is None:
                raise RuntimeError(f"pc {pc} is not a basic-block leader")
            self._exec_block(block, idx)

    # ------------------------------------------------------------------
    def _exec_block(self, block: _Block, idx: np.ndarray) -> None:
        ldg_addrs = self._apply_ops(block.instrs, idx)

        # ---- trace recording -----------------------------------------
        gap_acc = self.gap_acc
        if block.has_events:
            traces = self.traces
            pattern = block.pattern
            trailing = block.trailing
            addr_cols = [a.tolist() for a in ldg_addrs]
            for j, g in enumerate(idx.tolist()):
                tr = traces[g]
                acc = int(gap_acc[g])
                for pure, kind, ldg_i in pattern:
                    tr.gaps.append(acc + pure)
                    tr.kinds.append(kind)
                    tr.addrs.append(addr_cols[ldg_i][j] if ldg_i >= 0 else -1)
                    acc = 0
                gap_acc[g] = acc + trailing
        else:
            gap_acc[idx] += block.n_instrs

        # ---- control transfer ----------------------------------------
        last = block.instrs[-1]
        if block.terminal == "halt":
            self.halted[idx] = True
        elif block.terminal == "branch":
            cond = self._branch_cond(last, idx)
            self.branches[idx] += 1
            self.taken[idx] += cond
            self.P[idx] = np.where(cond, last.target, block.next_pc)
        elif block.terminal == "jump":
            self.P[idx] = last.target
        else:
            self.P[idx] = block.next_pc


class _SimtMachine(_LockstepMachine):
    """PDOM divergence engine: lockstep warps over dense stack matrices.

    The per-warp reconvergence stack of the reference
    (:class:`repro.arch.gpgpu._Warp`: a list of ``[reconv_pc, next_pc,
    mask]`` frames) is held here as three ``[n_warps, capacity]`` int64
    matrices plus a depth vector.  Warps group by top-of-stack PC
    (most-populated first); one basic block executes for the whole group
    in lockstep, the active lanes of every grouped warp gathered into one
    flat thread-index vector for the shared column-op dispatch.  Stack
    transitions (branch push, jump/fall advance, reconvergence pops)
    happen only at block ends — exact, because every reconvergence PC and
    every frame next-PC is a block leader, so the reference's
    after-every-instruction ``_pop_reconverged`` can only fire there.
    """

    def __init__(self, program, blocks, gm_data, R, L, state_words,
                 width, n_banks, issue_log=None):
        super().__init__(program, blocks, gm_data, R, L, state_words)
        T = self.T
        self.width = width
        self.n_warps = T // width
        self.plen = len(program)
        self.full_mask = (1 << width) - 1
        self.lane_ids = np.arange(width, dtype=np.int64)
        self.bitvals = np.left_shift(np.int64(1), self.lane_ids)

        W = self.n_warps
        cap = 8
        self.s_reconv = np.zeros((W, cap), dtype=np.int64)
        self.s_pc = np.zeros((W, cap), dtype=np.int64)
        self.s_mask = np.zeros((W, cap), dtype=np.int64)
        self.depth = np.ones(W, dtype=np.int64)
        self.s_reconv[:, 0] = self.plen
        self.s_mask[:, 0] = self.full_mask
        self.done = np.zeros(W, dtype=bool)

        self.gap_acc = np.zeros(W, dtype=np.int64)
        self.traces = [WarpTrace() for _ in range(W)]
        self.instr_count = np.zeros(T, dtype=np.int64)

        self.warp_instructions = 0
        self.active_lane_slots = 0
        self.divergence_idle_slots = 0
        self.divergent_branches = 0
        self.uniform_branches = 0
        self.shared_accesses = 0
        self.conflict_extra = 0
        self.n_banks = n_banks
        # bank striping phys = addr * T + tid with consecutive active-lane
        # tids is provably conflict-free when T is a bank multiple and a
        # warp spans at most n_banks lanes; otherwise count exactly below
        self._conflict_free = (
            n_banks is None or (T % n_banks == 0 and width <= n_banks)
        )
        self.issue_log = issue_log
        self._simt_pats: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def run(self) -> None:
        plen = self.plen + 1
        while True:
            alive = np.flatnonzero(~self.done)
            if alive.size == 0:
                return
            tops = self.s_pc[alive, self.depth[alive] - 1]
            # most-populated top-of-stack PC first (ties to the lowest)
            pc = int(np.bincount(tops, minlength=plen).argmax())
            ws = alive[tops == pc]
            block = self.blocks.get(pc)
            if block is None:
                raise RuntimeError(f"pc {pc} is not a basic-block leader")
            self._exec_warp_block(block, ws)

    # ------------------------------------------------------------------
    def _simt_pattern(self, block: _Block) -> tuple:
        """``(events, trailing, n_shared)`` with barriers folded into the
        pure-gap counts (the SIMT cores issue BAR inline) and each LDG
        event carrying its destination register."""
        pat = self._simt_pats.get(block.pc)
        if pat is None:
            events = []
            pure = 0
            n_ldg = 0
            n_shared = 0
            for ins in block.instrs:
                op = int(ins.op)
                if op == _LDG:
                    events.append((pure, K_LDG, n_ldg, ins.rd))
                    n_ldg += 1
                    pure = 0
                elif op == _HALT:
                    events.append((pure, K_HALT, -1, 0))
                    pure = 0
                else:
                    if op == _LDL or op == _STL:
                        n_shared += 1
                    pure += 1
            pat = (events, pure, n_shared)
            self._simt_pats[block.pc] = pat
        return pat

    # ------------------------------------------------------------------
    def _exec_warp_block(self, block: _Block, ws: np.ndarray) -> None:
        width = self.width
        depth = self.depth
        d = depth[ws] - 1
        masks = self.s_mask[ws, d]
        lane_bits = ((masks[:, None] >> self.lane_ids) & 1).astype(bool)
        counts = lane_bits.sum(axis=1)
        gidx = (ws[:, None] * width + self.lane_ids)[lane_bits]
        G = ws.size
        n_instrs = block.n_instrs
        events, trailing, n_shared = self._simt_pattern(block)

        if self.issue_log is not None:
            for gi, w in enumerate(ws.tolist()):
                di = int(depth[w])
                snap = tuple(
                    (int(self.s_reconv[w, j]), int(self.s_pc[w, j]),
                     int(self.s_mask[w, j]))
                    for j in range(di)
                )
                self.issue_log.append(
                    (w, block.pc, n_instrs, int(masks[gi]), snap))

        if n_shared and not self._conflict_free:
            self._shared_cols = []
        ldg_cols = self._apply_ops(block.instrs, gidx)

        # ---- issue accounting (mask is constant within a block) ------
        k_total = int(counts.sum())
        self.warp_instructions += n_instrs * G
        self.active_lane_slots += n_instrs * k_total
        self.divergence_idle_slots += n_instrs * (width * G - k_total)
        self.instr_count[gidx] += n_instrs
        if n_shared:
            self.shared_accesses += n_shared * k_total

        off = None
        if ldg_cols or self._shared_cols is not None:
            off = np.zeros(G + 1, dtype=np.int64)
            np.cumsum(counts, out=off[1:])

        if self._shared_cols is not None:
            cols = self._shared_cols
            self._shared_cols = None
            nb = self.n_banks
            T = self.T
            for col in cols:
                banks = (col * T + gidx) % nb
                for gi in range(G):
                    seg = banks[off[gi]:off[gi + 1]]
                    self.conflict_extra += int(np.bincount(seg).max()) - 1

        # ---- trace recording -----------------------------------------
        gap_acc = self.gap_acc
        if events:
            traces = self.traces
            lane_ids = self.lane_ids
            for gi, w in enumerate(ws.tolist()):
                tr = traces[w]
                acc = int(gap_acc[w])
                lanes = lane_ids[lane_bits[gi]].tolist()
                for pure, kind, ldg_i, rd in events:
                    tr.gaps.append(acc + pure)
                    tr.kinds.append(kind)
                    if kind == K_LDG:
                        seg = ldg_cols[ldg_i][off[gi]:off[gi + 1]].tolist()
                        tr.payloads.append((rd, list(zip(lanes, seg))))
                    else:
                        tr.payloads.append(None)
                    acc = 0
                gap_acc[w] = acc + trailing
        else:
            gap_acc[ws] += n_instrs

        # ---- control transfer ----------------------------------------
        last = block.instrs[-1]
        if block.terminal == "halt":
            div = masks != self.full_mask
            if np.any(div):
                gi = int(np.argmax(div))
                raise AssertionError(
                    f"warp {int(ws[gi])} executed halt with divergent mask "
                    f"{int(masks[gi]):0{width}b}; kernels must exit uniformly"
                )
            self.done[ws] = True
        elif block.terminal == "branch":
            cond = self._branch_cond(last, gidx)
            self.branches[gidx] += 1
            self.taken[gidx] += cond
            taken_mat = np.zeros((G, width), dtype=np.int64)
            taken_mat[lane_bits] = cond
            tmasks = (taken_mat * self.bitvals).sum(axis=1)
            r = last.reconv if last.reconv is not None else self.plen
            target = last.target
            next_pc = block.next_pc
            for gi, w in enumerate(ws.tolist()):
                m = int(masks[gi])
                tm = int(tmasks[gi])
                self.traces[w].tmasks.append(tm)
                di = depth[w] - 1
                if tm == m:
                    self.uniform_branches += 1
                    self.s_pc[w, di] = target
                elif tm == 0:
                    self.uniform_branches += 1
                    self.s_pc[w, di] = next_pc
                else:
                    self.divergent_branches += 1
                    if di + 3 > self.s_pc.shape[1]:
                        self._grow_stacks()
                    self.s_pc[w, di] = r  # frame becomes the reconv point
                    self.s_reconv[w, di + 1] = r
                    self.s_pc[w, di + 1] = next_pc
                    self.s_mask[w, di + 1] = m & ~tm
                    self.s_reconv[w, di + 2] = r
                    self.s_pc[w, di + 2] = target
                    self.s_mask[w, di + 2] = tm
                    depth[w] += 2
                self._pop_reconverged(w)
        else:
            npc = last.target if block.terminal == "jump" else block.next_pc
            self.s_pc[ws, d] = npc
            deep = ws[depth[ws] > 1]
            if deep.size:
                for w in deep.tolist():
                    self._pop_reconverged(w)

    # ------------------------------------------------------------------
    def _pop_reconverged(self, w: int) -> None:
        di = int(self.depth[w]) - 1
        s_pc, s_reconv = self.s_pc, self.s_reconv
        while di > 0 and s_pc[w, di] == s_reconv[w, di]:
            di -= 1
        self.depth[w] = di + 1

    def _grow_stacks(self) -> None:
        W, cap = self.s_pc.shape
        pad = np.zeros((W, cap), dtype=np.int64)
        self.s_pc = np.concatenate([self.s_pc, pad], axis=1)
        self.s_mask = np.concatenate([self.s_mask, pad], axis=1)
        self.s_reconv = np.concatenate([self.s_reconv, pad], axis=1)
