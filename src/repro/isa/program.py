"""Program container: assembled instructions + static analyses."""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.cfg import annotate_reconvergence, branch_count
from repro.isa.instructions import Instr, BRANCH_OPS, GLOBAL_MEM_OPS, LOCAL_MEM_OPS


class Program:
    """An assembled kernel ready to execute on any architecture model.

    >>> p = Program.from_source("li r1, 3\\nhalt", name="tiny")
    >>> len(p)
    2
    >>> p.code_bytes
    8
    """

    def __init__(self, instrs: list[Instr], name: str = "kernel"):
        if not instrs:
            raise ValueError("program must contain at least one instruction")
        self.name = name
        self.instrs = instrs
        for pc, ins in enumerate(instrs):
            ins.pc = pc
        self._validate_targets()
        annotate_reconvergence(instrs)

    @classmethod
    def from_source(cls, source: str, name: str = "kernel", n_regs: int = 32) -> "Program":
        return cls(assemble(source, n_regs=n_regs), name=name)

    def _validate_targets(self) -> None:
        n = len(self.instrs)
        for ins in self.instrs:
            if ins.target is not None and not 0 <= ins.target < n:
                raise ValueError(
                    f"{self.name}: instruction {ins.pc} ({ins.text}) targets "
                    f"pc {ins.target}, outside [0, {n})"
                )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instrs)

    def __getitem__(self, pc: int) -> Instr:
        return self.instrs[pc]

    @property
    def code_bytes(self) -> int:
        """Encoded footprint; the paper broadcasts code once (section IV-A)
        and assumes it stays under the 4 KB I-cache."""
        return len(self.instrs) * Instr.ENCODED_BYTES

    @property
    def static_branches(self) -> int:
        return branch_count(self.instrs)

    @property
    def static_global_accesses(self) -> int:
        return sum(1 for i in self.instrs if i.op in GLOBAL_MEM_OPS)

    @property
    def static_local_accesses(self) -> int:
        return sum(1 for i in self.instrs if i.op in LOCAL_MEM_OPS)

    def listing(self) -> str:
        """Human-readable disassembly with reconvergence annotations."""
        lines = []
        for ins in self.instrs:
            extra = ""
            if ins.op in BRANCH_OPS and ins.reconv is not None:
                extra = f"    ; reconv @ {ins.reconv}"
            lines.append(f"{ins.pc:4d}: {ins.text}{extra}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Program {self.name}: {len(self.instrs)} instrs>"
