"""Control-flow analysis: basic blocks, CFG, immediate post-dominators.

SIMT architectures (GPGPU / VWS) reconverge divergent warps at the
*immediate post-dominator* of each branch.  We compute it the standard way:
build the CFG, reverse it, add a virtual exit collecting every ``halt``,
and run dominator analysis (networkx's ``immediate_dominators``) from the
virtual exit.  The resulting per-branch reconvergence PC is stored on the
:class:`~repro.isa.instructions.Instr` so the SIMT divergence stack can be
driven without re-running any analysis.
"""

from __future__ import annotations

import networkx as nx

from repro.isa.instructions import Instr, Op, BRANCH_OPS

_EXIT = -1  # virtual exit node


def leader_pcs(instrs: list[Instr]) -> list[int]:
    """PCs that start basic blocks (standard leader algorithm)."""
    leaders = {0}
    for ins in instrs:
        if ins.op in BRANCH_OPS:
            if ins.target is not None:
                leaders.add(ins.target)
            if ins.pc + 1 < len(instrs):
                leaders.add(ins.pc + 1)
        elif ins.op is Op.J:
            if ins.target is not None:
                leaders.add(ins.target)
            if ins.pc + 1 < len(instrs):
                leaders.add(ins.pc + 1)
    return sorted(pc for pc in leaders if pc < len(instrs))


def build_cfg(instrs: list[Instr]) -> tuple[nx.DiGraph, dict[int, int]]:
    """CFG whose nodes are block-leader PCs plus a virtual exit (-1).

    Returns ``(graph, block_of)`` where ``block_of[pc]`` is the leader PC of
    the block containing ``pc``."""
    leaders = leader_pcs(instrs)
    leader_set = set(leaders)
    g = nx.DiGraph()
    g.add_nodes_from(leaders)
    g.add_node(_EXIT)

    # map every pc to its block leader
    block_of: dict[int, int] = {}
    current = leaders[0]
    for pc in range(len(instrs)):
        if pc in leader_set:
            current = pc
        block_of[pc] = current

    for pc in range(len(instrs)):
        ins = instrs[pc]
        last_in_block = pc + 1 >= len(instrs) or (pc + 1) in leader_set
        if not last_in_block:
            continue
        src = block_of[pc]
        if ins.op in BRANCH_OPS:
            g.add_edge(src, block_of[ins.target])
            if pc + 1 < len(instrs):
                g.add_edge(src, block_of[pc + 1])
            else:
                g.add_edge(src, _EXIT)
        elif ins.op is Op.J:
            g.add_edge(src, block_of[ins.target])
        elif ins.op is Op.HALT:
            g.add_edge(src, _EXIT)
        else:
            if pc + 1 < len(instrs):
                g.add_edge(src, block_of[pc + 1])
            else:
                g.add_edge(src, _EXIT)
    return g, block_of


def immediate_postdominators(instrs: list[Instr]) -> dict[int, int]:
    """Map block-leader pc -> its immediate post-dominator leader pc.

    The virtual exit post-dominates everything; blocks whose ipdom is the
    exit map to ``len(instrs)`` (treated as "reconverge at termination").
    """
    g, _ = build_cfg(instrs)
    ipdom = nx.immediate_dominators(g.reverse(copy=True), _EXIT)
    out: dict[int, int] = {}
    for node, dom in ipdom.items():
        if node == _EXIT:
            continue
        out[node] = len(instrs) if dom == _EXIT else dom
    return out


def annotate_reconvergence(instrs: list[Instr]) -> None:
    """Fill ``Instr.reconv`` for every conditional branch in place."""
    g, block_of = build_cfg(instrs)
    ipdom = nx.immediate_dominators(g.reverse(copy=True), _EXIT)
    n = len(instrs)
    for ins in instrs:
        if ins.op in BRANCH_OPS:
            block = block_of[ins.pc]
            dom = ipdom.get(block, _EXIT)
            ins.reconv = n if dom == _EXIT else dom


def branch_count(instrs: list[Instr]) -> int:
    return sum(1 for ins in instrs if ins.op in BRANCH_OPS)
