"""Two-pass text assembler for the mini ISA.

Syntax::

    # full-line comment
    loop:                   # label
        ldg  r5, r6, 0      # load global word at r6+0 into r5
        addi r6, r6, 1
        blt  r6, r7, loop   # branch back while r6 < r7
        halt

* registers are ``r0`` .. ``r31``; ``r0`` is hard-wired to zero
* immediates may be decimal ints, floats, or ``0x`` hex
* branch/jump targets are labels
* ``;`` separates multiple instructions on one line
"""

from __future__ import annotations

import re
from repro.isa.instructions import Instr, Op

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_INLINE_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):(.*)$")
_REG_RE = re.compile(r"^r(\d+)$")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class AssemblyError(ValueError):
    """Raised with file/line context on any parse or resolution failure."""


def _parse_reg(tok: str, lineno: int, n_regs: int) -> int:
    m = _REG_RE.match(tok)
    if not m:
        raise AssemblyError(f"line {lineno}: expected register, got {tok!r}")
    n = int(m.group(1))
    if not 0 <= n < n_regs:
        raise AssemblyError(f"line {lineno}: register {tok} out of range (0..{n_regs - 1})")
    return n


def _parse_imm(tok: str, lineno: int) -> float:
    try:
        if tok.lower().startswith("0x") or tok.lower().startswith("-0x"):
            return int(tok, 16)
        if any(c in tok for c in ".eE") and not tok.lower().startswith("0x"):
            return float(tok)
        return int(tok)
    except ValueError as exc:
        raise AssemblyError(f"line {lineno}: bad immediate {tok!r}") from exc


# operand signatures: d=dest reg, s/t=src regs, i=immediate, L=label
_SIGNATURES: dict[Op, str] = {
    Op.ADD: "dst", Op.SUB: "dst", Op.MUL: "dst", Op.DIV: "dst",
    Op.MIN: "dst", Op.MAX: "dst", Op.IDIV: "dst", Op.REM: "dst",
    Op.AND: "dst", Op.OR: "dst", Op.XOR: "dst", Op.SLL: "dst", Op.SRL: "dst",
    Op.SLT: "dst", Op.SLE: "dst", Op.SEQ: "dst", Op.SNE: "dst",
    Op.ABS: "ds", Op.NEG: "ds", Op.SQRT: "ds", Op.MOV: "ds", Op.TRUNC: "ds",
    Op.ADDI: "dsi", Op.MULI: "dsi", Op.SLTI: "dsi", Op.ANDI: "dsi",
    Op.LI: "di",
    Op.BEQ: "stL", Op.BNE: "stL", Op.BLT: "stL", Op.BGE: "stL",
    Op.BEQZ: "sL", Op.BNEZ: "sL",
    Op.J: "L",
    Op.LDG: "dsi", Op.LDL: "dsi",
    Op.STG: "sti", Op.STL: "sti",
    Op.HALT: "", Op.NOP: "", Op.BAR: "",
}

_MNEMONICS = {op.name.lower(): op for op in Op}


def _split_statements(source: str):
    """Yield (lineno, statement) pairs with comments stripped."""
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        for stmt in line.split(";"):
            stmt = stmt.strip()
            if stmt:
                yield lineno, stmt


def assemble(source: str, n_regs: int = 32) -> list[Instr]:
    """Assemble ``source`` into a list of :class:`Instr` with resolved
    branch targets and assigned PCs.

    >>> ins = assemble("li r1, 5\\nhalt")
    >>> [i.op.name for i in ins]
    ['LI', 'HALT']
    """
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, list[str]]] = []

    # pass 1: collect labels, tokenize statements
    pc = 0
    for lineno, stmt in _split_statements(source):
        # allow `label:` alone or `label: instr` on one line
        m = _INLINE_LABEL_RE.match(stmt)
        if m:
            name = m.group(1)
            if name in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {name!r}")
            labels[name] = pc
            stmt = m.group(2).strip()
            if not stmt:
                continue
        parts = stmt.replace(",", " ").split()
        pending.append((lineno, parts[0].lower(), parts[1:]))
        pc += 1

    # pass 2: build instructions
    instrs: list[Instr] = []
    for lineno, mnem, operands in pending:
        op = _MNEMONICS.get(mnem)
        if op is None:
            raise AssemblyError(f"line {lineno}: unknown mnemonic {mnem!r}")
        sig = _SIGNATURES[op]
        if len(operands) != len(sig):
            raise AssemblyError(
                f"line {lineno}: {mnem} expects {len(sig)} operands "
                f"({sig!r}), got {len(operands)}"
            )
        ins = Instr(op, text=f"{mnem} {', '.join(operands)}".strip())
        for kind, tok in zip(sig, operands):
            if kind == "d":
                ins.rd = _parse_reg(tok, lineno, n_regs)
            elif kind == "s":
                ins.rs = _parse_reg(tok, lineno, n_regs)
            elif kind == "t":
                ins.rt = _parse_reg(tok, lineno, n_regs)
            elif kind == "i":
                ins.imm = _parse_imm(tok, lineno)
            elif kind == "L":
                if not _NAME_RE.match(tok):
                    raise AssemblyError(f"line {lineno}: bad label {tok!r}")
                if tok not in labels:
                    raise AssemblyError(f"line {lineno}: undefined label {tok!r}")
                ins.target = labels[tok]
        ins.pc = len(instrs)
        instrs.append(ins)

    if not instrs:
        raise AssemblyError("empty program")
    return instrs
