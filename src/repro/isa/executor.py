"""Per-thread interpreter.

This is the hottest code in the simulator (every simulated instruction
passes through :func:`step_one`), so it follows the HPC-Python guidance for
inner loops: flat ``if/elif`` dispatch on integer opcodes, ``__slots__``
contexts, locals bound once, and no allocation on the common (ALU) path.

The interpreter is architecture-agnostic: memory instructions are *not*
performed here - they are returned as :class:`MemAccess` descriptors and the
owning architecture model decides latency, routing (prefetch buffer, L1D,
shared memory, ...) and when to commit the register write.  The program
counter is advanced at issue time so a blocked load never re-executes.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.isa.instructions import Instr, Op

# integer opcode constants for fast dispatch
_ADD = int(Op.ADD); _SUB = int(Op.SUB); _MUL = int(Op.MUL); _DIV = int(Op.DIV)
_MIN = int(Op.MIN); _MAX = int(Op.MAX); _ABS = int(Op.ABS); _NEG = int(Op.NEG)
_SQRT = int(Op.SQRT); _MOV = int(Op.MOV)
_IDIV = int(Op.IDIV); _REM = int(Op.REM); _AND = int(Op.AND); _OR = int(Op.OR)
_XOR = int(Op.XOR); _SLL = int(Op.SLL); _SRL = int(Op.SRL); _TRUNC = int(Op.TRUNC)
_SLT = int(Op.SLT); _SLE = int(Op.SLE); _SEQ = int(Op.SEQ); _SNE = int(Op.SNE)
_LI = int(Op.LI); _ADDI = int(Op.ADDI); _MULI = int(Op.MULI)
_SLTI = int(Op.SLTI); _ANDI = int(Op.ANDI)
_BEQ = int(Op.BEQ); _BNE = int(Op.BNE); _BLT = int(Op.BLT); _BGE = int(Op.BGE)
_BEQZ = int(Op.BEQZ); _BNEZ = int(Op.BNEZ); _J = int(Op.J)
_LDG = int(Op.LDG); _STG = int(Op.STG); _LDL = int(Op.LDL); _STL = int(Op.STL)
_HALT = int(Op.HALT); _NOP = int(Op.NOP); _BAR = int(Op.BAR)


class Outcome:
    """Instruction classification returned by :func:`step_one`."""

    OK = 0      #: completed ALU/control instruction
    MEM = 1     #: memory access pending (see the returned MemAccess)
    HALT = 2    #: thread finished


class MemAccess:
    """A pending memory operation surfaced to the architecture model."""

    __slots__ = ("op", "addr", "rd", "value", "is_store", "is_global")

    def __init__(self, op: int, addr: int, rd: int, value: float, is_store: bool, is_global: bool):
        self.op = op
        self.addr = addr
        self.rd = rd
        self.value = value
        self.is_store = is_store
        self.is_global = is_global

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = ("stg" if self.is_global else "stl") if self.is_store else ("ldg" if self.is_global else "ldl")
        return f"<MemAccess {kind} @{self.addr}>"


class ThreadContext:
    """Architectural state of one hardware thread."""

    __slots__ = ("tid", "regs", "pc", "halted", "branches", "taken_branches", "instr_count")

    def __init__(self, tid: int, n_regs: int = 32):
        self.tid = tid
        self.regs: list[float] = [0] * n_regs
        self.pc = 0
        self.halted = False
        self.branches = 0
        self.taken_branches = 0
        self.instr_count = 0

    def set_args(self, args: dict[int, float]) -> None:
        """Initialize argument registers (the kernel ABI)."""
        for reg, val in args.items():
            if reg == 0:
                raise ValueError("r0 is hard-wired to zero")
            self.regs[reg] = val

    def commit_load(self, rd: int, value: float) -> None:
        """Write back a load whose data just arrived."""
        if rd:
            self.regs[rd] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Thread {self.tid} pc={self.pc}{' halted' if self.halted else ''}>"


def branch_taken(ctx: ThreadContext, ins: Instr) -> bool:
    """Evaluate a conditional branch *without* committing the new PC
    (needed by the SIMT models which apply divergence-stack policy)."""
    regs = ctx.regs
    op = ins.op
    if op == _BEQ:
        return regs[ins.rs] == regs[ins.rt]
    if op == _BNE:
        return regs[ins.rs] != regs[ins.rt]
    if op == _BLT:
        return regs[ins.rs] < regs[ins.rt]
    if op == _BGE:
        return regs[ins.rs] >= regs[ins.rt]
    if op == _BEQZ:
        return regs[ins.rs] == 0
    if op == _BNEZ:
        return regs[ins.rs] != 0
    raise ValueError(f"not a conditional branch: {ins.text}")


def exec_non_memory(ctx: ThreadContext, ins: Instr) -> int:
    """Execute one ALU / control instruction; returns an Outcome code.

    Used directly by the SIMT lane loop; MIMD cores go through
    :func:`step_one` which also classifies memory operations.
    """
    regs = ctx.regs
    op = ins.op
    rd = ins.rd
    ctx.instr_count += 1

    if op == _ADD:
        v = regs[ins.rs] + regs[ins.rt]
    elif op == _ADDI:
        v = regs[ins.rs] + ins.imm
    elif op == _SUB:
        v = regs[ins.rs] - regs[ins.rt]
    elif op == _MUL:
        v = regs[ins.rs] * regs[ins.rt]
    elif op == _MULI:
        v = regs[ins.rs] * ins.imm
    elif op == _LI:
        v = ins.imm
    elif op == _MOV:
        v = regs[ins.rs]
    elif op == _SLT:
        v = 1 if regs[ins.rs] < regs[ins.rt] else 0
    elif op == _SLTI:
        v = 1 if regs[ins.rs] < ins.imm else 0
    elif op == _SLE:
        v = 1 if regs[ins.rs] <= regs[ins.rt] else 0
    elif op == _SEQ:
        v = 1 if regs[ins.rs] == regs[ins.rt] else 0
    elif op == _SNE:
        v = 1 if regs[ins.rs] != regs[ins.rt] else 0
    elif op == _DIV:
        v = regs[ins.rs] / regs[ins.rt]
    elif op == _MIN:
        a, b = regs[ins.rs], regs[ins.rt]
        v = a if a < b else b
    elif op == _MAX:
        a, b = regs[ins.rs], regs[ins.rt]
        v = a if a > b else b
    elif op == _ABS:
        v = abs(regs[ins.rs])
    elif op == _NEG:
        v = -regs[ins.rs]
    elif op == _SQRT:
        v = math.sqrt(regs[ins.rs])
    elif op == _TRUNC:
        v = int(regs[ins.rs])
    elif op == _IDIV:
        v = int(regs[ins.rs]) // int(regs[ins.rt])
    elif op == _REM:
        v = int(regs[ins.rs]) % int(regs[ins.rt])
    elif op == _AND:
        v = int(regs[ins.rs]) & int(regs[ins.rt])
    elif op == _ANDI:
        v = int(regs[ins.rs]) & int(ins.imm)
    elif op == _OR:
        v = int(regs[ins.rs]) | int(regs[ins.rt])
    elif op == _XOR:
        v = int(regs[ins.rs]) ^ int(regs[ins.rt])
    elif op == _SLL:
        v = int(regs[ins.rs]) << int(regs[ins.rt])
    elif op == _SRL:
        v = int(regs[ins.rs]) >> int(regs[ins.rt])
    elif op == _NOP or op == _BAR:
        # SIMT warps are implicitly synchronized; BAR is a NOP for them
        ctx.pc += 1
        return Outcome.OK
    elif op == _J:
        ctx.pc = ins.target
        return Outcome.OK
    elif op == _HALT:
        ctx.halted = True
        return Outcome.HALT
    elif _BEQ <= op <= _BNEZ:
        ctx.branches += 1
        if branch_taken(ctx, ins):
            ctx.taken_branches += 1
            ctx.pc = ins.target
        else:
            ctx.pc += 1
        return Outcome.OK
    else:
        raise ValueError(f"exec_non_memory cannot execute {ins.text}")

    if rd:
        regs[rd] = v
    ctx.pc += 1
    return Outcome.OK


def step_one(ctx: ThreadContext, ins: Instr) -> Optional[MemAccess]:
    """Execute the instruction at ``ctx.pc`` for a MIMD thread.

    Returns ``None`` for completed instructions (including ``halt``, which
    sets ``ctx.halted``), or a :class:`MemAccess` whose latency/data the
    caller must resolve.  For memory ops the PC is advanced here, register
    write-back for loads happens via :meth:`ThreadContext.commit_load`.
    """
    op = ins.op
    if op == _BAR:
        # surfaced to the (MIMD) core, which implements the rendezvous
        ctx.instr_count += 1
        ctx.pc += 1
        return MemAccess(op, -1, 0, 0.0, False, False)
    if op < _LDG or op > _STL:
        # every non-memory opcode: ALU, comparisons, branches, J, halt, nop
        exec_non_memory(ctx, ins)
        return None
    # memory instruction
    ctx.instr_count += 1
    regs = ctx.regs
    if op == _LDG:
        acc = MemAccess(op, int(regs[ins.rs] + ins.imm), ins.rd, 0.0, False, True)
    elif op == _LDL:
        acc = MemAccess(op, int(regs[ins.rs] + ins.imm), ins.rd, 0.0, False, False)
    elif op == _STL:
        acc = MemAccess(op, int(regs[ins.rt] + ins.imm), 0, regs[ins.rs], True, False)
    elif op == _STG:
        acc = MemAccess(op, int(regs[ins.rt] + ins.imm), 0, regs[ins.rs], True, True)
    else:  # pragma: no cover - unreachable given opcode ranges
        raise ValueError(f"unhandled opcode {op}")
    ctx.pc += 1
    return acc
