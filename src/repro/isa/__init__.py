"""A small RISC-style ISA shared by every simulated architecture.

BMLA kernels are written once in this ISA (see ``repro.workloads``) and run
unmodified on Millipede (MIMD corelets), plain SSMC (MIMD cores), GPGPU /
VWS (SIMT warps with divergence stacks) and the conventional multicore; only
the memory system and the instruction scheduling differ between models,
which is exactly the experimental isolation the paper's section V demands.
"""

from repro.isa.instructions import (
    Instr,
    Op,
    ALU_OPS,
    BRANCH_OPS,
    MEMORY_OPS,
    is_branch,
    is_memory,
)
from repro.isa.assembler import assemble, AssemblyError
from repro.isa.program import Program
from repro.isa.executor import ThreadContext, Outcome, MemAccess, step_one, branch_taken, exec_non_memory

__all__ = [
    "Instr",
    "Op",
    "ALU_OPS",
    "BRANCH_OPS",
    "MEMORY_OPS",
    "is_branch",
    "is_memory",
    "assemble",
    "AssemblyError",
    "Program",
    "ThreadContext",
    "Outcome",
    "MemAccess",
    "step_one",
    "branch_taken",
    "exec_non_memory",
]
