"""Instruction set definition.

The ISA is deliberately small (~40 opcodes): integer/float ALU operations,
conditional branches, loads/stores to two address spaces, and ``halt``.
Registers are untyped numeric (Python int/float); arithmetic opcodes are
generic over both except for the explicitly integer operations (shifts,
bitwise, ``idiv``/``rem``) and explicit conversion (``trunc``).

Address spaces
--------------
* **global** (``ldg``/``stg``) - the die-stacked DRAM holding the input
  dataset, word-addressed (4-byte words).  Global accesses are routed
  through each architecture's input path (prefetch buffer, L1 D-cache, ...).
* **local**  (``ldl``/``stl``) - the thread's private live-state space.
  Each architecture translates thread-private local addresses onto its
  physical structure (Millipede corelet scratchpad, GPGPU banked shared
  memory, SSMC L1-D-resident state).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional


class Op(IntEnum):
    """Opcodes.  Grouped so classification predicates are range checks."""

    # --- generic numeric ALU (register-register) ---
    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3  # true division
    MIN = 4
    MAX = 5
    ABS = 6
    NEG = 7
    SQRT = 8
    MOV = 9
    # --- integer-only ALU ---
    IDIV = 10  # floor division
    REM = 11
    AND = 12
    OR = 13
    XOR = 14
    SLL = 15
    SRL = 16
    TRUNC = 17  # float -> int truncation
    # --- comparisons (write 0/1) ---
    SLT = 18
    SLE = 19
    SEQ = 20
    SNE = 21
    # --- immediates ---
    LI = 22
    ADDI = 23
    MULI = 24
    SLTI = 25
    ANDI = 26
    # --- branches ---
    BEQ = 27
    BNE = 28
    BLT = 29
    BGE = 30
    BEQZ = 31
    BNEZ = 32
    J = 33
    # --- memory ---
    LDG = 34  # load global (input data)
    STG = 35  # store global
    LDL = 36  # load local (live state)
    STL = 37  # store local
    # --- misc ---
    HALT = 38
    NOP = 39
    #: software barrier across a processor's threads (the record-granularity
    #: barrier ablation of sections IV-C / VI-A); SIMT models treat it as NOP
    BAR = 40


#: opcodes that read two source registers
_TWO_SRC = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MIN, Op.MAX, Op.IDIV, Op.REM,
    Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SLT, Op.SLE, Op.SEQ, Op.SNE,
}
_ONE_SRC = {Op.ABS, Op.NEG, Op.SQRT, Op.MOV, Op.TRUNC, Op.ADDI, Op.MULI, Op.SLTI, Op.ANDI}

ALU_OPS = frozenset(_TWO_SRC | _ONE_SRC | {Op.LI, Op.NOP})
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BEQZ, Op.BNEZ})
CONTROL_OPS = frozenset(BRANCH_OPS | {Op.J, Op.HALT})
MEMORY_OPS = frozenset({Op.LDG, Op.STG, Op.LDL, Op.STL})
GLOBAL_MEM_OPS = frozenset({Op.LDG, Op.STG})
LOCAL_MEM_OPS = frozenset({Op.LDL, Op.STL})


def is_branch(op: Op) -> bool:
    return op in BRANCH_OPS


def is_memory(op: Op) -> bool:
    return op in MEMORY_OPS


class Instr:
    """One decoded instruction.

    Fields are positional by role rather than encoding:

    * ``rd``  - destination register (ALU/loads)
    * ``rs``  - first source register (also address base for memory ops,
      and the *value* register for stores)
    * ``rt``  - second source register (also address base for stores)
    * ``imm`` - immediate (numeric literal or address offset)
    * ``target`` - branch/jump target PC (resolved by the assembler)
    * ``reconv`` - SIMT reconvergence PC (immediate post-dominator, filled
      by :mod:`repro.isa.cfg`)
    """

    __slots__ = ("op", "rd", "rs", "rt", "imm", "target", "reconv", "text", "pc")

    def __init__(
        self,
        op: Op,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        imm: float = 0,
        target: Optional[int] = None,
        text: str = "",
    ):
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.target = target
        self.reconv: Optional[int] = None
        self.text = text
        self.pc: int = -1  # assigned when placed in a Program

    # encoded size used for code-footprint accounting (section IV-A: code
    # under 4 KB, broadcast once)
    ENCODED_BYTES = 4

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instr {self.pc}: {self.text or self.op.name}>"
