#!/usr/bin/env python
"""Design-space exploration with the configuration API.

Sweeps two of Millipede's design parameters - prefetch-buffer entries
(Fig. 7) and corelet count with proportional bandwidth (Fig. 6) - on the
`nbayes` benchmark, and prints throughput/energy trade-off tables.

Run:
    python examples/design_space.py
"""

from __future__ import annotations

from repro import DEFAULT_CONFIG, run

RECORDS = 8192


def sweep_buffers() -> None:
    print("=== prefetch-buffer entries (nbayes, millipede) ===")
    print(f"{'entries':>8s} {'throughput':>12s} {'energy':>9s} {'fill waits':>11s}")
    for entries in (2, 4, 8, 16, 32):
        cfg = DEFAULT_CONFIG.with_millipede(
            prefetch_entries=entries,
            prefetch_ahead=max(1, entries - 1),
        )
        r = run("millipede", "nbayes", config=cfg, n_records=RECORDS)
        print(
            f"{entries:8d} {r.throughput_words_per_s / 1e9:9.2f}Gw/s "
            f"{r.energy.total_j * 1e6:7.1f}uJ "
            f"{r.stats.get('pb.fill_waits', 0) + r.stats.get('pb.ahead_misses', 0):11.0f}"
        )


def sweep_corelets() -> None:
    print("\n=== corelets per processor, bandwidth scaled (nbayes) ===")
    print(f"{'corelets':>9s} {'millipede':>11s} {'ssmc':>9s} {'gpgpu':>9s}")
    for n in (32, 64):
        cfg = DEFAULT_CONFIG.scaled_system_size(n)
        row = [n]
        for arch in ("millipede", "ssmc", "gpgpu"):
            r = run(arch, "nbayes", config=cfg, n_records=RECORDS)
            row.append(r.throughput_words_per_s / 1e9)
        print(f"{row[0]:9d} {row[1]:8.2f}Gw {row[2]:7.2f}Gw {row[3]:7.2f}Gw")


def sweep_clock() -> None:
    print("\n=== fixed compute clock vs rate matching (count) ===")
    print(f"{'config':>22s} {'runtime':>10s} {'total energy':>13s} {'core energy':>12s}")
    for label, arch, clock in (
        ("700 MHz fixed", "millipede", None),
        ("rate-matched (DFS)", "millipede-rm", None),
    ):
        r = run(arch, "count", n_records=RECORDS)
        extra = ""
        if "rate_match_mean_hz" in r.collected:
            extra = f"  (settled at {r.collected['rate_match_mean_hz'] / 1e6:.0f} MHz)"
        print(
            f"{label:>22s} {r.runtime_s * 1e6:8.1f}us "
            f"{r.energy.total_j * 1e6:11.2f}uJ {r.energy.core_j * 1e6:10.2f}uJ{extra}"
        )


if __name__ == "__main__":
    sweep_buffers()
    sweep_corelets()
    sweep_clock()
